//! The networked deployment's contract: a seeded FedGuard run over loopback
//! TCP — server and clients exchanging frames through the wire protocol —
//! is **bit-identical** to the in-process `LocalTransport` oracle. Same
//! accuracy series, same audit scores and threshold, same rosters, same
//! byte accounting, same final global model.
//!
//! Clients run on threads here (one `TcpClientChannel` each, driven by the
//! same `run_federated_client` loop the `fed_client` binary uses); the
//! separate-process version of this check is the `net` stage of
//! `run_suite.sh`.

use fedguard::experiment::{
    build_client, run_experiment_full, run_served_experiment, AttackScenario, ExperimentConfig,
    Preset, RunArtifacts, StrategyKind,
};
use fedguard::synthesis::SynthesisBudget;
use fg_fl::{
    run_federated_client, ClientChannel, ClientRunReport, Directive, NetConfig, TcpClientChannel,
    TcpTransport, TransportKind, WireStats,
};
use fg_nn::models::Classifier;
use fg_tensor::rng::SeededRng;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

fn net_cfg() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(20),
        join_timeout: Duration::from_secs(20),
        heartbeat_interval: Duration::from_secs(5),
        ..NetConfig::default()
    }
}

fn bind_for(cfg: &ExperimentConfig) -> (TcpTransport, SocketAddr) {
    let blob = serde_json::to_string(cfg).expect("config serializes");
    let param_len =
        Classifier::new(&cfg.fed.classifier, &mut SeededRng::new(0)).get_params().len() as u64;
    let transport =
        TcpTransport::bind("127.0.0.1:0", cfg.fed.n_clients, param_len, blob, net_cfg())
            .expect("bind loopback transport")
            .with_compression(cfg.compression.resolved());
    let addr = transport.local_addr().expect("ephemeral address");
    (transport, addr)
}

/// Serve `cfg` over loopback TCP with one well-behaved worker thread per
/// client, exactly as the `fed_server`/`fed_client` binaries do.
fn serve_over_tcp(cfg: &ExperimentConfig) -> (RunArtifacts, Vec<ClientRunReport>, Vec<WireStats>) {
    let (mut transport, addr) = bind_for(cfg);
    let wire_log = transport.wire_log();
    let handles: Vec<_> = (0..cfg.fed.n_clients)
        .map(|id| {
            thread::spawn(move || {
                let mut channel =
                    TcpClientChannel::connect(addr, id, net_cfg()).expect("worker joins");
                // Workers rebuild their state from the Welcome blob alone —
                // the single-source-of-truth path the binaries rely on.
                let parsed: ExperimentConfig =
                    serde_json::from_str(channel.welcome_blob()).expect("blob parses");
                let (mut client, interceptor) = build_client(&parsed, id);
                run_federated_client(&mut channel, &mut client, interceptor.as_ref())
                    .expect("worker session completes")
            })
        })
        .collect();
    transport.wait_for_clients().expect("all workers join");
    let served = run_served_experiment(cfg, Box::new(transport));
    let reports = handles.into_iter().map(|h| h.join().expect("worker thread")).collect();
    let wire = wire_log.lock().clone();
    (served, reports, wire)
}

#[test]
fn tcp_fedguard_run_is_bit_identical_to_in_process_oracle() {
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SignFlip { fraction: 0.4 },
        42,
    );
    cfg.fed.rounds = 2;

    let oracle = run_experiment_full(&cfg);
    let (served, reports, wire) = serve_over_tcp(&cfg);

    // Bit-identical outcomes: f32 equality here is exact, not approximate.
    assert_eq!(oracle.result.accuracy_series(), served.result.accuracy_series());
    assert_eq!(oracle.final_global, served.final_global, "global model diverged");
    assert_eq!(oracle.result.malicious_clients, served.result.malicious_clients);
    assert_eq!(oracle.telemetry.len(), served.telemetry.len());
    for (a, b) in oracle.telemetry.iter().zip(&served.telemetry) {
        assert_eq!(a.scores, b.scores, "round {} audit scores diverged", a.round);
        assert_eq!(a.threshold, b.threshold, "round {} threshold diverged", a.round);
        assert_eq!(a.sampled, b.sampled);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.excluded, b.excluded);
        assert_eq!(a.comm, b.comm, "round {} comm accounting diverged", a.round);
        assert_eq!(a.transport, TransportKind::Local);
        assert_eq!(b.transport, TransportKind::Tcp);
    }
    // The served run logged the sessions the oracle never had.
    assert!(
        served.telemetry[0].sessions.len() >= cfg.fed.n_clients,
        "expected at least one Join per client in round 0"
    );
    assert!(oracle.telemetry.iter().all(|e| e.sessions.is_empty()));

    // Wire model-parameter bytes realize the simulation's byte accounting
    // exactly on these fault-free rounds.
    for event in &served.telemetry {
        assert!(event.faults.is_empty(), "loopback run should be fault-free");
        let w = wire.iter().find(|w| w.round == event.round).expect("wire stats per round");
        assert_eq!(w.model_bytes_tx, event.comm.download_bytes, "round {}", event.round);
        assert_eq!(w.model_bytes_rx, event.comm.upload_bytes, "round {}", event.round);
    }

    // Every sampled slot trained: Σ participation = m × rounds.
    let trained: usize = reports.iter().map(|r| r.rounds_participated).sum();
    assert_eq!(trained, cfg.fed.clients_per_round * cfg.fed.rounds);
}

#[test]
fn tcp_batched_audit_matches_in_process_sequential_oracle() {
    // Cross the two axes at once: the served run audits with the batched
    // scorer while the in-process oracle audits sequentially. Scores,
    // threshold, rosters, and the final global model must all stay
    // bit-identical — transport and audit mode are both non-observable.
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SignFlip { fraction: 0.4 },
        44,
    );
    cfg.fed.rounds = 2;

    cfg.fedguard_audit = fedguard::AuditMode::Sequential;
    let oracle = run_experiment_full(&cfg);

    cfg.fedguard_audit = fedguard::AuditMode::Batched;
    let (served, _, _) = serve_over_tcp(&cfg);

    assert_eq!(oracle.result.accuracy_series(), served.result.accuracy_series());
    assert_eq!(oracle.final_global, served.final_global, "global model diverged");
    assert_eq!(oracle.result.malicious_clients, served.result.malicious_clients);
    for (a, b) in oracle.telemetry.iter().zip(&served.telemetry) {
        assert_eq!(a.scores, b.scores, "round {} audit scores diverged", a.round);
        assert_eq!(a.threshold, b.threshold, "round {} threshold diverged", a.round);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.excluded, b.excluded);
        assert_eq!(a.survivors, b.survivors);
    }
}

#[test]
fn worker_vanishing_mid_round_degrades_to_a_dropout_not_a_crash() {
    // Every client is sampled every round, so the vanishing worker is
    // guaranteed to be in the active set when it dies.
    let mut cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 9);
    cfg.fed.n_clients = 5;
    cfg.fed.clients_per_round = 5;
    cfg.fed.rounds = 2;

    let (mut transport, addr) = bind_for(&cfg);
    let quitter = thread::spawn(move || {
        let mut channel = TcpClientChannel::connect(addr, 0, net_cfg()).expect("quitter joins");
        // Accept the round offer, then vanish without uploading.
        match channel.request_round().expect("first directive") {
            Directive::Round { .. } => drop(channel),
            Directive::Shutdown => panic!("expected a round before shutdown"),
        }
    });
    let workers: Vec<_> = (1..cfg.fed.n_clients)
        .map(|id| {
            let cfg = cfg.clone();
            thread::spawn(move || {
                let mut channel =
                    TcpClientChannel::connect(addr, id, net_cfg()).expect("worker joins");
                let (mut client, interceptor) = build_client(&cfg, id);
                run_federated_client(&mut channel, &mut client, interceptor.as_ref())
                    .expect("worker session completes")
            })
        })
        .collect();
    transport.wait_for_clients().expect("all five join");
    let served = run_served_experiment(&cfg, Box::new(transport));
    quitter.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(served.result.history.len(), 2, "run completes despite the dead session");
    // Round 0: the quitter's EOF mid-round is a Dropout fault on client 0,
    // and its session records a Drop event.
    let r0 = &served.telemetry[0];
    assert!(
        r0.faults.iter().any(|f| f.client_id == 0),
        "expected a fault for the vanished client, got {:?}",
        r0.faults
    );
    assert!(r0
        .sessions
        .iter()
        .any(|s| s.client_id == 0 && s.kind == fg_fl::SessionEventKind::Drop));
    // Round 1: the session is gone, so the still-sampled client 0 surfaces
    // as a dropout again; the other four keep training.
    let r1 = &served.telemetry[1];
    assert!(r1.faults.iter().any(|f| f.client_id == 0));
    assert_eq!(r1.survivors, vec![1, 2, 3, 4]);
    assert!(served.result.history.iter().all(|r| r.accuracy.is_finite()));
}

#[test]
fn scheduled_dropouts_stay_bit_identical_over_tcp() {
    // A fault plan (scheduled dropouts) must reproduce identically across
    // transports: the schedule is drawn server-side, and remote workers are
    // told to sit the round out via `participate = false`.
    let mut cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 11);
    cfg.fed.rounds = 2;
    cfg.faults = Some(fg_fl::FaultConfig { dropout_prob: 0.4, ..fg_fl::FaultConfig::default() });

    let oracle = run_experiment_full(&cfg);
    let (served, reports, _) = serve_over_tcp(&cfg);

    assert_eq!(oracle.result.accuracy_series(), served.result.accuracy_series());
    assert_eq!(oracle.final_global, served.final_global);
    for (a, b) in oracle.telemetry.iter().zip(&served.telemetry) {
        assert_eq!(a.faults, b.faults, "round {} fault records diverged", a.round);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.comm, b.comm);
    }
    // Declines happened iff the plan scheduled dropouts.
    let declined: usize = reports.iter().map(|r| r.rounds_declined).sum();
    let scheduled: usize = served.telemetry.iter().map(|e| e.faults.len()).sum();
    assert_eq!(declined, scheduled, "one Decline per scheduled dropout");
}

/// The streaming aggregation path, driven end-to-end over loopback TCP:
/// with `agg_memory: Streaming` the server folds each upload into an O(d)
/// accumulator as it leaves the wire instead of materializing the round,
/// and the run must stay bit-identical to the batch oracle — in-process
/// *and* over TCP.
#[test]
fn tcp_streaming_aggregation_is_bit_identical_to_batch_oracle() {
    let mut cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 42);
    cfg.fed.rounds = 2;
    let batch_oracle = run_experiment_full(&cfg);

    let mut streamed_cfg = cfg.clone();
    streamed_cfg.fed.agg_memory = fg_fl::AggregationMemory::Streaming;
    // In-process streaming vs in-process batch.
    let local_streamed = run_experiment_full(&streamed_cfg);
    assert_eq!(batch_oracle.final_global, local_streamed.final_global, "local streaming diverged");
    assert_eq!(batch_oracle.result.accuracy_series(), local_streamed.result.accuracy_series());

    // Over-the-wire streaming vs in-process batch.
    let (served, _reports, wire) = serve_over_tcp(&streamed_cfg);
    assert_eq!(batch_oracle.final_global, served.final_global, "TCP streaming diverged");
    assert_eq!(batch_oracle.result.accuracy_series(), served.result.accuracy_series());
    for (a, b) in batch_oracle.telemetry.iter().zip(&served.telemetry) {
        assert_eq!(a.sampled, b.sampled);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.selected, b.selected);
        // Per-arrival accounting must equal the batch bookkeeping and the
        // wire's own tally.
        assert_eq!(a.comm, b.comm, "round {} comm accounting diverged", a.round);
        let w = wire.iter().find(|w| w.round == a.round).expect("wire stats per round");
        assert_eq!(w.model_bytes_rx, b.comm.upload_bytes, "round {}", a.round);
        assert_eq!(w.model_bytes_tx, b.comm.download_bytes, "round {}", a.round);
    }
}

/// Wire-compression gates (DESIGN.md §14). The uncompressed default is
/// covered by every other test in this file — `Compression::None` keeps the
/// dense frames and stays bit-identical to the pre-compression protocol.
/// Each lossy codec must:
/// * cost at most half a percentage point of **converged** accuracy against
///   the uncompressed oracle on a seeded FedGuard run under attack (drift is
///   measured on the mean of the final two rounds once the trajectory has
///   saturated — per-round equality is not a meaningful gate, because the
///   audit's survivor *selection* is a threshold cut: a sub-codec-error
///   score perturbation can legitimately swap one borderline client and
///   move a single early round by many points before both runs converge to
///   the same place),
/// * be bit-identical across worker-pool sizes (1 vs 4 threads), and
/// * be bit-identical between the in-process deployment and loopback TCP —
///   the in-process oracle routes compressed payloads through the same
///   encode→decode wire frames the TCP deployment uses.
///
/// The smoke preset's 200-sample test split quantizes accuracy in 0.5pp
/// steps, so the gate run widens the eval split to 1 000 samples (0.1pp
/// granularity) and the audit budget to 600 draws to keep both measurements
/// finer than the bound being asserted.
#[test]
fn compressed_fedguard_runs_drift_at_most_half_a_point_and_match_across_deployments() {
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SignFlip { fraction: 0.4 },
        42,
    );
    cfg.fed.rounds = 8;
    cfg.per_class_test = 100;
    cfg.budget = SynthesisBudget::Total(600);
    let baseline = run_experiment_full(&cfg);
    let converged = |r: &RunArtifacts| {
        let acc = r.result.accuracy_series();
        (acc[acc.len() - 2] + acc[acc.len() - 1]) / 2.0
    };

    for mode in [
        fg_fl::Compression::Bf16,
        fg_fl::Compression::Int8 { block: fg_fl::compress::DEFAULT_INT8_BLOCK },
        fg_fl::Compression::TopK { frac: fg_fl::compress::DEFAULT_TOPK_FRAC },
    ] {
        let mut lossy_cfg = cfg.clone();
        lossy_cfg.compression = mode;
        let local = rayon::with_threads(4, || run_experiment_full(&lossy_cfg));

        // Lossy, but bounded: ≤ 0.5pp converged-accuracy drift.
        let drift = (converged(&baseline) - converged(&local)).abs();
        assert!(
            drift <= 0.005,
            "{}: converged accuracy drifted {:.4} (> 0.5pp) from the uncompressed \
             oracle ({:?} vs {:?})",
            mode.name(),
            drift,
            baseline.result.accuracy_series(),
            local.result.accuracy_series()
        );

        // Bit-identical at any worker-pool size.
        let single = rayon::with_threads(1, || run_experiment_full(&lossy_cfg));
        assert_eq!(single.final_global, local.final_global, "{}: thread count", mode.name());
        assert_eq!(single.result.accuracy_series(), local.result.accuracy_series());

        // Bit-identical across deployments.
        let (served, _, _) = serve_over_tcp(&lossy_cfg);
        assert_eq!(local.final_global, served.final_global, "{}: local vs TCP", mode.name());
        assert_eq!(local.result.accuracy_series(), served.result.accuracy_series());
        for (a, b) in local.telemetry.iter().zip(&served.telemetry) {
            assert_eq!(a.scores, b.scores, "{}: round {} scores", mode.name(), a.round);
            assert_eq!(a.survivors, b.survivors);
            assert_eq!(a.selected, b.selected);
            // The logical byte ledger is mode-invariant by design.
            assert_eq!(a.comm, b.comm, "{}: round {} comm", mode.name(), a.round);
        }
    }
}

/// Shared-state guard: two loopback runs in the same process must not
/// interfere (ephemeral ports, no global registries beyond metrics).
#[test]
fn consecutive_tcp_runs_are_independent() {
    let mut cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 3);
    cfg.fed.n_clients = 4;
    cfg.fed.clients_per_round = 3;
    cfg.fed.rounds = 1;
    let (a, _, _) = serve_over_tcp(&cfg);
    let (b, _, _) = serve_over_tcp(&cfg);
    assert_eq!(a.result.accuracy_series(), b.result.accuracy_series());
    assert_eq!(a.final_global, b.final_global);
}
