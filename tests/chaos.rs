//! Deterministic chaos suite: seeded fault schedules replayed against the
//! federation, invariants of graceful round degradation, and property tests
//! over arbitrary fault mixes.
//!
//! Everything here is driven by seeds — a replay with the same federation
//! seed and the same `FaultPlan` seed must reproduce the exact same round
//! records (modulo wall-clock time, which `RoundRecord::normalized()`
//! zeroes) and the exact same fault-event stream.

use fedguard::data::partition::{dirichlet_partition, partition_datasets};
use fedguard::data::synth::generate_dataset;
use fedguard::fl::{
    AggregationMemory, FaultConfig, FaultKind, FaultPlan, Federation, FederationConfig,
    LocalTrainConfig, MemoryCollector, ResiliencePolicy, RoundRecord, RoundTelemetry,
};
use fedguard::nn::models::ClassifierSpec;
use fedguard::tensor::rng::SeededRng;
use proptest::prelude::*;
use std::collections::HashSet;

/// A 10-client FedAvg federation over synthetic digits with the given fault
/// plan and resilience policy, a `MemoryCollector` already attached.
fn chaos_federation(
    rounds: usize,
    seed: u64,
    plan: Option<FaultPlan>,
    policy: ResiliencePolicy,
    collector: MemoryCollector,
) -> Federation {
    let data = generate_dataset(30, seed); // 300 samples
    let (test, train) = data.split_at(60);
    let mut rng = SeededRng::new(seed ^ 1);
    let parts = dirichlet_partition(&train, 10, 10.0, 10, &mut rng);
    let datasets = partition_datasets(&train, &parts);
    let config = FederationConfig {
        n_clients: 10,
        clients_per_round: 5,
        rounds,
        classifier: ClassifierSpec::Mlp { hidden: 24 },
        local: LocalTrainConfig { epochs: 2, batch_size: 16, lr: 0.1, momentum: 0.9, prox_mu: 0.0 },
        server_lr: 1.0,
        eval_batch: 64,
        seed,
        agg_memory: AggregationMemory::Batch,
    };
    Federation::builder(config)
        .datasets(datasets)
        .test_set(test)
        .strategy(fedguard::agg::FedAvgStrategy)
        .faults(plan)
        .resilience(policy)
        .observer(collector)
        .build()
}

fn run_chaotic(seed: u64, plan_seed: u64) -> (Vec<RoundRecord>, Vec<RoundTelemetry>) {
    let collector = MemoryCollector::new();
    let plan = FaultPlan::new(FaultConfig::chaotic(), plan_seed);
    let mut fed =
        chaos_federation(6, seed, Some(plan), ResiliencePolicy::quorum(2), collector.clone());
    let history = fed.run();
    (history, collector.events())
}

#[test]
fn seeded_fault_schedule_replays_bit_identical() {
    let (h1, e1) = run_chaotic(101, 0xC4A05);
    let (h2, e2) = run_chaotic(101, 0xC4A05);

    // Bit-identical round records, wall-clock aside.
    let n1: Vec<RoundRecord> = h1.iter().map(|r| r.normalized()).collect();
    let n2: Vec<RoundRecord> = h2.iter().map(|r| r.normalized()).collect();
    assert_eq!(n1, n2, "replay diverged from the original run");

    // The telemetry stream agrees on every deterministic field.
    assert_eq!(e1.len(), e2.len());
    for (a, b) in e1.iter().zip(&e2) {
        assert_eq!(a.faults, b.faults, "round {}: fault events diverged", a.round);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.excluded, b.excluded);
        assert_eq!(a.quorum_met, b.quorum_met);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.comm, b.comm);
    }

    // A different plan seed gives a different schedule somewhere.
    let (_, e3) = run_chaotic(101, 0xC4A06);
    assert!(
        e1.iter().zip(&e3).any(|(a, b)| a.faults != b.faults),
        "distinct plan seeds produced identical fault streams"
    );
}

#[test]
fn fault_heavy_federation_survives_ten_rounds() {
    // The acceptance scenario: 30% dropout + 10% corruption over 10 rounds
    // must complete without panic and leave a finite global model.
    let cfg = FaultConfig { dropout_prob: 0.3, corrupt_prob: 0.1, ..FaultConfig::default() };
    let collector = MemoryCollector::new();
    let mut fed = chaos_federation(
        10,
        202,
        Some(FaultPlan::new(cfg, 7)),
        ResiliencePolicy::quorum(2),
        collector.clone(),
    );
    let history = fed.run();
    assert_eq!(history.len(), 10);
    assert!(fed.global_params().iter().all(|x| x.is_finite()));
    assert!(history.iter().all(|r| r.accuracy.is_finite()));
    // The schedule actually fired: some round lost someone.
    let lost: usize = collector.events().iter().map(|e| e.lost_count()).sum();
    assert!(lost > 0, "fault plan injected nothing across 10 rounds");
}

#[test]
fn rosters_and_fault_events_stay_consistent() {
    let (history, events) = run_chaotic(303, 11);
    for (e, r) in events.iter().zip(&history) {
        let sampled: HashSet<usize> = e.sampled.iter().copied().collect();
        let survivors: HashSet<usize> = e.survivors.iter().copied().collect();
        let selected: HashSet<usize> = e.selected.iter().copied().collect();

        // selected ⊆ survivors ⊆ sampled.
        assert!(survivors.is_subset(&sampled), "round {}", e.round);
        assert!(selected.is_subset(&survivors), "round {}", e.round);
        // The roster arithmetic agrees with itself.
        assert_eq!(e.lost_count(), e.sampled.len() - e.survivors.len());
        assert_eq!(e.selected_count() + e.excluded_count(), e.sampled.len());

        // No dropped-out client ever reaches the survivor roster (dropouts
        // never train, so not even a duplicate can resurrect them).
        for f in &e.faults {
            assert!(sampled.contains(&f.client_id), "fault for unsampled client");
            if f.kind == FaultKind::Dropout {
                assert!(!survivors.contains(&f.client_id), "round {}", e.round);
            }
        }

        // Quorum bookkeeping matches the policy (min_quorum = 2).
        assert_eq!(e.quorum_met, e.survivors.len() >= 2);
        if !e.quorum_met {
            assert!(e.selected.is_empty(), "skip round must select nobody");
        }

        // Stage-time accounting stays sane under injection.
        for (name, secs) in e.stages.named() {
            assert!(secs.is_finite() && secs >= 0.0, "{name}: {secs}");
        }
        assert!(e.wall_secs >= e.stages.total() * 0.9);
        assert_eq!(e.accuracy, r.accuracy);
    }
}

#[test]
fn skipped_rounds_carry_accuracy_forward() {
    // With every client dropping out and a quorum of 1, every round skips:
    // the model never moves, so the accuracy series is constant.
    let cfg = FaultConfig { dropout_prob: 1.0, ..FaultConfig::default() };
    let collector = MemoryCollector::new();
    let mut fed = chaos_federation(
        3,
        404,
        Some(FaultPlan::new(cfg, 3)),
        ResiliencePolicy::default(),
        collector.clone(),
    );
    let start = fed.global_params().to_vec();
    let history = fed.run();
    assert_eq!(fed.global_params(), &start[..]);
    for e in &collector.events() {
        assert!(!e.quorum_met);
        assert!(e.survivors.is_empty());
    }
    for w in history.windows(2) {
        assert_eq!(w[0].accuracy, w[1].accuracy, "skipped round changed accuracy");
    }
}

#[test]
fn quiet_fault_plan_is_a_no_op() {
    // A plan with all probabilities zero must reproduce the no-plan run
    // exactly — the honest-only fixed point of the fault layer.
    let collector_a = MemoryCollector::new();
    let mut with_plan = chaos_federation(
        4,
        505,
        Some(FaultPlan::new(FaultConfig::default(), 99)),
        ResiliencePolicy::default(),
        collector_a.clone(),
    );
    let ha = with_plan.run();

    let collector_b = MemoryCollector::new();
    let mut without =
        chaos_federation(4, 505, None, ResiliencePolicy::default(), collector_b.clone());
    let hb = without.run();

    let na: Vec<RoundRecord> = ha.iter().map(|r| r.normalized()).collect();
    let nb: Vec<RoundRecord> = hb.iter().map(|r| r.normalized()).collect();
    assert_eq!(na, nb, "a quiet fault plan perturbed the run");
    for (a, b) in collector_a.events().iter().zip(&collector_b.events()) {
        assert!(a.faults.is_empty());
        assert!(b.faults.is_empty());
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(a.survivors, a.sampled, "no faults: everyone survives");
    }
}

proptest! {
    // Each case runs a real (tiny) federation; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn arbitrary_fault_mixes_never_break_the_global_model(
        dropout in 0.0f64..0.9,
        straggle in 0.0f64..0.9,
        corrupt in 0.0f64..0.9,
        trunc in 0.0f64..0.5,
        dup in 0.0f64..0.9,
        plan_seed in 0u64..1_000_000,
    ) {
        let cfg = FaultConfig {
            dropout_prob: dropout,
            straggler_prob: straggle,
            corrupt_prob: corrupt,
            truncate_prob: trunc,
            duplicate_prob: dup,
            ..FaultConfig::default()
        };
        let collector = MemoryCollector::new();
        let mut fed = chaos_federation(
            3,
            606,
            Some(FaultPlan::new(cfg, plan_seed)),
            ResiliencePolicy::quorum(2),
            collector.clone(),
        );
        let history = fed.run();
        prop_assert_eq!(history.len(), 3);
        // Whatever arrived, the sanitizer + quorum keep the model finite.
        prop_assert!(fed.global_params().iter().all(|x| x.is_finite()));
        prop_assert!(history.iter().all(|r| r.accuracy.is_finite()));
        for e in &collector.events() {
            let survivors: HashSet<usize> = e.survivors.iter().copied().collect();
            prop_assert!(e.selected.iter().all(|c| survivors.contains(c)));
            prop_assert!(e.survivors.iter().all(|c| e.sampled.contains(c)));
        }
    }
}
