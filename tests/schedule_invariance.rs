//! Schedule-invariance suite: the determinism contract of the parallel
//! substrate, end to end.
//!
//! The rayon shim promises that thread count changes only *scheduling*,
//! never results: the split tree and combine order are pure functions of the
//! input, so every reduction — including order-sensitive `f32` arithmetic —
//! must be bit-identical at `FG_THREADS=1` and `FG_THREADS=4`. These tests
//! pin that promise at three levels: raw kernels, robust-aggregation ops,
//! and a full seeded federation run.

use fedguard::agg::ops::{
    coordinate_median, fedavg, geometric_median, krum, krum_scores, trimmed_mean_vectors,
};
use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, ExperimentResult, Preset, StrategyKind,
};
use fedguard::tensor::conv::{conv2d_backward_acc, conv2d_forward, Conv2dSpec};
use fedguard::tensor::kernels::{matmul, matmul_at, matmul_bt};
use fedguard::tensor::rng::SeededRng;
use fedguard::tensor::vecops::{axpy, lerp, weighted_sum};
use fedguard::tensor::Tensor;
use rayon::with_threads;

/// Random update vectors shaped like a robust-aggregation workload: `m`
/// clients, `d` parameters each.
fn random_updates(m: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..m).map(|_| (0..d).map(|_| rng.next_f32() * 2.0 - 1.0).collect()).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn aggregation_ops_are_bit_identical_across_thread_counts() {
    // Large enough that par_iter paths actually split (PAR_LEN = 1 << 16).
    let updates = random_updates(12, (1 << 16) + 41, 11);
    let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
    let samples: Vec<usize> = (0..refs.len()).map(|i| 10 + i).collect();

    let run = |threads: usize| {
        with_threads(threads, || {
            let avg = fedavg(&refs, &samples);
            let gm = geometric_median(&refs, 8, 1e-6);
            let ks = krum_scores(&refs, 3);
            let (kr, ki) = krum(&refs, 3);
            let med = coordinate_median(&refs);
            let tm = trimmed_mean_vectors(&refs, 2);
            (bits(&avg), bits(&gm), bits(&ks), bits(&kr), ki, bits(&med), bits(&tm))
        })
    };

    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.0, par.0, "fedavg diverged across thread counts");
    assert_eq!(seq.1, par.1, "geometric_median diverged across thread counts");
    assert_eq!(seq.2, par.2, "krum_scores diverged across thread counts");
    assert_eq!(seq.3, par.3, "krum vector diverged across thread counts");
    assert_eq!(seq.4, par.4, "krum pick diverged across thread counts");
    assert_eq!(seq.5, par.5, "coordinate_median diverged across thread counts");
    assert_eq!(seq.6, par.6, "trimmed_mean diverged across thread counts");
}

#[test]
fn tensor_kernels_are_bit_identical_across_thread_counts() {
    let mut rng = SeededRng::new(21);
    // 160×1024 · 1024×64 clears PAR_THRESHOLD_MACS so rows split.
    let a = Tensor::randn(&[160, 1024], &mut rng);
    let b = Tensor::randn(&[1024, 64], &mut rng);
    let seq = with_threads(1, || matmul(&a, &b));
    let par = with_threads(4, || matmul(&a, &b));
    assert_eq!(bits(seq.data()), bits(par.data()), "matmul diverged across thread counts");
}

#[test]
fn transposed_gemm_layouts_are_bit_identical_across_thread_counts() {
    let mut rng = SeededRng::new(22);
    // Both layouts clear PAR_THRESHOLD_MACS so the MC row-blocks fan out.
    let a = Tensor::randn(&[160, 1024], &mut rng);
    let bt = Tensor::randn(&[64, 1024], &mut rng);
    let seq = with_threads(1, || matmul_bt(&a, &bt));
    let par = with_threads(4, || matmul_bt(&a, &bt));
    assert_eq!(bits(seq.data()), bits(par.data()), "matmul_bt diverged across thread counts");

    let at = Tensor::randn(&[1024, 160], &mut rng);
    let b = Tensor::randn(&[1024, 64], &mut rng);
    let seq = with_threads(1, || matmul_at(&at, &b));
    let par = with_threads(4, || matmul_at(&at, &b));
    assert_eq!(bits(seq.data()), bits(par.data()), "matmul_at diverged across thread counts");
}

#[test]
fn conv_forward_and_backward_are_bit_identical_across_thread_counts() {
    let mut rng = SeededRng::new(23);
    let spec = Conv2dSpec { in_ch: 3, out_ch: 8, kh: 3, kw: 3, pad: 1 };
    // Batch of 8 so the per-image parallel loops actually split.
    let x = Tensor::randn(&[8, 3, 14, 14], &mut rng);
    let w = Tensor::randn(&[8, spec.patch_len()], &mut rng);
    let bias = Tensor::randn(&[8], &mut rng);
    let d_out = Tensor::randn(&[8, 8, 14, 14], &mut rng);

    let run = |threads: usize| {
        with_threads(threads, || {
            let y = conv2d_forward(&x, &w, &bias, &spec);
            let mut dw = Tensor::zeros(w.dims());
            let mut db = Tensor::zeros(bias.dims());
            let dx = conv2d_backward_acc(&x, &w, &d_out, &spec, &mut dw, &mut db);
            (bits(y.data()), bits(dx.data()), bits(dw.data()), bits(db.data()))
        })
    };

    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.0, par.0, "conv2d_forward diverged across thread counts");
    assert_eq!(seq.1, par.1, "conv2d d_input diverged across thread counts");
    assert_eq!(seq.2, par.2, "conv2d d_weight diverged across thread counts");
    assert_eq!(seq.3, par.3, "conv2d d_bias diverged across thread counts");
}

#[test]
fn vecops_are_bit_identical_across_thread_counts() {
    let updates = random_updates(3, (1 << 17) + 9, 31);
    let refs: Vec<&[f32]> = updates.iter().map(|u| u.as_slice()).collect();
    let w = [0.2f32, 0.5, 0.3];

    let run = |threads: usize| {
        with_threads(threads, || {
            let ws = weighted_sum(&refs, &w);
            let mut ax = updates[0].clone();
            axpy(&mut ax, -0.7, &updates[1]);
            let le = lerp(&updates[1], &updates[2], 0.3);
            (bits(&ws), bits(&ax), bits(&le))
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn batched_scorer_is_bit_identical_across_thread_counts() {
    use fedguard::nn::models::{BatchedClassifier, Classifier, ClassifierSpec};

    // Wide enough that the grouped fc1 launch clears worth_forking and the
    // model axis actually fans out over the pool.
    let spec = ClassifierSpec::Mlp { hidden: 256 };
    let mut rng = SeededRng::new(61);
    let models: Vec<Vec<f32>> =
        (0..6).map(|_| Classifier::new(&spec, &mut rng).get_params()).collect();
    let x = Tensor::randn(&[96, 784], &mut rng);
    let y: Vec<usize> = (0..96).map(|i| i % 10).collect();

    let run = |threads: usize| {
        with_threads(threads, || {
            let views: Vec<&[f32]> = models.iter().map(|m| m.as_slice()).collect();
            BatchedClassifier::new(&spec, &views).evaluate(&x, &y, 32)
        })
    };
    assert_eq!(bits(&run(1)), bits(&run(4)), "batched audit scores diverged across thread counts");
}

#[test]
fn fedguard_audit_modes_agree_across_thread_counts() {
    use fedguard::AuditMode;

    // A full FedGuard federation must produce one bit-identical history for
    // every (audit mode × thread count) combination: the batched scorer is
    // an internal fast path, not an observable behavior change.
    let run_fed = |audit: AuditMode, threads: usize| -> ExperimentResult {
        with_threads(threads, || {
            let mut cfg = ExperimentConfig::preset(
                Preset::Smoke,
                StrategyKind::FedGuard,
                AttackScenario::SignFlip { fraction: 0.3 },
                43,
            );
            cfg.fed.rounds = 2;
            cfg.fedguard_audit = audit;
            run_experiment(&cfg)
        })
    };

    let baseline = run_fed(AuditMode::Sequential, 1);
    for (audit, threads) in
        [(AuditMode::Sequential, 4), (AuditMode::Batched, 1), (AuditMode::Batched, 4)]
    {
        let got = run_fed(audit, threads);
        assert_eq!(baseline.malicious_clients, got.malicious_clients);
        assert_eq!(baseline.history.len(), got.history.len());
        for (rs, rp) in baseline.history.iter().zip(&got.history) {
            assert_eq!(
                rs.normalized(),
                rp.normalized(),
                "round {} diverged for {audit:?} at {threads} threads",
                rs.round
            );
        }
    }
}

#[test]
fn seeded_federation_history_is_bit_identical_across_thread_counts() {
    let run_fed = |strategy: StrategyKind, threads: usize| -> ExperimentResult {
        with_threads(threads, || {
            let mut cfg = ExperimentConfig::preset(
                Preset::Smoke,
                strategy,
                AttackScenario::SignFlip { fraction: 0.3 },
                42,
            );
            cfg.fed.rounds = 3;
            run_experiment(&cfg)
        })
    };

    for strategy in [StrategyKind::FedAvg, StrategyKind::Krum, StrategyKind::FedGuard] {
        let seq = run_fed(strategy, 1);
        let par = run_fed(strategy, 4);
        assert_eq!(
            seq.malicious_clients,
            par.malicious_clients,
            "{}: malicious roster diverged",
            strategy.name()
        );
        assert_eq!(seq.history.len(), par.history.len());
        for (rs, rp) in seq.history.iter().zip(&par.history) {
            // normalized() zeroes wall_secs, the only nondeterministic field;
            // accuracy is f32 and compared exactly, so this is bitwise.
            assert_eq!(
                rs.normalized(),
                rp.normalized(),
                "{}: round {} diverged between 1 and 4 threads",
                strategy.name(),
                rs.round
            );
        }
    }
}
