//! Cross-crate property-based tests (proptest) on the invariants the
//! federated pipeline relies on.

use fedguard::agg::ops;
use fedguard::data::{Dataset, LabelFlip};
use fedguard::fl::{sanitize_round, FaultKind, ModelUpdate};
use fedguard::nn::models::{Classifier, ClassifierSpec};
use fedguard::synthesis::SynthesisBudget;
use fedguard::tensor::vecops;
use proptest::prelude::*;

fn vecs_strategy(m: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, d), m)
}

/// Decode one `u64` into a possibly-faulty 4-parameter `ModelUpdate`: the
/// low bits pick the client id, the next bits one of five transit outcomes
/// (clean / NaN / Inf / truncated / padded), the rest seed the values.
fn decode_update(code: u64) -> ModelUpdate {
    let client_id = (code % 6) as usize;
    let fault = (code >> 8) % 5;
    let x = ((code >> 16) % 1000) as f32 / 100.0 - 5.0;
    let mut params = vec![x, x + 1.0, x - 1.0, 0.5 * x];
    match fault {
        1 => params[(code >> 32) as usize % 4] = f32::NAN,
        2 => params[(code >> 32) as usize % 4] = f32::NEG_INFINITY,
        3 => params.truncate(1 + (code >> 32) as usize % 3),
        4 => params.push(0.0),
        _ => {}
    }
    ModelUpdate { client_id, params, num_samples: 1, decoder: None, class_coverage: None }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- aggregation operators ------------------------------------------

    #[test]
    fn fedavg_stays_in_coordinate_hull(vs in vecs_strategy(5, 8), counts in proptest::collection::vec(1usize..100, 5)) {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let out = ops::fedavg(&refs, &counts);
        for j in 0..8 {
            let lo = vs.iter().map(|v| v[j]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[j] >= lo - 1e-3 && out[j] <= hi + 1e-3);
        }
    }

    #[test]
    fn geomed_is_permutation_invariant(vs in vecs_strategy(5, 6)) {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let a = ops::geometric_median(&refs, 50, 1e-6);
        let mut perm = vs.clone();
        perm.rotate_left(2);
        let refs2: Vec<&[f32]> = perm.iter().map(|v| v.as_slice()).collect();
        let b = ops::geometric_median(&refs2, 50, 1e-6);
        let d = vecops::l2_distance(&a, &b);
        let scale = vecops::l2_norm(&a).max(1.0);
        prop_assert!(d < 0.05 * scale, "permutation moved geomed by {d}");
    }

    #[test]
    fn median_bounded_by_extremes(vs in vecs_strategy(7, 5)) {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let out = ops::coordinate_median(&refs);
        for j in 0..5 {
            let lo = vs.iter().map(|v| v[j]).fold(f32::INFINITY, f32::min);
            let hi = vs.iter().map(|v| v[j]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[j] >= lo && out[j] <= hi);
        }
    }

    #[test]
    fn krum_returns_an_input_vector(vs in vecs_strategy(6, 4)) {
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let (out, idx) = ops::krum(&refs, 1);
        prop_assert!(idx < vs.len());
        prop_assert_eq!(out, vs[idx].clone());
    }

    #[test]
    fn clipping_never_increases_norm(v in proptest::collection::vec(-100.0f32..100.0, 16), max_norm in 0.1f32..10.0) {
        let clipped = ops::clip_to_norm(&v, max_norm);
        prop_assert!(vecops::l2_norm(&clipped) <= max_norm + 1e-3);
        // Direction preserved for nonzero inputs.
        let n = vecops::l2_norm(&v);
        if n > max_norm {
            let cos: f32 = v.iter().zip(&clipped).map(|(a, b)| a * b).sum::<f32>()
                / (n * vecops::l2_norm(&clipped)).max(1e-9);
            prop_assert!(cos > 0.999, "direction changed: cos={cos}");
        }
    }

    // ---- submission sanitizer ---------------------------------------------

    #[test]
    fn sanitizer_output_is_always_aggregation_safe(codes in proptest::collection::vec(0u64..u64::MAX / 2, 0..14)) {
        let arrived: Vec<ModelUpdate> = codes.iter().map(|&c| decode_update(c)).collect();
        let mut events = Vec::new();
        let survivors = sanitize_round(arrived.clone(), 4, &mut events);

        // Every survivor is admissible: right length, all-finite.
        for u in &survivors {
            prop_assert!(u.validate(4).is_ok());
        }
        // Ids strictly increasing — unique and sorted, so no client can be
        // double-weighted by FedAvg.
        for w in survivors.windows(2) {
            prop_assert!(w[0].client_id < w[1].client_id);
        }
        // Conservation: every input either survives or is accounted for by
        // exactly one discarding event (DecoderStripped doesn't discard).
        let discarded = events.iter().filter(|e| e.kind.discards_submission()).count();
        prop_assert_eq!(survivors.len() + discarded, arrived.len());
        // A FedAvg over the survivors (if any) stays finite.
        if !survivors.is_empty() {
            let refs: Vec<&[f32]> = survivors.iter().map(|u| u.params.as_slice()).collect();
            let counts: Vec<usize> = survivors.iter().map(|u| u.num_samples).collect();
            prop_assert!(ops::fedavg(&refs, &counts).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn sanitizer_is_identity_on_clean_unique_rounds(xs in proptest::collection::vec(-5.0f32..5.0, 1..6)) {
        // Well-formed, id-unique submissions pass through untouched — the
        // honest-only fixed point of the sanitizer.
        let arrived: Vec<ModelUpdate> = xs
            .iter()
            .enumerate()
            .map(|(id, &x)| ModelUpdate {
                client_id: id,
                params: vec![x, -x, 2.0 * x, 0.0],
                num_samples: 1 + id,
                decoder: None,
                class_coverage: None,
            })
            .collect();
        let mut events = Vec::new();
        let survivors = sanitize_round(arrived.clone(), 4, &mut events);
        prop_assert!(events.is_empty(), "clean round produced events: {events:?}");
        prop_assert_eq!(survivors, arrived);
    }

    #[test]
    fn sanitizer_last_write_wins_on_duplicates(x in -5.0f32..5.0, y in -5.0f32..5.0, m in 2usize..5) {
        // m copies of the same client id: exactly one survives, and it is
        // the last arrival.
        let arrived: Vec<ModelUpdate> = (0..m)
            .map(|i| ModelUpdate {
                client_id: 3,
                params: vec![if i == m - 1 { y } else { x }; 4],
                num_samples: 1,
                decoder: None,
                class_coverage: None,
            })
            .collect();
        let mut events = Vec::new();
        let survivors = sanitize_round(arrived, 4, &mut events);
        prop_assert_eq!(survivors.len(), 1);
        prop_assert_eq!(survivors[0].params[0], y);
        let discards = events.iter().filter(|e| e.kind == FaultKind::DuplicateDiscarded).count();
        prop_assert_eq!(discards, m - 1);
    }

    // ---- NaN-safe aggregation operators ------------------------------------

    #[test]
    fn krum_with_poisoned_minority_selects_honest(vs in vecs_strategy(5, 4), bad in 0usize..5) {
        // Poison one vector with NaN; with f = 1 Krum must pick another.
        let mut vs = vs;
        vs[bad][0] = f32::NAN;
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let (out, idx) = ops::krum(&refs, 1);
        prop_assert!(idx != bad, "Krum selected the NaN-poisoned vector");
        prop_assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn median_with_poisoned_minority_stays_finite(vs in vecs_strategy(7, 4), bad in 0usize..7) {
        let mut vs = vs;
        for w in vs[bad].iter_mut() {
            *w = f32::INFINITY;
        }
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let out = ops::coordinate_median(&refs);
        prop_assert!(out.iter().all(|x| x.is_finite()), "median leaked Inf: {out:?}");
    }

    // ---- model parameter plumbing -----------------------------------------

    #[test]
    fn classifier_params_round_trip(hidden in 4usize..32, seed in 0u64..1000) {
        let spec = ClassifierSpec::Mlp { hidden };
        let mut rng = fedguard::tensor::rng::SeededRng::new(seed);
        let clf = Classifier::new(&spec, &mut rng);
        let p = clf.get_params();
        prop_assert_eq!(p.len(), spec.num_params());
        let clf2 = Classifier::from_params(&spec, &p);
        prop_assert_eq!(clf2.get_params(), p);
    }

    // ---- synthesis budget --------------------------------------------------

    #[test]
    fn total_budget_counts_sum_exactly(t in 1usize..500, n in 1usize..60) {
        let counts = SynthesisBudget::Total(t).per_decoder_counts(n);
        prop_assert_eq!(counts.len(), n);
        prop_assert_eq!(counts.iter().sum::<usize>(), t);
        // Round-robin fairness: counts differ by at most one.
        let lo = counts.iter().min().unwrap();
        let hi = counts.iter().max().unwrap();
        prop_assert!(hi - lo <= 1);
    }

    // ---- poisoning transforms ------------------------------------------------

    #[test]
    fn label_flip_is_involutive_on_any_labels(labels in proptest::collection::vec(0u8..10, 1..50)) {
        let n = labels.len();
        let ds = Dataset::new(vec![0.0; n * 4], labels.clone());
        let flip = LabelFlip::paper();
        let twice = flip.applied(&flip.applied(&ds));
        prop_assert_eq!(twice.labels(), &labels[..]);
    }

    #[test]
    fn sign_flip_preserves_norm(v in proptest::collection::vec(-10.0f32..10.0, 8)) {
        use fedguard::attacks::ModelAttack;
        let mut p = v.clone();
        ModelAttack::SignFlip.corrupt(&mut p, 0);
        prop_assert!((vecops::l2_norm(&p) - vecops::l2_norm(&v)).abs() < 1e-4);
        for (a, b) in v.iter().zip(&p) {
            prop_assert_eq!(*b, -*a);
        }
    }

    #[test]
    fn fedavg_of_identical_updates_is_bit_equal_to_the_input(
        v in proptest::collection::vec(-5.0f32..5.0, 1..64),
        weights in proptest::collection::vec(0usize..1000, 2..8),
    ) {
        // Regression: the old `Σ (n/total)·x` form accumulated weights that
        // don't sum to exactly 1.0, so averaging m copies of the same vector
        // perturbed it. The incremental-mean fold copies the first update
        // verbatim and then adds exact zeros (`frac·(x−acc)` with `x == acc`),
        // so the result is bit-identical — for any weight profile, including
        // zero-total rounds (the unweighted fallback folds the same way).
        // (-0.0 is the one excluded input: IEEE `-0.0 + 0.0` is `+0.0`, so
        // the second fold would legitimately relax the sign bit.)
        let m = weights.len();
        let vs: Vec<Vec<f32>> = vec![v.clone(); m];
        let refs: Vec<&[f32]> = vs.iter().map(|x| x.as_slice()).collect();
        let out = ops::fedavg(&refs, &weights);
        prop_assert_eq!(out.len(), v.len());
        for (a, b) in out.iter().zip(&v) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} != {}", a, b);
        }
    }

    #[test]
    fn fedavg_matches_direct_weighted_sum_within_tolerance(
        m in 2usize..6,
        seed in 0u64..1000,
    ) {
        // The fold must still *be* the weighted mean: cross-check against
        // the naive Σ (n/total)·x form numerically.
        let mut rng = fedguard::tensor::rng::SeededRng::new(seed);
        let vs: Vec<Vec<f32>> = (0..m)
            .map(|_| (0..16).map(|_| rng.next_f32() * 10.0 - 5.0).collect())
            .collect();
        let weights: Vec<usize> = (0..m).map(|_| 1 + rng.next_below(50)).collect();
        let refs: Vec<&[f32]> = vs.iter().map(|x| x.as_slice()).collect();
        let out = ops::fedavg(&refs, &weights);
        let total: usize = weights.iter().sum();
        for j in 0..16 {
            let direct: f64 = vs
                .iter()
                .zip(&weights)
                .map(|(x, &n)| n as f64 / total as f64 * x[j] as f64)
                .sum();
            prop_assert!((out[j] as f64 - direct).abs() < 1e-4, "{} vs {}", out[j], direct);
        }
    }
}
