//! Cross-crate integration: the structured round-telemetry pipeline — one
//! event per round, stage-time accounting, score/threshold propagation from
//! the strategies, and the JSONL sink's serde round-trip.

use fedguard::attacks::{choose_malicious, ModelAttack, PoisoningInterceptor};
use fedguard::data::partition::{dirichlet_partition, partition_datasets};
use fedguard::data::synth::generate_dataset;
use fedguard::experiment::{AttackScenario, ExperimentConfig, Preset, StrategyKind};
use fedguard::fl::{
    read_jsonl, FaultConfig, FaultKind, FaultPlan, Federation, JsonlSink, MemoryCollector,
    ResiliencePolicy, RoundTelemetry, StderrProgress,
};
use fedguard::tensor::rng::SeededRng;
use fedguard::{FedGuardConfig, FedGuardStrategy};
use std::sync::Arc;

/// A smoke-scale FedGuard federation under a 40% same-value attack, with the
/// given observers already attached.
fn fedguard_federation(seed: u64, collector: MemoryCollector, sink: JsonlSink) -> Federation {
    let base = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SameValue { fraction: 0.4, value: 1.0 },
        seed,
    );
    let train = generate_dataset(base.per_class_train, seed ^ 1);
    let test = generate_dataset(base.per_class_test, seed ^ 2);
    let mut rng = SeededRng::new(seed ^ 3);
    let parts = dirichlet_partition(&train, base.fed.n_clients, base.dirichlet_alpha, 10, &mut rng);
    let datasets = partition_datasets(&train, &parts);
    let malicious = choose_malicious(base.fed.n_clients, 0.4, seed ^ 4);
    let interceptor = Arc::new(PoisoningInterceptor::new(
        malicious,
        ModelAttack::SameValue { value: 1.0 },
        seed ^ 5,
    ));
    let strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: base.fed.classifier,
        cvae: base.cvae.spec,
        budget: base.budget,
        class_probs: None,
        eval_batch: base.fed.eval_batch,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    Federation::builder(base.fed)
        .datasets(datasets)
        .test_set(test)
        .strategy(strategy)
        .interceptor(interceptor)
        .cvae(base.cvae)
        .observer(collector)
        .observer(sink)
        .build()
}

#[test]
fn telemetry_pipeline_end_to_end() {
    let collector = MemoryCollector::new();
    let path = std::env::temp_dir().join("fg_integration_telemetry").join("fedguard.jsonl");
    let sink = JsonlSink::create(&path).expect("create sink");
    let mut fed = fedguard_federation(90, collector.clone(), sink);
    let history = fed.run();

    // Exactly one event per round, round indices strictly increasing.
    let events = collector.events();
    assert_eq!(events.len(), history.len());
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.round, i, "round indices must be monotonic from 0");
        assert_eq!(e.strategy, "FedGuard");
    }

    // Stage timings: all finite and non-negative; the stages that always do
    // work (training, audit, evaluation) strictly positive; the named stages
    // account for most of the round's wall time.
    for e in &events {
        for (name, secs) in e.stages.named() {
            assert!(secs.is_finite(), "{name} not finite");
            assert!(secs >= 0.0, "{name} negative: {secs}");
        }
        assert!(e.stages.local_training_secs > 0.0);
        assert!(e.stages.synthesis_secs > 0.0, "FedGuard synthesizes every round");
        assert!(e.stages.audit_secs > 0.0, "FedGuard audits every round");
        assert!(e.stages.evaluation_secs > 0.0);
        assert!(e.wall_secs >= e.stages.total() * 0.9, "stages exceed the wall clock");
    }

    // FedGuard reports a score for every sampled client and a threshold in
    // accuracy range; selected/excluded partition the sample.
    for (e, r) in events.iter().zip(&history) {
        assert_eq!(e.scores.len(), e.sampled.len());
        let threshold = e.threshold.expect("FedGuard applies a threshold");
        assert!((0.0..=1.0).contains(&threshold));
        assert_eq!(e.sampled, r.sampled);
        assert_eq!(e.selected, r.selected);
        assert_eq!(e.selected_count() + e.excluded_count(), e.sampled.len());
        for c in &e.excluded {
            assert!(e.sampled.contains(c));
            assert!(!e.selected.contains(c));
        }
        assert_eq!(e.accuracy, r.accuracy);
        assert_eq!(e.comm, r.comm);
        // FedGuard moves decoders on the update frames: client uploads
        // exceed the plain-classifier broadcast downloads.
        assert!(e.comm.upload_bytes > e.comm.download_bytes);
    }

    // The JSONL trail round-trips through serde into identical events.
    let replayed: Vec<RoundTelemetry> = read_jsonl(&path).expect("read trail back");
    assert_eq!(replayed, events);
    let _ = std::fs::remove_file(&path);
}

/// A fault-injected smoke FedAvg federation with the given observers.
fn faulty_federation(
    seed: u64,
    faults: FaultConfig,
    policy: ResiliencePolicy,
    collector: MemoryCollector,
    sink: Option<JsonlSink>,
) -> Federation {
    let cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, seed);
    let train = generate_dataset(cfg.per_class_train, seed ^ 1);
    let test = generate_dataset(cfg.per_class_test, seed ^ 2);
    let mut rng = SeededRng::new(seed ^ 3);
    let parts = dirichlet_partition(&train, cfg.fed.n_clients, cfg.dirichlet_alpha, 10, &mut rng);
    let mut builder = Federation::builder(cfg.fed)
        .datasets(partition_datasets(&train, &parts))
        .test_set(test)
        .strategy(fedguard::agg::FedAvgStrategy)
        .faults(FaultPlan::new(faults, seed ^ 4))
        .resilience(policy)
        .observer(collector);
    if let Some(sink) = sink {
        builder = builder.observer(sink);
    }
    builder.build()
}

#[test]
fn fault_events_round_trip_through_jsonl() {
    let collector = MemoryCollector::new();
    let path = std::env::temp_dir().join("fg_integration_telemetry").join("faults.jsonl");
    let sink = JsonlSink::create(&path).expect("create sink");
    let mut fed = faulty_federation(
        80,
        FaultConfig::chaotic(),
        ResiliencePolicy::quorum(2),
        collector.clone(),
        Some(sink),
    );
    fed.run();

    let events = collector.events();
    assert!(
        events.iter().any(|e| !e.faults.is_empty()),
        "chaotic plan produced no fault events to round-trip"
    );

    // The JSONL trail deserializes into the identical event stream — fault
    // events (externally tagged enum variants with payloads) included.
    let replayed: Vec<RoundTelemetry> = read_jsonl(&path).expect("read trail back");
    assert_eq!(replayed, events);
    for (e, r) in events.iter().zip(&replayed) {
        assert_eq!(e.faults, r.faults);
        assert_eq!(e.survivors, r.survivors);
        assert_eq!(e.quorum_met, r.quorum_met);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn skipped_rounds_still_emit_one_event_each() {
    // Total dropout: every round is below quorum and skips aggregation —
    // the telemetry stream must still carry exactly one event per round.
    let collector = MemoryCollector::new();
    let mut fed = faulty_federation(
        81,
        FaultConfig { dropout_prob: 1.0, ..FaultConfig::default() },
        ResiliencePolicy::default(),
        collector.clone(),
        None,
    );
    let history = fed.run();
    let events = collector.events();
    assert_eq!(events.len(), history.len());
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.round, i);
        assert!(!e.quorum_met);
        assert!(e.survivors.is_empty());
        assert!(e.selected.is_empty());
        assert_eq!(e.excluded, e.sampled, "skip round excludes the whole sample");
        assert_eq!(e.lost_count(), e.sampled.len());
        assert!(e.faults.iter().all(|f| f.kind == FaultKind::Dropout));
        assert_eq!(e.faults.len(), e.sampled.len());
    }
}

#[test]
fn multiple_observers_see_identical_streams() {
    let a = MemoryCollector::new();
    let b = MemoryCollector::new();
    let cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 7);
    let train = generate_dataset(cfg.per_class_train, 70);
    let test = generate_dataset(cfg.per_class_test, 71);
    let mut rng = SeededRng::new(72);
    let parts = dirichlet_partition(&train, cfg.fed.n_clients, cfg.dirichlet_alpha, 10, &mut rng);
    let mut fed = Federation::builder(cfg.fed)
        .datasets(partition_datasets(&train, &parts))
        .test_set(test)
        .strategy(fedguard::agg::FedAvgStrategy)
        .observer(a.clone())
        .observer(b.clone())
        .observer(StderrProgress::new())
        .build();
    fed.run();
    assert_eq!(a.events(), b.events());
    assert_eq!(a.len(), fed.history().len());
    // FedAvg keeps everyone and applies no threshold.
    for e in a.events() {
        assert!(e.excluded.is_empty());
        assert!(e.threshold.is_none());
        assert!(e.scores.is_empty());
    }
}
