//! Cross-crate integration: the full federation pipeline at Smoke scale —
//! data synthesis → Dirichlet partitioning → local training → aggregation →
//! evaluation — for every aggregation strategy.

use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};
use fedguard::nn::models::CvaeSpec;

#[test]
fn every_strategy_learns_without_attack() {
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::GeoMed,
        StrategyKind::Krum,
        StrategyKind::Median,
        StrategyKind::TrimmedMean,
        StrategyKind::Spectral,
        StrategyKind::FedGuard,
    ] {
        let mut cfg = ExperimentConfig::preset(Preset::Smoke, strategy, AttackScenario::None, 5);
        cfg.fed.rounds = 4;
        let result = run_experiment(&cfg);
        assert_eq!(result.history.len(), 4);
        // Krum aggregates a single client's update, so it converges slower;
        // everything must at least clearly beat the 10% random baseline.
        assert!(
            result.final_accuracy() > 0.3,
            "{} failed to learn: {:.3}",
            strategy.name(),
            result.final_accuracy()
        );
        // Accuracy must trend upward from round 0.
        assert!(result.final_accuracy() >= result.history[0].accuracy);
    }
}

#[test]
fn fedguard_comm_accounting_includes_decoders() {
    let cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedGuard, AttackScenario::None, 6);
    let result = run_experiment(&cfg);
    let psi = cfg.fed.classifier.num_params() as u64 * 4;
    let theta = CvaeSpec::reduced(64, 8).decoder_params() as u64 * 4;
    let m = cfg.fed.clients_per_round as u64;
    for r in &result.history {
        // Broadcast: the classifier alone. Uploads: classifier + decoder.
        assert_eq!(r.comm.download_bytes, psi * m);
        assert_eq!(r.comm.upload_bytes, (psi + theta) * m);
    }

    // FedAvg moves no decoders.
    let cfg2 =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 6);
    let result2 = run_experiment(&cfg2);
    for r in &result2.history {
        assert_eq!(r.comm.upload_bytes, psi * m);
    }
}

#[test]
fn histories_record_sampling_invariants() {
    let cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedAvg,
        AttackScenario::SignFlip { fraction: 0.5 },
        7,
    );
    let result = run_experiment(&cfg);
    for r in &result.history {
        assert_eq!(r.sampled.len(), cfg.fed.clients_per_round);
        // Selected and malicious_sampled are subsets of sampled.
        assert!(r.selected.iter().all(|c| r.sampled.contains(c)));
        assert!(r.malicious_sampled.iter().all(|c| r.sampled.contains(c)));
        // Ground truth roster matches the interceptor's.
        assert!(r.malicious_sampled.iter().all(|c| result.malicious_clients.contains(c)));
    }
}

#[test]
fn server_lr_slows_but_stabilizes_convergence() {
    let mut fast_cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 8);
    fast_cfg.fed.rounds = 4;
    let mut damped_cfg = fast_cfg.clone();
    damped_cfg.fed.server_lr = 0.3;

    let fast = run_experiment(&fast_cfg);
    let damped = run_experiment(&damped_cfg);
    // The exact 0.3x parameter-space displacement is unit-tested in fg-fl
    // (accuracy is not monotone in parameter interpolation, so per-round
    // accuracy comparisons would be brittle). Here: both must learn, and the
    // damped run must actually differ from the full-step run.
    assert!(fast.final_accuracy() > 0.3);
    assert!(damped.final_accuracy() > 0.3);
    assert_ne!(fast.accuracy_series(), damped.accuracy_series());
}

#[test]
fn seeds_produce_identical_runs_and_different_seeds_do_not() {
    let cfg = |seed| {
        ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedGuard,
            AttackScenario::SameValue { fraction: 0.3, value: 1.0 },
            seed,
        )
    };
    let a = run_experiment(&cfg(9));
    let b = run_experiment(&cfg(9));
    let c = run_experiment(&cfg(10));
    assert_eq!(a.accuracy_series(), b.accuracy_series());
    assert_ne!(a.accuracy_series(), c.accuracy_series());
    assert_eq!(a.malicious_clients, b.malicious_clients);
}
