//! Cross-crate integration: FedGuard-specific behaviors — the synthesis
//! pipeline embedded in a live federation, budget variants, audit traces,
//! and failure injection.

use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};
use fedguard::fl::{AggregationContext, AggregationStrategy, ModelUpdate};
use fedguard::nn::models::{Classifier, ClassifierSpec, Cvae, CvaeSpec};
use fedguard::nn::{Adam, Sgd};
use fedguard::synthesis::{DecoderSubmission, SynthesisBudget};
use fedguard::tensor::rng::SeededRng;
use fedguard::{FedGuardConfig, FedGuardStrategy};

#[test]
fn budget_variants_both_run_in_federation() {
    for budget in [SynthesisBudget::Total(30), SynthesisBudget::PerDecoder(6)] {
        let mut cfg = ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedGuard,
            AttackScenario::None,
            12,
        );
        cfg.budget = budget;
        let result = run_experiment(&cfg);
        assert!(result.final_accuracy() > 0.3, "{budget:?}: {:.3}", result.final_accuracy());
    }
}

fn trained_update(
    id: usize,
    seed: u64,
    spec: &ClassifierSpec,
    cvae_spec: &CvaeSpec,
) -> ModelUpdate {
    let data = fedguard::data::synth::generate_dataset(15, seed);
    let mut rng = SeededRng::new(seed);
    let mut clf = Classifier::new(spec, &mut rng);
    let mut sgd = Sgd::with_momentum(0.1, 0.9);
    for _ in 0..5 {
        for (x, y) in data.batches(32) {
            clf.train_batch(&x, &y, &mut sgd);
        }
    }
    let mut cvae = Cvae::new(cvae_spec, &mut rng);
    let mut adam = Adam::new(2e-3);
    for _ in 0..40 {
        for (x, y) in data.batches(64) {
            cvae.train_batch(&x, &y, &mut adam, &mut rng);
        }
    }
    let coverage = data.class_histogram(10).iter().map(|&c| c as u32).collect();
    ModelUpdate {
        client_id: id,
        params: clf.get_params(),
        num_samples: data.len(),
        decoder: Some(cvae.decoder_params()),
        class_coverage: Some(coverage),
    }
}

#[test]
fn all_malicious_round_does_not_crash_and_keeps_someone() {
    // Degenerate round: every update poisoned. FedGuard keeps the
    // above-mean subset of whatever it got — it cannot do better — and must
    // not panic or return NaNs.
    let spec = ClassifierSpec::Mlp { hidden: 16 };
    let cvae_spec = CvaeSpec::reduced(32, 4);
    let mut updates: Vec<ModelUpdate> =
        (0..4).map(|i| trained_update(i, 60 + i as u64, &spec, &cvae_spec)).collect();
    for u in &mut updates {
        u.params.iter_mut().for_each(|w| *w = 1.0);
    }
    let global = vec![0.0f32; updates[0].params.len()];
    let mut strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: spec,
        cvae: cvae_spec,
        budget: SynthesisBudget::Total(20),
        class_probs: None,
        eval_batch: 32,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(0) };
    let out = strategy.aggregate(&updates, &mut ctx);
    assert!(!out.selected.is_empty());
    assert!(out.params.iter().all(|w| w.is_finite()));
}

#[test]
fn single_client_round_degenerates_to_that_client() {
    let spec = ClassifierSpec::Mlp { hidden: 16 };
    let cvae_spec = CvaeSpec::reduced(32, 4);
    let update = trained_update(3, 70, &spec, &cvae_spec);
    let global = vec![0.0f32; update.params.len()];
    let mut strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: spec,
        cvae: cvae_spec,
        budget: SynthesisBudget::Total(10),
        class_probs: None,
        eval_batch: 32,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(1) };
    let out = strategy.aggregate(std::slice::from_ref(&update), &mut ctx);
    assert_eq!(out.selected, vec![3]);
    assert_eq!(out.params, update.params);
}

#[test]
fn audit_scores_are_reported_for_every_update() {
    let spec = ClassifierSpec::Mlp { hidden: 16 };
    let cvae_spec = CvaeSpec::reduced(32, 4);
    let updates: Vec<ModelUpdate> =
        (0..3).map(|i| trained_update(i, 80 + i as u64, &spec, &cvae_spec)).collect();
    let global = vec![0.0f32; updates[0].params.len()];
    let mut strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: spec,
        cvae: cvae_spec,
        budget: SynthesisBudget::Total(20),
        class_probs: None,
        eval_batch: 32,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(2) };
    let out = strategy.aggregate(&updates, &mut ctx);
    assert_eq!(out.scores.len(), 3);
    let ids: Vec<usize> = out.scores.iter().map(|&(id, _)| id).collect();
    assert_eq!(ids, vec![0, 1, 2]);
    assert!(out.scores.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
}

#[test]
fn class_probs_focus_the_audit_on_chosen_classes() {
    // §VI-A: "the quantity of data to generate can be selected for each
    // class". A probs vector concentrated on class 0 must yield an audit
    // set of only class-0 samples.
    let spec = ClassifierSpec::Mlp { hidden: 16 };
    let cvae_spec = CvaeSpec::reduced(32, 4);
    let updates: Vec<ModelUpdate> =
        (0..2).map(|i| trained_update(i, 90 + i as u64, &spec, &cvae_spec)).collect();

    let decoders: Vec<DecoderSubmission<'_>> = updates
        .iter()
        .map(|u| DecoderSubmission::plain(u.client_id, u.decoder.as_deref().unwrap()))
        .collect();
    let mut probs = vec![0.0f32; 10];
    probs[0] = 1.0;
    let ds = fedguard::synthesis::synthesize_validation_set(
        &decoders,
        &cvae_spec,
        &SynthesisBudget::Total(16),
        Some(&probs),
        false,
        &mut SeededRng::new(3),
    );
    assert_eq!(ds.len(), 16);
    assert!(ds.labels().iter().all(|&l| l == 0));
}

#[test]
fn fedguard_survives_shard_heterogeneity_with_coverage_awareness() {
    // §VI-B: under pathological shard partitioning most clients see ~2
    // classes; coverage-aware synthesis keeps the audit meaningful. This is
    // a smoke-scale run: the assertion is "still learns and still excludes",
    // not a paper-scale claim (see the heterogeneity ablation for that).
    use fedguard::attacks::{choose_malicious, ModelAttack, PoisoningInterceptor};
    use fedguard::data::partition::{partition_datasets, shard_partition};
    use fedguard::data::synth::generate_dataset;
    use fedguard::fl::Federation;
    use std::sync::Arc;

    let base =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedGuard, AttackScenario::None, 31);
    let train = generate_dataset(base.per_class_train, 32);
    let test = generate_dataset(base.per_class_test, 33);
    let mut rng = SeededRng::new(34);
    let parts = shard_partition(&train, base.fed.n_clients, 3, &mut rng);
    let datasets = partition_datasets(&train, &parts);

    let malicious = choose_malicious(base.fed.n_clients, 0.3, 35);
    let interceptor =
        Arc::new(PoisoningInterceptor::new(malicious, ModelAttack::SameValue { value: 1.0 }, 36));
    let strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: base.fed.classifier,
        cvae: base.cvae.spec,
        budget: base.budget,
        class_probs: None,
        eval_batch: base.fed.eval_batch,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: true,
        audit: Default::default(),
    });
    let mut fed = Federation::builder(base.fed)
        .datasets(datasets)
        .test_set(test)
        .strategy(strategy)
        .interceptor(interceptor)
        .cvae(base.cvae)
        .build();
    let history = fed.run();
    let last = history.last().unwrap();
    assert!(last.accuracy > 0.25, "collapsed under shards: {:.3}", last.accuracy);
    let excluded: usize = history.iter().map(|r| r.malicious_excluded()).sum();
    let sampled: usize = history.iter().map(|r| r.malicious_sampled.len()).sum();
    if sampled > 0 {
        assert!(excluded * 2 >= sampled, "exclusion too weak: {excluded}/{sampled}");
    }
}

#[test]
fn nan_update_poisons_fedavg_but_not_fedguard() {
    // Failure injection: a client that submits NaN parameters. FedAvg's
    // mean becomes NaN; FedGuard's audit scores the update 0 and drops it.
    use fedguard::agg::FedAvgStrategy;
    use fedguard::fl::AggregationStrategy as _;

    let spec = ClassifierSpec::Mlp { hidden: 16 };
    let cvae_spec = CvaeSpec::reduced(32, 4);
    let mut updates: Vec<ModelUpdate> =
        (0..3).map(|i| trained_update(i, 40 + i as u64, &spec, &cvae_spec)).collect();
    updates[1].params.iter_mut().for_each(|w| *w = f32::NAN);

    let global = vec![0.0f32; updates[0].params.len()];

    let mut fedavg = FedAvgStrategy;
    let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(0) };
    let avg = fedavg.aggregate(&updates, &mut ctx);
    assert!(avg.params.iter().any(|w| w.is_nan()), "NaN should poison FedAvg's mean");

    let mut guard = FedGuardStrategy::new(FedGuardConfig {
        classifier: spec,
        cvae: cvae_spec,
        budget: SynthesisBudget::Total(20),
        class_probs: None,
        eval_batch: 32,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(1) };
    let out = guard.aggregate(&updates, &mut ctx);
    assert!(!out.selected.contains(&1));
    assert!(out.params.iter().all(|w| w.is_finite()));
}
