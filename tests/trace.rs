//! Acceptance test for the cross-layer tracing pipeline: a seeded two-round
//! FedGuard federation run with tracing enabled must produce a span stream
//! whose per-stage totals agree with the emitted `StageTimings`, whose
//! pool-executed `client.train` spans nest under the round's logical
//! `round.local_training` parent (even when stolen by a worker thread), and
//! which exports to parseable Chrome-trace JSON.
//!
//! Single test on purpose: tracing state and the ring buffers are
//! process-global, so this binary owns them outright.

use fedguard::experiment::{AttackScenario, ExperimentConfig, Preset, StrategyKind};
use fedguard::fl::{Federation, MemoryCollector};
use fedguard::{FedGuardConfig, FedGuardStrategy};
use fg_obs::span::SpanRecord;
use std::collections::HashMap;

const STAGE_SPANS: [&str; 7] = [
    "round.sampling",
    "round.local_training",
    "round.sanitize",
    "round.synthesis",
    "round.audit",
    "round.aggregation",
    "round.evaluation",
];

fn assert_close(name: &str, trace_secs: f64, stage_secs: f64) {
    let tol = 0.01 * trace_secs.max(stage_secs) + 1e-9;
    assert!(
        (trace_secs - stage_secs).abs() <= tol,
        "{name}: trace total {trace_secs:.9}s vs StageTimings {stage_secs:.9}s \
         disagree by more than 1%"
    );
}

#[test]
fn traced_two_round_fedguard_run_matches_stage_timings() {
    let base =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedGuard, AttackScenario::None, 17);
    let mut fed_cfg = base.fed;
    fed_cfg.rounds = 2;

    let train = fedguard::data::synth::generate_dataset(base.per_class_train, 1);
    let test = fedguard::data::synth::generate_dataset(base.per_class_test, 2);
    let mut part_rng = fedguard::tensor::rng::SeededRng::new(3);
    let parts = fedguard::data::partition::dirichlet_partition(
        &train,
        fed_cfg.n_clients,
        base.dirichlet_alpha,
        10,
        &mut part_rng,
    );
    let datasets = fedguard::data::partition::partition_datasets(&train, &parts);

    let strategy = FedGuardStrategy::new(FedGuardConfig {
        classifier: fed_cfg.classifier,
        cvae: base.cvae.spec,
        budget: base.budget,
        class_probs: None,
        eval_batch: fed_cfg.eval_batch,
        inner: fedguard::InnerAggregator::FedAvg,
        coverage_aware: false,
        audit: Default::default(),
    });
    let collector = MemoryCollector::new();
    let mut federation = Federation::builder(fed_cfg)
        .datasets(datasets)
        .test_set(test)
        .strategy(strategy)
        .cvae(base.cvae)
        .observer(collector.clone())
        .build();

    fg_obs::set_enabled(true);
    let _ = fg_obs::span::take_spans(); // drop any spans from process setup
    rayon::with_threads(2, || {
        federation.run();
    });
    fg_obs::set_enabled(false);
    let spans = fg_obs::span::take_spans();
    assert_eq!(fg_obs::span::dropped_spans(), 0, "ring overflow would skew stage totals");

    let events = collector.events();
    assert_eq!(events.len(), 2);

    // Every event is stamped with the current schema version and, because
    // tracing was on, carries a non-empty metrics snapshot that saw GEMM
    // traffic.
    for e in &events {
        assert_eq!(e.schema_version, fedguard::fl::telemetry::SCHEMA_VERSION);
        assert!(!e.metrics.is_empty(), "tracing-enabled runs fold metrics into telemetry");
        assert!(e.metrics.counter("tensor.gemm.calls").unwrap_or(0) > 0);
    }

    // (1) All seven stage spans are present, two of each (one per round).
    let totals = fg_obs::export::totals_by_name(&spans);
    for name in STAGE_SPANS {
        let n = spans.iter().filter(|s| s.name == name).count();
        assert_eq!(n, 2, "expected one {name} span per round, got {n}");
    }

    // (2) Span-derived stage totals agree with the summed StageTimings
    // within 1%. Aggregation is the remainder of the aggregate() call after
    // the strategy's self-reported synthesis and audit phases.
    let stage_sum = |f: fn(&fedguard::fl::StageTimings) -> f64| -> f64 {
        events.iter().map(|e| f(&e.stages)).sum()
    };
    assert_close("sampling", totals["round.sampling"], stage_sum(|s| s.sampling_secs));
    assert_close(
        "local_training",
        totals["round.local_training"],
        stage_sum(|s| s.local_training_secs),
    );
    assert_close("sanitize", totals["round.sanitize"], stage_sum(|s| s.sanitize_secs));
    assert_close("synthesis", totals["round.synthesis"], stage_sum(|s| s.synthesis_secs));
    assert_close("audit", totals["round.audit"], stage_sum(|s| s.audit_secs));
    assert_close(
        "aggregation",
        totals["round.aggregation"] - totals["round.synthesis"] - totals["round.audit"],
        stage_sum(|s| s.aggregation_secs),
    );
    assert_close("evaluation", totals["round.evaluation"], stage_sum(|s| s.evaluation_secs));
    assert_close("wall", totals["round"], events.iter().map(|e| e.wall_secs).sum());

    // (3) Every client.train span nests (transitively) under a
    // round.local_training span, and at least one executed on a different
    // thread than its logical parent — the stolen-job case.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let ancestor_of = |span: &SpanRecord, name: &str| -> Option<SpanRecord> {
        let mut cur = span.parent;
        while cur != 0 {
            let p = by_id.get(&cur)?;
            if p.name == name {
                return Some(**p);
            }
            cur = p.parent;
        }
        None
    };
    let train_spans: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "client.train").collect();
    assert_eq!(train_spans.len(), 2 * fed_cfg.clients_per_round);
    let mut cross_thread = 0;
    for s in &train_spans {
        let parent = ancestor_of(s, "round.local_training")
            .unwrap_or_else(|| panic!("client.train span {} has no logical parent", s.id));
        if parent.tid != s.tid {
            cross_thread += 1;
        }
    }
    assert!(cross_thread > 0, "no client.train span was executed by a pool worker");

    // (4) Deeper layers show up under the same tree: GEMM and per-layer
    // spans were recorded, and the Chrome export parses back with one event
    // per span.
    assert!(totals.contains_key("tensor.gemm"), "GEMM microkernel spans missing");
    assert!(totals.contains_key("nn.forward"), "per-pass nn spans missing");
    let json = fg_obs::export::chrome_trace_json(&spans);
    let value: serde::Value = serde_json::from_str(&json).expect("chrome trace JSON parses");
    let obj = value.as_obj().expect("trace root is an object");
    let events_json = serde::obj_get(obj, "traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events_json.len(), spans.len());

    // (5) The collapsed-stack export folds the same spans without loss.
    let folded = fg_obs::export::collapsed_stacks(&spans);
    assert!(folded.lines().any(|l| l.starts_with("round;round.local_training;client.train")));
}
