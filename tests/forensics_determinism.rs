//! The forensics ledger's determinism contract: the serialized ledger of a
//! seeded FedGuard run is **byte-identical** across every non-observable
//! axis — worker-pool size (1 vs 4 threads), deployment (in-process
//! `LocalTransport` vs loopback TCP), and audit mode (batched vs
//! sequential) — and its per-round exclusion verdicts reproduce the
//! aggregation outcome recorded in telemetry exactly.

use fedguard::experiment::{
    build_client, run_experiment_full, run_served_experiment, AttackScenario, ExperimentConfig,
    Preset, RunArtifacts, StrategyKind,
};
use fg_fl::{
    read_forensics_jsonl, run_federated_client, ExclusionCause, NetConfig, TcpClientChannel,
    TcpTransport,
};
use fg_nn::models::Classifier;
use fg_tensor::rng::SeededRng;
use std::thread;
use std::time::Duration;

fn net_cfg() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(20),
        join_timeout: Duration::from_secs(20),
        heartbeat_interval: Duration::from_secs(5),
        ..NetConfig::default()
    }
}

/// Loopback TCP deployment with one worker thread per client (the
/// `net_equivalence` pattern, trimmed to what this test needs).
fn serve_over_tcp(cfg: &ExperimentConfig) -> RunArtifacts {
    let blob = serde_json::to_string(cfg).expect("config serializes");
    let param_len =
        Classifier::new(&cfg.fed.classifier, &mut SeededRng::new(0)).get_params().len() as u64;
    let mut transport =
        TcpTransport::bind("127.0.0.1:0", cfg.fed.n_clients, param_len, blob, net_cfg())
            .expect("bind loopback transport")
            .with_compression(cfg.compression.resolved());
    let addr = transport.local_addr().expect("ephemeral address");
    let handles: Vec<_> = (0..cfg.fed.n_clients)
        .map(|id| {
            thread::spawn(move || {
                let mut channel =
                    TcpClientChannel::connect(addr, id, net_cfg()).expect("worker joins");
                let parsed: ExperimentConfig =
                    serde_json::from_str(channel.welcome_blob()).expect("blob parses");
                let (mut client, interceptor) = build_client(&parsed, id);
                run_federated_client(&mut channel, &mut client, interceptor.as_ref())
                    .expect("worker session completes")
            })
        })
        .collect();
    transport.wait_for_clients().expect("all workers join");
    let served = run_served_experiment(cfg, Box::new(transport));
    for h in handles {
        h.join().expect("worker thread");
    }
    served
}

fn ledger_bytes(run: &RunArtifacts) -> String {
    serde_json::to_string(&run.forensics).expect("ledger serializes")
}

#[test]
fn ledger_is_byte_identical_across_threads_transports_and_audit_modes() {
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SignFlip { fraction: 0.4 },
        42,
    );
    cfg.fed.rounds = 8;

    let baseline = rayon::with_threads(4, || run_experiment_full(&cfg));
    let reference = ledger_bytes(&baseline);
    assert_eq!(baseline.forensics.len(), 8, "one ledger record per round");

    // Axis 1: worker-pool size.
    let single = rayon::with_threads(1, || run_experiment_full(&cfg));
    assert_eq!(ledger_bytes(&single), reference, "1 vs 4 threads diverged");

    // Axis 2: deployment (in-process vs loopback TCP).
    let served = serve_over_tcp(&cfg);
    assert_eq!(ledger_bytes(&served), reference, "Local vs TCP diverged");

    // Axis 3: audit mode.
    let mut seq_cfg = cfg.clone();
    seq_cfg.fedguard_audit = fedguard::AuditMode::Sequential;
    let sequential = run_experiment_full(&seq_cfg);
    assert_eq!(ledger_bytes(&sequential), reference, "audit mode diverged");

    // The ledger's exclusion verdicts reproduce the aggregation outcome:
    // per round, exactly the telemetry's excluded roster, and on this
    // fault-free quorum-met run every exclusion is a threshold cut.
    for (t, f) in baseline.telemetry.iter().zip(&baseline.forensics) {
        assert_eq!(t.round, f.round);
        let mut expected = t.excluded.clone();
        expected.sort_unstable();
        assert_eq!(f.excluded_ids(), expected, "round {} exclusion set", t.round);
        assert!(f.quorum_met);
        for v in &f.verdicts {
            if v.excluded {
                assert_eq!(
                    v.cause,
                    Some(ExclusionCause::BelowThreshold),
                    "round {} client {}",
                    t.round,
                    v.client_id
                );
            }
            // Ground truth in the ledger matches the run's malicious roster.
            assert_eq!(
                v.malicious,
                baseline.result.malicious_clients.contains(&v.client_id),
                "round {} client {}",
                t.round,
                v.client_id
            );
        }
    }

    // Running precision/recall come from somewhere real: a sign-flip attack
    // at 40% with FedGuard should exclude at least one true positive.
    let last = baseline.forensics.last().unwrap();
    assert!(last.confusion.true_positives > 0, "no malicious client was ever excluded");
    assert_eq!(last.precision, last.confusion.precision());
    assert_eq!(last.recall, last.confusion.recall());
}

#[test]
fn forensics_jsonl_written_next_to_telemetry_roundtrips() {
    let dir = std::env::temp_dir().join("fg_forensics_determinism_test");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SignFlip { fraction: 0.4 },
        7,
    );
    cfg.fed.rounds = 2;
    cfg.telemetry_dir = Some(dir.to_string_lossy().into_owned());

    let run = run_experiment_full(&cfg);
    let path = dir.join(format!("{}.forensics.jsonl", cfg.cell_stem()));
    let back = read_forensics_jsonl(&path).expect("forensics JSONL readable");
    assert_eq!(back, run.forensics, "file and in-memory ledger diverged");
    assert_eq!(back.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
