//! Cross-crate integration: attack efficacy and FedGuard's defense, at
//! Smoke scale. These tests pin the *shape* of the paper's findings: the
//! undefended federation collapses under model poisoning; FedGuard's audit
//! excludes the poisoned updates.

use fedguard::data::synth::generate_dataset;
use fedguard::data::LabelFlip;
use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};
use fedguard::nn::models::{Classifier, ClassifierSpec};

#[test]
fn fedavg_collapses_under_same_value_majority() {
    let mut cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedAvg,
        AttackScenario::SameValue { fraction: 0.5, value: 1.0 },
        1,
    );
    cfg.fed.rounds = 4;
    let result = run_experiment(&cfg);
    // Table IV shape: FedAvg ends near random guessing (10.16% in the paper).
    assert!(
        result.final_accuracy() < 0.3,
        "FedAvg unexpectedly survived: {:.3}",
        result.final_accuracy()
    );
}

#[test]
fn additive_noise_cripples_fedavg_relative_to_clean_run() {
    let mut noisy_cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedAvg,
        AttackScenario::AdditiveNoise { fraction: 0.5, sigma: 1.0 },
        2,
    );
    noisy_cfg.fed.rounds = 4;
    let mut clean_cfg =
        ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 2);
    clean_cfg.fed.rounds = 4;
    let noisy = run_experiment(&noisy_cfg);
    let clean = run_experiment(&clean_cfg);
    // At Smoke scale m = 5, so the sampled malicious count is noisy; assert
    // the robust shape — a large gap to the clean run — rather than full
    // collapse (which the fast preset reproduces; see EXPERIMENTS.md).
    assert!(
        noisy.final_accuracy() < clean.final_accuracy() - 0.3,
        "noisy {:.3} vs clean {:.3}",
        noisy.final_accuracy(),
        clean.final_accuracy()
    );
}

#[test]
fn fedguard_beats_fedavg_under_same_value() {
    let attack = AttackScenario::SameValue { fraction: 0.4, value: 1.0 };
    let mut avg_cfg = ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, attack, 3);
    avg_cfg.fed.rounds = 4;
    let mut guard_cfg = ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedGuard, attack, 3);
    guard_cfg.fed.rounds = 4;

    let fedavg = run_experiment(&avg_cfg);
    let fedguard = run_experiment(&guard_cfg);
    assert!(
        fedguard.final_accuracy() > fedavg.final_accuracy() + 0.2,
        "FedGuard {:.3} vs FedAvg {:.3}",
        fedguard.final_accuracy(),
        fedavg.final_accuracy()
    );
    // The audit must actually be excluding poisoned submissions.
    assert!(fedguard.detection().malicious_exclusion_rate > 0.5);
}

#[test]
fn fedguard_defends_from_the_first_round() {
    // §VI-A: "provides resilience against poisoning attacks from the very
    // first round" — round 0's selection must already exclude attackers.
    let cfg = ExperimentConfig::preset(
        Preset::Smoke,
        StrategyKind::FedGuard,
        AttackScenario::SameValue { fraction: 0.4, value: 1.0 },
        4,
    );
    let result = run_experiment(&cfg);
    let round0 = &result.history[0];
    if !round0.malicious_sampled.is_empty() {
        assert!(round0.malicious_excluded() > 0, "no malicious update excluded in round 0");
    }
}

#[test]
fn label_flip_poisons_the_flipped_classes_specifically() {
    // Train one classifier on clean data and one on flipped data; the
    // flipped model must disagree on the flipped classes far more than on
    // untouched ones.
    let clean = generate_dataset(40, 10);
    let flipped = LabelFlip::paper().applied(&clean);
    let test = generate_dataset(30, 11);

    let spec = ClassifierSpec::Mlp { hidden: 32 };
    let train = |data: &fedguard::data::Dataset, seed: u64| {
        let mut rng = fedguard::tensor::rng::SeededRng::new(seed);
        let mut clf = Classifier::new(&spec, &mut rng);
        let mut sgd = fedguard::nn::Sgd::with_momentum(0.1, 0.9);
        for _ in 0..8 {
            for (x, y) in data.batches(32) {
                clf.train_batch(&x, &y, &mut sgd);
            }
        }
        clf
    };

    let mut clean_clf = train(&clean, 1);
    let mut flipped_clf = train(&flipped, 1);

    let x = test.to_tensor();
    let y = test.labels_usize();
    let flipped_classes = [2usize, 4, 5, 7];

    let acc_on = |clf: &mut Classifier, keep: &dyn Fn(usize) -> bool| {
        let preds = clf.predict(&x);
        let pairs: Vec<(usize, usize)> =
            preds.iter().zip(&y).filter(|(_, &t)| keep(t)).map(|(&p, &t)| (p, t)).collect();
        pairs.iter().filter(|(p, t)| p == t).count() as f32 / pairs.len() as f32
    };

    let clean_on_flipped = acc_on(&mut clean_clf, &|t| flipped_classes.contains(&t));
    let bad_on_flipped = acc_on(&mut flipped_clf, &|t| flipped_classes.contains(&t));
    let bad_on_untouched = acc_on(&mut flipped_clf, &|t| !flipped_classes.contains(&t));

    assert!(clean_on_flipped > 0.7, "clean model weak on target classes: {clean_on_flipped}");
    assert!(
        bad_on_flipped < 0.3,
        "flipped model should misclassify flipped classes: {bad_on_flipped}"
    );
    assert!(
        bad_on_untouched > 0.6,
        "flipped model should still handle untouched classes: {bad_on_untouched}"
    );
}

#[test]
fn colluding_noise_is_coordinated_across_clients() {
    // TM-5: the additive-noise attackers agree on ε. Two malicious clients'
    // corruption deltas must be identical within a round.
    use fedguard::attacks::{ModelAttack, PoisoningInterceptor};
    use fedguard::fl::{ModelUpdate, UpdateInterceptor};

    let interceptor =
        PoisoningInterceptor::new(vec![0, 1], ModelAttack::AdditiveNoise { sigma: 0.5 }, 99);
    let base = vec![0.25f32; 64];
    let mut u0 = ModelUpdate {
        client_id: 0,
        params: base.clone(),
        num_samples: 1,
        decoder: None,
        class_coverage: None,
    };
    let mut u1 = ModelUpdate {
        client_id: 1,
        params: base.clone(),
        num_samples: 1,
        decoder: None,
        class_coverage: None,
    };
    interceptor.intercept(&mut u0, 3);
    interceptor.intercept(&mut u1, 3);
    assert_eq!(u0.params, u1.params);
    assert_ne!(u0.params, base);
}
