//! Attack gallery: all four poisoning attacks of the paper (§IV-B) against
//! an undefended federation and a FedGuard-defended one, side by side.
//!
//! ```text
//! cargo run --release -p fedguard --example attack_gallery
//! ```

use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};

fn main() {
    let attacks = [
        (
            "additive noise, 50% malicious",
            AttackScenario::AdditiveNoise { fraction: 0.5, sigma: 8.0 },
        ),
        ("label flipping, 30% malicious", AttackScenario::LabelFlip { fraction: 0.3 }),
        ("sign flipping, 50% malicious", AttackScenario::SignFlip { fraction: 0.5 }),
        ("same value, 50% malicious", AttackScenario::SameValue { fraction: 0.5, value: 1.0 }),
        ("no attack (reference)", AttackScenario::None),
    ];

    println!(
        "{:34} | {:>10} | {:>10} | {:>17}",
        "attack", "FedAvg", "FedGuard", "malicious dropped"
    );
    println!("{}", "-".repeat(82));
    for (label, attack) in attacks {
        let fedavg = run_experiment(&ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedAvg,
            attack,
            11,
        ));
        let fedguard = run_experiment(&ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedGuard,
            attack,
            11,
        ));
        println!(
            "{:34} | {:>9.1}% | {:>9.1}% | {:>16.0}%",
            label,
            fedavg.final_accuracy() * 100.0,
            fedguard.final_accuracy() * 100.0,
            fedguard.detection().malicious_exclusion_rate * 100.0,
        );
    }
    println!("\n(Smoke preset: 10 clients, 3 rounds — run the fg-bench binaries for the");
    println!(" paper-shaped experiments at the fast or paper preset.)");
}
