//! Extending the framework: plug a custom aggregation strategy into the
//! federation. This demonstrates the §VI-C "internal aggregation operator"
//! direction — here, FedGuard-style auditing is unnecessary; we build a
//! simple norm-clip + coordinate-median hybrid and run it against a
//! same-value attack.
//!
//! ```text
//! cargo run --release -p fedguard --example custom_defense
//! ```

use fedguard::agg::ops::{clip_to_norm, coordinate_median};
use fedguard::attacks::{choose_malicious, ModelAttack, PoisoningInterceptor};
use fedguard::data::partition::{dirichlet_partition, partition_datasets};
use fedguard::data::synth::generate_dataset;
use fedguard::fl::{
    AggregationContext, AggregationMemory, AggregationOutcome, AggregationStrategy, Federation,
    FederationConfig, LocalTrainConfig, ModelUpdate, StderrProgress,
};
use fedguard::nn::models::ClassifierSpec;
use fedguard::tensor::rng::SeededRng;
use std::sync::Arc;

/// A custom defense: clip every update to the median update norm, then take
/// the coordinate-wise median.
struct ClippedMedian;

impl AggregationStrategy for ClippedMedian {
    fn name(&self) -> &'static str {
        "ClippedMedian"
    }

    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        _ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome {
        // Median norm as the clipping radius.
        let mut norms: Vec<f32> =
            updates.iter().map(|u| fedguard::tensor::vecops::l2_norm(&u.params)).collect();
        norms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let radius = norms[norms.len() / 2];

        let clipped: Vec<Vec<f32>> =
            updates.iter().map(|u| clip_to_norm(&u.params, radius)).collect();
        let refs: Vec<&[f32]> = clipped.iter().map(|v| v.as_slice()).collect();
        AggregationOutcome::new(
            coordinate_median(&refs),
            updates.iter().map(|u| u.client_id).collect(),
        )
    }
}

fn main() {
    let config = FederationConfig {
        n_clients: 10,
        clients_per_round: 5,
        rounds: 8,
        classifier: ClassifierSpec::Mlp { hidden: 24 },
        local: LocalTrainConfig { epochs: 2, batch_size: 16, lr: 0.1, momentum: 0.9, prox_mu: 0.0 },
        server_lr: 1.0,
        eval_batch: 64,
        seed: 21,
        agg_memory: AggregationMemory::Batch,
    };

    let train = generate_dataset(40, 1);
    let test = generate_dataset(20, 2);
    let mut rng = SeededRng::new(3);
    let parts = dirichlet_partition(&train, config.n_clients, 10.0, 10, &mut rng);
    let datasets = partition_datasets(&train, &parts);

    // 20% of clients submit all-ones updates — within the breakdown point
    // of a median-based defense (unlike FedGuard, it cannot survive a
    // malicious majority; cf. Table IV's GeoMed/Krum rows at 50%).
    let malicious = choose_malicious(config.n_clients, 0.2, 4);
    println!("Malicious clients: {malicious:?}");
    let interceptor =
        Arc::new(PoisoningInterceptor::new(malicious, ModelAttack::SameValue { value: 1.0 }, 5));

    let mut federation = Federation::builder(config)
        .datasets(datasets)
        .test_set(test)
        .strategy(ClippedMedian)
        .interceptor(interceptor)
        .observer(StderrProgress::labeled("custom_defense"))
        .build();
    for record in federation.run() {
        println!(
            "round {} accuracy {:.1}% ({} malicious among {} sampled)",
            record.round,
            record.accuracy * 100.0,
            record.malicious_sampled.len(),
            record.sampled.len()
        );
    }
    println!("\nCoordinate-median with norm clipping resists a 20% same-value attack");
    println!("without any auditing — but unlike FedGuard it breaks down once the");
    println!("attackers approach a majority of a round's sample.");
}
