//! The "tuneable system" knob (§VI-A): trade FedGuard's server-side cost
//! against validation-set diversity by adjusting the synthesis budget `t`
//! and its distribution across decoders — and see the communication overhead
//! FedGuard adds at paper scale.
//!
//! ```text
//! cargo run --release -p fedguard --example overhead_tuning
//! ```

use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};
use fedguard::nn::models::{ClassifierSpec, CvaeSpec};
use fedguard::synthesis::SynthesisBudget;

fn main() {
    // Part 1 — the analytic communication overhead at the paper's scale.
    let psi = ClassifierSpec::TableIICnn.num_params() as f64 * 4.0 / 1e6;
    let theta = CvaeSpec::table_iii().decoder_params() as f64 * 4.0 / 1e6;
    println!("Paper-scale wire sizes: classifier ψ = {psi:.2} MB, decoder θ = {theta:.2} MB");
    println!(
        "Per-round downloads, m = 50: FedAvg {:.0} MB, FedGuard {:.0} MB ({:+.0}%)\n",
        50.0 * psi,
        50.0 * (psi + theta),
        (theta / psi) * 100.0
    );

    // Part 2 — sweep the synthesis budget under a same-value attack.
    println!("Budget sweep (Smoke preset, 40% same-value attackers):");
    println!(
        "{:26} | {:>9} | {:>17} | {:>12}",
        "budget", "final", "malicious dropped", "secs/round"
    );
    println!("{}", "-".repeat(74));
    for budget in [
        SynthesisBudget::Total(10),
        SynthesisBudget::Total(40),
        SynthesisBudget::Total(160),
        SynthesisBudget::PerDecoder(8),
    ] {
        let mut cfg = ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedGuard,
            AttackScenario::SameValue { fraction: 0.4, value: 1.0 },
            13,
        );
        cfg.budget = budget;
        let result = run_experiment(&cfg);
        println!(
            "{:26} | {:>8.1}% | {:>16.0}% | {:>11.2}s",
            format!("{budget:?}"),
            result.final_accuracy() * 100.0,
            result.detection().malicious_exclusion_rate * 100.0,
            result.mean_round_secs(),
        );
    }
    println!("\nLarger budgets buy a lower-variance audit at linear server cost;");
    println!("PerDecoder budgets maximize diversity (every decoder contributes equally).");
}
