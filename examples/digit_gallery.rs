//! Visualize the synthetic-digit substitute and the CVAE's class-conditional
//! generations: prints ASCII previews and writes PGM tiles under `results/`.
//!
//! ```text
//! cargo run --release -p fedguard --example digit_gallery
//! ```

use fedguard::data::image_io::{ascii_art, tile_images, write_pgm};
use fedguard::data::synth::{generate_dataset, render_digit, SIDE};
use fedguard::nn::models::{Cvae, CvaeSpec};
use fedguard::nn::Adam;
use fedguard::tensor::rng::SeededRng;
use fedguard::tensor::Tensor;
use std::path::Path;

fn main() {
    let out = Path::new("results");
    std::fs::create_dir_all(out).ok();

    // 1) The raw synthetic digits (MNIST substitute).
    println!("Synthetic digits 0-9 (one sample each):\n");
    let mut real_rows: Vec<Vec<f32>> = Vec::new();
    for class in 0..10 {
        let mut rng = SeededRng::new(1000 + class as u64);
        real_rows.push(render_digit(class, &mut rng));
    }
    for class in [3usize, 7] {
        println!("class {class}:");
        println!("{}", ascii_art(&real_rows[class], SIDE));
    }
    let refs: Vec<&[f32]> = real_rows.iter().map(|r| r.as_slice()).collect();
    let (tile, w, h) = tile_images(&refs, SIDE, SIDE, 5);
    write_pgm(&out.join("digits_real.pgm"), &tile, w, h).unwrap();
    println!("wrote results/digits_real.pgm ({w}x{h})");

    // 2) CVAE generations after client-style training.
    println!("\nTraining a CVAE (hidden 100, latent 8) on 1200 digits...");
    let data = generate_dataset(120, 7);
    let spec = CvaeSpec::reduced(100, 8);
    let mut rng = SeededRng::new(9);
    let mut cvae = Cvae::new(&spec, &mut rng);
    let mut adam = Adam::new(2e-3);
    for _ in 0..100 {
        for (x, y) in data.batches(64) {
            cvae.train_batch(&x, &y, &mut adam, &mut rng);
        }
    }

    let z = Tensor::randn(&[10, 8], &mut rng);
    let labels: Vec<usize> = (0..10).collect();
    let generated = cvae.decoder_mut().generate(&z, &labels);
    let gen_rows: Vec<&[f32]> = (0..10).map(|r| generated.row(r)).collect();
    for class in [3usize, 7] {
        println!("generated class {class}:");
        println!("{}", ascii_art(gen_rows[class], SIDE));
    }
    let (tile, w, h) = tile_images(&gen_rows, SIDE, SIDE, 5);
    write_pgm(&out.join("digits_generated.pgm"), &tile, w, h).unwrap();
    println!("wrote results/digits_generated.pgm ({w}x{h})");
    println!("\nThese generations are the validation data FedGuard's server audits with.");
}
