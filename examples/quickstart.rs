//! Quickstart: defend a federation against a poisoning attack with FedGuard.
//!
//! Runs two small federations under a 50% sign-flipping attack — one
//! aggregating with plain FedAvg, one with FedGuard — and prints the
//! round-by-round global accuracy of both.
//!
//! ```text
//! cargo run --release -p fedguard --example quickstart
//! ```

use fedguard::experiment::{
    run_experiment, AttackScenario, ExperimentConfig, Preset, StrategyKind,
};

fn main() {
    let attack = AttackScenario::SignFlip { fraction: 0.5 };
    println!("Scenario: 50% of clients flip the sign of every weight they submit.\n");

    let fedavg_cfg = ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, attack, 7);
    let fedguard_cfg = ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedGuard, attack, 7);

    println!("Running FedAvg (no defense)...");
    let fedavg = run_experiment(&fedavg_cfg);
    println!("Running FedGuard (selective parameter aggregation)...\n");
    let fedguard = run_experiment(&fedguard_cfg);

    println!("round | FedAvg accuracy | FedGuard accuracy | FedGuard excluded");
    println!("------+-----------------+-------------------+------------------");
    for (a, g) in fedavg.history.iter().zip(&fedguard.history) {
        println!(
            "{:5} | {:14.1}% | {:16.1}% | {} of {} malicious",
            a.round,
            a.accuracy * 100.0,
            g.accuracy * 100.0,
            g.malicious_excluded(),
            g.malicious_sampled.len(),
        );
    }

    println!(
        "\nFinal: FedAvg {:.1}% vs FedGuard {:.1}%",
        fedavg.final_accuracy() * 100.0,
        fedguard.final_accuracy() * 100.0
    );
    let det = fedguard.detection();
    println!(
        "FedGuard excluded {:.0}% of malicious and {:.0}% of benign submissions.",
        det.malicious_exclusion_rate * 100.0,
        det.benign_exclusion_rate * 100.0
    );
}
