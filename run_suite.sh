#!/bin/bash
# Lint gate + regeneration of every table/figure of the paper at the fast
# preset. Telemetry trails land under results/telemetry/ (one JSONL per run).
# Each stage prints a "[suite] stage <name>: <N>s" wall-clock line so
# runtime regressions are visible across the (now ten) stages.
set -x
cd /root/repo

STAGE_T0=$(date +%s)
stage_done() {
    local now
    now=$(date +%s)
    echo "[suite] stage $1: $((now - STAGE_T0))s"
    STAGE_T0=$now
}

# Lint stage: formatting and clippy (workspace-wide, all targets — the
# codec module and bench bins included) must be clean before results count.
cargo fmt --check || exit 1
cargo clippy --workspace --all-targets -- -D warnings || exit 1
stage_done lint

# Chaos stage: deterministic fault-replay + sanitizer property suites. Seeds
# are fixed inside the tests, so failures here are reproducible verbatim.
cargo test --release -q -p fedguard --test chaos --test props || exit 1
stage_done chaos

# Schedule-invariance stage: same federation at 1 vs 4 threads must be
# bit-identical (the rayon shim's determinism contract).
cargo test --release -q -p fedguard --test schedule_invariance || exit 1
stage_done schedule_invariance

B=target/release

# Bench stage: matmul/Krum micro-bench at 1 vs N threads. Records the
# measured parallel speedup (and the host's core count — timesharing a
# single core cannot speed up) for later PRs to regress against.
cargo build --release -p fg-bench --bin bench_parallel || exit 1
$B/bench_parallel > results/bench_parallel.json 2> results/bench_parallel.log || exit 1
stage_done bench_parallel

# GEMM stage: blocked, panel-packed kernel vs the old naive one over the
# MNIST-CNN / server-scoring shapes, 1 vs N threads, with a bitwise
# cross-check between schedules. The 512³ row carries the ≥1.5×
# single-thread acceptance gate. bench_gemm writes per-shape progress to
# stderr, so the .log actually has content now.
cargo build --release -p fg-bench --bin bench_gemm || exit 1
$B/bench_gemm > results/bench_gemm.json 2> results/bench_gemm.log || exit 1
test -s results/bench_gemm.log || exit 1
stage_done gemm

# Scoring stage: the batched audit scorer. Property suite + warm-path
# allocation gate first, then bench_scoring times batched vs sequential
# audit of m parameter sets (1 vs N threads) and hard-asserts all four
# runs produce one bit-identical score vector. physical_cores is recorded
# so multicore hosts can gate on the batched-vs-sequential ratio.
cargo test --release -q -p fg-nn --test batched_props --test alloc_free || exit 1
cargo build --release -p fg-bench --bin bench_scoring || exit 1
$B/bench_scoring > results/bench_scoring.json 2> results/bench_scoring.log || exit 1
test -s results/bench_scoring.log || exit 1
grep -q '"physical_cores"' results/bench_scoring.json || exit 1
grep -q '"bitwise_identical": true' results/bench_scoring.json || exit 1
stage_done scoring

# Aggregation stage: the O(d) streaming path vs the O(m·d) batch oracle.
# The streaming-equivalence suite pins every streamable aggregator to its
# batch oracle bit-for-bit; bench_aggregation then replays the m=64 ×
# d=262144 round both ways and hard-asserts (a) bitwise digests across
# thread counts and arrival orders, (b) a ≥4× peak-residency reduction,
# and (c) zero workspace-pool misses on the warm streaming pass.
cargo test --release -q -p fg-agg --test streaming_equivalence || exit 1
cargo build --release -p fg-bench --bin bench_aggregation || exit 1
$B/bench_aggregation > results/bench_aggregation.json 2> results/bench_aggregation.log || exit 1
test -s results/bench_aggregation.log || exit 1
grep -q '"physical_cores"' results/bench_aggregation.json || exit 1
grep -q '"bitwise_identical": false' results/bench_aggregation.json && exit 1
grep -q '"bitwise_identical": true' results/bench_aggregation.json || exit 1
grep -q '"warm_workspace_allocs": 0' results/bench_aggregation.json || exit 1
stage_done aggregation

# Compression stage: the wire codecs (bf16 / int8 / top-k) on the m=8
# Table-II-CNN cohort (d ≈ 1.66M). bench_compression hard-asserts the
# wire-byte reduction bars (int8 ≥3.5×, bf16 ≥1.9×, top-k(10%) ≥8×), the
# mode-invariant logical comm ledger vs the fg-obs byte counters, frame
# round-trips, and a bit-identical dequantized fold across arrival orders,
# thread counts and the batch oracle. Emits the outcome/objective/metrics
# result.json schema from ROADMAP item 4.
cargo build --release -p fg-bench --bin bench_compression || exit 1
$B/bench_compression > results/bench_compression.json 2> results/bench_compression.log || exit 1
test -s results/bench_compression.log || exit 1
grep -q '"outcome": "success"' results/bench_compression.json || exit 1
grep -q '"fold_bitwise_identical": false' results/bench_compression.json && exit 1
grep -q '"fold_bitwise_identical": true' results/bench_compression.json || exit 1
grep -q '"wire_matches_comm": true' results/bench_compression.json || exit 1
stage_done compression

# Trace stage: (a) span totals must agree with StageTimings on a traced
# 2-round FedGuard run, and stolen-job spans must nest under their logical
# parents; (b) disabled tracing must stay within the overhead budget;
# (c) trace_demo leaves a loadable Chrome-trace profile under results/trace/
# and self-validates it (all seven round stages present, no ring overflow).
cargo test --release -q -p fedguard --test trace || exit 1
cargo test --release -q -p fg-tensor --test trace_overhead || exit 1
cargo build --release -p fg-bench --bin trace_demo || exit 1
mkdir -p results/trace
FG_TRACE=1 $B/trace_demo --threads 4 --rounds 2 --seed 42 \
    > results/trace/trace_demo.out 2> results/trace/trace_demo.log || exit 1
test -s results/trace/fedguard_2round.json || exit 1
grep -q 'round.local_training' results/trace/fedguard_2round_collapsed.txt || exit 1
stage_done trace

# Net stage: the networked deployment mode. fed_server + N fed_client as
# separate processes over loopback TCP, running a seeded 2-round FedGuard
# cell; --check-oracle replays the identical config in-process and the
# server exits non-zero unless the two deployments are bit-identical and
# the wire's model-parameter bytes match the comm.rs accounting exactly.
# The compressed variant reruns the cell under the int8 codec: same
# bit-identity bar (the oracle routes payloads through the same frames),
# plus the server's wire-payload-undercuts-ledger assertion.
cargo test --release -q -p fedguard --test net_equivalence || exit 1
cargo build --release -p fg-bench --bin fed_server --bin fed_client || exit 1
NET_PORT=7963
$B/fed_server --bind 127.0.0.1:$NET_PORT --preset smoke --strategy fedguard \
    --attack sign-flipping --seed 42 --rounds 2 --check-oracle \
    --out results/bench_net.json 2> results/bench_net.log &
NET_SERVER=$!
sleep 1
for i in $(seq 0 9); do
    $B/fed_client --connect 127.0.0.1:$NET_PORT --id $i 2>> results/bench_net.log &
done
wait $NET_SERVER || exit 1
wait
grep -q '"equivalent": true' results/bench_net.json || exit 1
grep -q '"wire_matches_comm": true' results/bench_net.json || exit 1
NET_PORT=7964
$B/fed_server --bind 127.0.0.1:$NET_PORT --preset smoke --strategy fedguard \
    --attack sign-flipping --seed 42 --rounds 2 --check-oracle --compress int8 \
    --out results/bench_net_int8.json 2> results/bench_net_int8.log &
NET_SERVER=$!
sleep 1
for i in $(seq 0 9); do
    $B/fed_client --connect 127.0.0.1:$NET_PORT --id $i 2>> results/bench_net_int8.log &
done
wait $NET_SERVER || exit 1
wait
grep -q '"equivalent": true' results/bench_net_int8.json || exit 1
grep -q '"wire_matches_comm": true' results/bench_net_int8.json || exit 1
grep -q '"wire_payload_smaller_than_logical": true' results/bench_net_int8.json || exit 1
stage_done net

# Ops stage: the operational plane (DESIGN.md §15). A loopback served run
# with the admin socket and telemetry/forensics trails on; curl-style
# scrapes of /metrics and /healthz *mid-run*, the server's own post-run
# scrape-vs-snapshot byte-identity hard-assert, a non-empty forensics
# JSONL, and fg_report joining the two trails into the ROADMAP item-4
# outcome/objective/metrics report.
cargo test --release -q -p fedguard --test forensics_determinism || exit 1
cargo test --release -q -p fg-fl --test ops_plane --test ops_overhead || exit 1
cargo build --release -p fg-bench --bin fg_report || exit 1
NET_PORT=7965
ADMIN_PORT=7966
rm -rf results/telemetry_ops
$B/fed_server --bind 127.0.0.1:$NET_PORT --admin 127.0.0.1:$ADMIN_PORT \
    --preset smoke --strategy fedguard --attack sign-flipping --seed 42 \
    --rounds 3 --telemetry results/telemetry_ops \
    --out results/bench_ops.json 2> results/bench_ops.log &
NET_SERVER=$!
sleep 1
for i in $(seq 0 9); do
    $B/fed_client --connect 127.0.0.1:$NET_PORT --id $i 2>> results/bench_ops.log &
done
# Mid-run scrapes ride the round-boundary polls; retry until a boundary
# after round 0 answers (fl_rounds only registers once a round has
# completed, which is what makes the saved scrape genuinely mid-run).
MIDRUN_OK=0
for _ in $(seq 1 240); do
    if curl -sf --max-time 3 http://127.0.0.1:$ADMIN_PORT/metrics > results/ops_scrape_midrun.txt \
        && grep -q 'fl_rounds' results/ops_scrape_midrun.txt \
        && curl -sf --max-time 3 http://127.0.0.1:$ADMIN_PORT/healthz > results/ops_healthz_midrun.json; then
        MIDRUN_OK=1
        break
    fi
    sleep 0.5
done
test "$MIDRUN_OK" = 1 || exit 1
wait $NET_SERVER || exit 1
wait
grep -q '# TYPE' results/ops_scrape_midrun.txt || exit 1
grep -q 'fl_rounds' results/ops_scrape_midrun.txt || exit 1
grep -q '"status":"ok"' results/ops_healthz_midrun.json || exit 1
# The server hard-asserted scrape-vs-registry-snapshot byte identity
# before exiting 0; make the verdict visible in the report too.
grep -q '"scrape_consistent": true' results/bench_ops.json || exit 1
test -s results/telemetry_ops/fedguard-sign-flipping-s42.forensics.jsonl || exit 1
$B/fg_report --telemetry results/telemetry_ops/fedguard-sign-flipping-s42.jsonl \
    --out results/ops_report.json 2> results/ops_report.log || exit 1
grep -q '"outcome": "success"' results/ops_report.json || exit 1
stage_done ops

$B/fig4 --preset fast --seed 42 > results/fig4.csv 2> results/fig4.log
$B/table4 --preset fast --seed 42 > results/table4.md 2> results/table4.log
$B/fig5 --preset fast --seed 42 > results/fig5.csv 2> results/fig5.log
$B/table5 --preset fast --seed 42 --rounds 6 > results/table5.md 2> results/table5.log
$B/ablation_budget --preset fast --seed 42 > results/ablation_budget.md 2> results/ablation_budget.log
$B/ablation_inner --preset fast --seed 42 > results/ablation_inner.md 2> results/ablation_inner.log
$B/ablation_heterogeneity --preset fast --seed 42 > results/ablation_heterogeneity.md 2> results/ablation_heterogeneity.log
$B/ablation_faults --preset fast --seed 42 > results/ablation_faults.md 2> results/ablation_faults.log
stage_done figures
echo ALL_RESULTS_DONE
