//! Offline shim for `criterion`: the API shape the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`),
//! backed by a simple best-of-N wall-clock timer printed to stdout.
//!
//! No statistics, plots, or baselines — just enough to keep `cargo bench`
//! compiling and producing comparable per-iteration timings offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&id.to_string(), 10, &mut f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.0);
        let mut best: Option<f64> = None;
        for _ in 0..self.sample_size {
            let mut b = Bencher { best: None };
            f(&mut b, input);
            if let Some(t) = b.best {
                best = Some(best.map_or(t, |prev: f64| prev.min(t)));
            }
        }
        report(&label, best);
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut best: Option<f64> = None;
    for _ in 0..samples {
        let mut b = Bencher { best: None };
        f(&mut b);
        if let Some(t) = b.best {
            best = Some(best.map_or(t, |prev: f64| prev.min(t)));
        }
    }
    report(label, best);
}

fn report(label: &str, best: Option<f64>) {
    match best {
        Some(secs) => println!("bench {label:<48} {:>12.3} us/iter", secs * 1e6),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// Passed to the closure under test; `iter` times the routine.
pub struct Bencher {
    best: Option<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then time a single call (workspace routines are
        // milliseconds-scale, so per-call resolution is adequate).
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed().as_secs_f64();
        self.best = Some(self.best.map_or(elapsed, |prev| prev.min(elapsed)));
    }
}

/// Parameterized benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim/demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).product::<usize>())
        });
        g.finish();
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn harness_runs() {
        demo_group();
    }
}
