//! Offline shim for `rand_distr` 0.4: `StandardNormal`, `Normal`, `Uniform`,
//! and `Dirichlet` over the local `rand` shim.
//!
//! Normal variates use the Box–Muller transform (stateless, so `sample` can
//! take `&self`); Dirichlet sampling draws Gamma(α, 1) variates with
//! Marsaglia–Tsang squeeze plus the standard α < 1 boost, then normalizes.

use rand::RngCore;

/// Subset of `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Clone, Copy, Debug)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

#[inline]
fn unit_open_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box–Muller and Gamma sampling.
    (((rng.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn standard_normal_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open_f64(rng);
    let u2 = unit_open_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The standard normal distribution N(0, 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        standard_normal_f64(rng) as f32
    }
}

impl Distribution<f64> for StandardNormal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal_f64(rng)
    }
}

/// The normal distribution N(mean, std²).
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f32,
    std_dev: f32,
}

impl Normal {
    pub fn new(mean: f32, std_dev: f32) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal: standard deviation must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f32> for Normal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        self.mean + self.std_dev * standard_normal_f64(rng) as f32
    }
}

/// The continuous uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    low: f32,
    high: f32,
}

impl Uniform {
    pub fn new(low: f32, high: f32) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high }
    }
}

impl Distribution<f32> for Uniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        self.low
            + (self.high - self.low) * ((rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32))
    }
}

/// Gamma(shape, 1) via Marsaglia–Tsang; for shape < 1 the α+1 boost is used.
fn sample_gamma<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        let boost = unit_open_f64(rng).powf(1.0 / shape);
        return sample_gamma(shape + 1.0, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal_f64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = unit_open_f64(rng);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// The symmetric Dirichlet distribution Dir(α, ..., α) over the simplex.
#[derive(Clone, Debug)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    pub fn new(alpha: &[f32]) -> Result<Self, Error> {
        if alpha.len() < 2 || alpha.iter().any(|&a| a <= 0.0 || !a.is_finite()) {
            return Err(Error("Dirichlet: need >= 2 strictly positive finite concentrations"));
        }
        Ok(Dirichlet { alpha: alpha.iter().map(|&a| a as f64).collect() })
    }

    pub fn new_with_size(alpha: f32, size: usize) -> Result<Self, Error> {
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(Error("Dirichlet: concentration must be strictly positive and finite"));
        }
        if size < 2 {
            return Err(Error("Dirichlet: need at least 2 categories"));
        }
        Ok(Dirichlet { alpha: vec![alpha as f64; size] })
    }
}

impl Distribution<Vec<f32>> for Dirichlet {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f32> {
        let gammas: Vec<f64> = self.alpha.iter().map(|&a| sample_gamma(a, rng)).collect();
        let total: f64 = gammas.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Degenerate draw (all gammas underflowed): fall back to uniform.
            return vec![1.0 / self.alpha.len() as f32; self.alpha.len()];
        }
        gammas.iter().map(|&g| (g / total) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new(-0.5, 0.25);
        for _ in 0..1000 {
            let x: f32 = d.sample(&mut rng);
            assert!((-0.5..0.25).contains(&x));
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for &alpha in &[0.3f32, 1.0, 10.0] {
            let d = Dirichlet::new_with_size(alpha, 7).unwrap();
            let w = d.sample(&mut rng);
            assert_eq!(w.len(), 7);
            assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let s: f32 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "sum {s}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Dirichlet::new_with_size(0.0, 5).is_err());
        assert!(Dirichlet::new_with_size(1.0, 1).is_err());
    }
}
