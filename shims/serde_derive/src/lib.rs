//! Offline shim for `serde_derive`: dependency-free `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` targeting the value-tree model of the local
//! `serde` shim.
//!
//! The derive walks the raw token stream directly (no `syn`/`quote`, which
//! are unavailable offline). It supports what this workspace declares:
//! non-generic structs (named, newtype, tuple, unit) and non-generic enums
//! with unit, tuple, and struct variants, rendered in upstream serde's
//! default externally-tagged representation. Of the field attributes,
//! `#[serde(default)]` is interpreted (a missing key deserializes to
//! `Default::default()`, upstream's behavior — the forward-compat knob the
//! telemetry schema relies on) and `#[serde(rename = "key")]` maps a field
//! to a different wire key both ways (the schema-compat knob `CommStats`
//! relies on); other `#[serde(...)]` forms are ignored. Generics are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier, whether `#[serde(default)]` was set,
/// and the `#[serde(rename = "...")]` wire key if one was given.
struct Field {
    name: String,
    default: bool,
    rename: Option<String>,
}

impl Field {
    /// The key this field travels under in the serialized object.
    fn wire_name(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_serialize(name, fields),
        Item::Enum { name, variants } => enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_deserialize(name, fields),
        Item::Enum { name, variants } => enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive shim: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Header: outer attributes and visibility, then `struct`/`enum` + name.
    let is_enum = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracketed group that follows.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            other => panic!("serde_derive shim: unexpected token in item header: {other:?}"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    if is_enum {
        let body = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde_derive shim: expected enum body, found {other:?}"),
        };
        Item::Enum { name, variants: parse_variants(body.stream()) }
    } else {
        let fields = match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive shim: expected struct body, found {other:?}"),
        };
        Item::Struct { name, fields }
    }
}

/// Interpret a `[serde(...)]` attribute's token stream: returns the
/// `default` flag and the `rename = "..."` value, if present. Any other
/// attribute (or unrecognized serde arguments) yields `(false, None)`.
fn parse_serde_attr(stream: TokenStream) -> (bool, Option<String>) {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return (false, None),
    }
    let args = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return (false, None),
    };
    let mut default = false;
    let mut rename = None;
    let mut args = args.into_iter().peekable();
    while let Some(tok) = args.next() {
        match tok {
            TokenTree::Ident(id) if id.to_string() == "default" => default = true,
            TokenTree::Ident(id) if id.to_string() == "rename" => {
                match (args.next(), args.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        let key = raw.trim_matches('"');
                        assert!(
                            raw.starts_with('"') && raw.ends_with('"') && !key.is_empty(),
                            "serde_derive shim: rename expects a non-empty string literal, \
                             found {raw}"
                        );
                        rename = Some(key.to_string());
                    }
                    other => {
                        panic!("serde_derive shim: malformed serde rename attribute: {other:?}")
                    }
                }
            }
            _ => {}
        }
    }
    (default, rename)
}

/// Parse `name: Type, ...` lists, returning field names and their
/// `#[serde(default)]` flags. Commas inside generic arguments are skipped by
/// tracking `<`/`>` depth (delimiter groups are atomic token trees, so only
/// angle brackets need counting).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    'fields: loop {
        // Leading attributes (doc comments included) and visibility.
        let mut default = false;
        let mut rename = None;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        let (d, r) = parse_serde_attr(g.stream());
                        default |= d;
                        if r.is_some() {
                            rename = r;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        names.push(Field { name, default, rename });
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    names
}

/// Count the fields of a tuple struct/variant: top-level commas + 1, minus a
/// trailing comma; an empty stream is zero fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut last_was_comma = false;
    let mut any = false;
    for tok in stream {
        any = true;
        last_was_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if last_was_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    'variants: loop {
        // Leading attributes.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(_) => break,
                None => break 'variants,
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => break 'variants,
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string templates parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn named_to_value_entries(names: &[Field], prefix: &str) -> String {
    names
        .iter()
        .map(|field| {
            let f = &field.name;
            let key = field.wire_name();
            format!("(\"{key}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f})),")
        })
        .collect()
}

fn named_from_value_fields(names: &[Field]) -> String {
    // A missing key falls back to `Default::default()` for `#[serde(default)]`
    // fields; otherwise it deserializes from Null, which succeeds only for
    // Option fields. The map_err keeps the (wire) field name in the error.
    names
        .iter()
        .map(|field| {
            let f = &field.name;
            let key = field.wire_name();
            let missing = if field.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "::serde::Deserialize::from_value(&::serde::Value::Null) \
                       .map_err(|_| ::serde::Error::msg(\"missing field `{key}`\"))?"
                )
            };
            format!(
                "{f}: match ::serde::obj_get(obj, \"{key}\") {{ \
                   Some(v) => ::serde::Deserialize::from_value(v) \
                     .map_err(|e| ::serde::Error::msg(format!(\"field `{key}`: {{e}}\")))?, \
                   None => {missing}, \
                 }},"
            )
        })
        .collect()
}

fn struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: String =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i}),")).collect();
            format!("::serde::Value::Arr(vec![{items}])")
        }
        Fields::Named(names) => {
            let entries = named_to_value_entries(names, "self.");
            format!("::serde::Value::Obj(vec![{entries}])")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Fields::Tuple(n) => {
            let items: String =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,")).collect();
            format!(
                "let arr = value.as_arr() \
                   .ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?; \
                 if arr.len() != {n} {{ \
                   return Err(::serde::Error::msg(\"wrong tuple length for {name}\")); \
                 }} \
                 Ok({name}({items}))"
            )
        }
        Fields::Named(names) => {
            let fields = named_from_value_fields(names);
            format!(
                "let obj = value.as_obj() \
                   .ok_or_else(|| ::serde::Error::msg(\"expected object for {name}\"))?; \
                 Ok({name} {{ {fields} }})"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => {
                format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let pat = binders.join(", ");
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let items: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!("::serde::Value::Arr(vec![{items}])")
                };
                format!(
                    "{name}::{v}({pat}) => ::serde::Value::Obj(vec![\
                       (\"{v}\".to_string(), {inner})]),"
                )
            }
            Fields::Named(fs) => {
                let pat = fs.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                let entries = named_to_value_entries(fs, "");
                format!(
                    "{name}::{v} {{ {pat} }} => ::serde::Value::Obj(vec![\
                       (\"{v}\".to_string(), ::serde::Value::Obj(vec![{entries}]))]),"
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|(v, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: String = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,"))
                    .collect();
                Some(format!(
                    "\"{v}\" => {{ \
                       let arr = inner.as_arr() \
                         .ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{v}\"))?; \
                       if arr.len() != {n} {{ \
                         return Err(::serde::Error::msg(\"wrong tuple length for {name}::{v}\")); \
                       }} \
                       return Ok({name}::{v}({items})); \
                     }}"
                ))
            }
            Fields::Named(fs) => {
                let fields = named_from_value_fields(fs);
                Some(format!(
                    "\"{v}\" => {{ \
                       let obj = inner.as_obj() \
                         .ok_or_else(|| ::serde::Error::msg(\"expected object for {name}::{v}\"))?; \
                       return Ok({name}::{v} {{ {fields} }}); \
                     }}"
                ))
            }
        })
        .collect();
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ \
             if let Some(tag) = value.as_str() {{ \
               match tag {{ {unit_arms} _ => {{}} }} \
             }} \
             if let Some(obj) = value.as_obj() {{ \
               if obj.len() == 1 {{ \
                 let (tag, inner) = &obj[0]; \
                 let _ = inner; \
                 match tag.as_str() {{ {tagged_arms} _ => {{}} }} \
               }} \
             }} \
             Err(::serde::Error::msg(\"unknown variant for {name}\")) \
           }} \
         }}"
    )
}
