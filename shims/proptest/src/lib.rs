//! Offline shim for `proptest`: the subset of the API used by this
//! workspace's property tests, with deterministic case generation.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), range strategies over the primitive
//! numeric types, `proptest::collection::vec` (fixed or ranged size),
//! `Strategy::prop_map`, and `prop_assert!`/`prop_assert_eq!`. Cases are
//! generated from a fixed seed mixed with the case index, so failures
//! reproduce exactly; shrinking is not implemented (the failing inputs are
//! reported as generated).

use std::ops::Range;

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub type TestCaseError = String;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test-case values (subset of upstream `Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<B, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
    type Value = B;

    fn generate(&self, rng: &mut TestRng) -> B {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// `Just`-style constant strategy, occasionally handy in helper functions.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Length specification for [`collection::vec`]: a fixed size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body ($config) $($rest)* }
    };
    (@body ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                // Fixed seed mixed with the case index: deterministic and
                // reproducible, distinct streams per case.
                let mut rng = $crate::TestRng::new(
                    0xFED6_0A2D_0000_0000u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9),
                );
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} of {}: {message}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @body ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, f32)> {
        (1usize..5).prop_map(|n| (n, n as f32 * 0.5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in -4.0f32..4.0, n in 1usize..9, s in 0u64..1000) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n), "n out of range: {n}");
            prop_assert!(s < 1000);
        }

        #[test]
        fn vec_sizes_and_mapping(v in collection::vec(0usize..3, 2..6), p in pair_strategy()) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&x| x < 3));
            prop_assert_eq!(p.1, p.0 as f32 * 0.5);
        }
    }
}
