//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds in a hermetic environment with no crates.io access,
//! so the handful of external crates it uses are provided as minimal local
//! shims exposing exactly the API surface the workspace consumes. This one
//! wraps `std::sync::Mutex`/`RwLock` behind `parking_lot`'s panic-free
//! `lock()` signature (poisoned locks are recovered, matching parking_lot's
//! lack of poisoning).

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3usize);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
