//! Offline shim for `serde_json`: maps the `serde` shim's [`Value`] tree to
//! and from JSON text.
//!
//! Provides the entry points this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`from_str`], and [`from_value`].
//! Numbers follow upstream conventions: integers print bare, floats print
//! via Rust's shortest round-trip `Display`, and non-finite floats serialize
//! as `null`.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
            write_value(o, it, indent, d)
        }),
        Value::Obj(entries) => {
            write_seq(out, entries.iter(), indent, depth, ('{', '}'), |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::msg("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::msg("unknown escape sequence")),
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("fed\"guard\n".into())),
            ("seed".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
            ("acc".into(), Value::F64(0.8125)),
            ("tags".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let compact = to_string(&TestWrap(v.clone())).unwrap();
        let back: TestWrap = from_str(&compact).unwrap();
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&TestWrap(v.clone())).unwrap();
        let back: TestWrap = from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn f32_payload_round_trips_exactly() {
        let xs = vec![0.1f32, -3.25, 1.0e-7, f32::MAX, 123456.78];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<f32>>("[1.0,]").is_err());
        assert!(from_str::<Vec<f32>>("[1.0] tail").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    struct TestWrap(Value);

    impl serde::Serialize for TestWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl serde::Deserialize for TestWrap {
        fn from_value(value: &Value) -> Result<Self, Error> {
            Ok(TestWrap(value.clone()))
        }
    }
}
