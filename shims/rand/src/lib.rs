//! Offline shim for `rand` 0.8: the subset of the API this workspace uses,
//! with a deterministic xoshiro256++ generator behind `StdRng`.
//!
//! The hermetic build environment has no crates.io access, so `rand` is
//! replaced by this crate. The workspace only ever seeds through
//! `SeedableRng::seed_from_u64`, so determinism across runs is preserved;
//! the exact stream differs from upstream `StdRng` (ChaCha12), which is fine
//! because no golden values depend on upstream streams.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of upstream `rand`, folded into a helper trait).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range` (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply rejection-free mapping (Lemire); the tiny
                // modulo bias is irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, per the xoshiro authors'
            // recommendation, so similar seeds give unrelated states.
            let mut x = seed;
            let s =
                [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
            let j = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&j));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..5 should be hit");
    }
}
