//! Offline shim for `serde`: a value-tree serialization core.
//!
//! The hermetic build environment has no crates.io access, so `serde` is
//! replaced by this crate. Instead of upstream's visitor architecture, types
//! convert to and from a self-describing [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] reconstructs a type from a [`Value`].
//!
//! The companion `serde_json` shim maps `Value` to and from JSON text, and
//! the `serde_derive` shim generates both impls for plain structs and enums
//! (externally tagged, matching upstream's default representation). The
//! `#[derive(Serialize, Deserialize)]` call sites and the `serde_json`
//! entry points used by this workspace are source-compatible.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers (kept exact beyond 2^53, e.g. u64 RNG seeds).
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is preserved so output is deterministic.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Linear key lookup; objects in this workspace have a handful of fields.
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the shim data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the shim data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, mirroring serde_json::Value — lets
// callers parse arbitrary JSON without a schema (trace validation, the
// forward-compat telemetry tests).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // f32 -> f64 widening is exact, so narrowing back round-trips exactly.
        value.as_f64().map(|f| f as f32).ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident : $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_arr().ok_or_else(|| Error::msg("expected tuple array"))?;
                if arr.len() != $n {
                    return Err(Error::msg(concat!("expected array of length ", $n)));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A: 0);
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&(u64::MAX.to_value())).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&((-5i64).to_value())).unwrap(), -5);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn composite_round_trips() {
        let v: Vec<(usize, f32)> = vec![(1, 0.5), (7, -2.25)];
        let back = Vec::<(usize, f32)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
    }
}
