//! Spans opened inside pool jobs must nest under their *logical* parent —
//! the span that was open on the thread that minted the job — no matter
//! which worker (or helping waiter) ends up executing the job.
//!
//! This lives in its own integration-test binary because it flips the
//! process-global tracing switch and drains the global span buffers; sharing
//! a process with other trace-sensitive tests would race.

use rayon::prelude::*;
use rayon::with_threads;

/// One traced fan-out. Returns `(parent_tid, children)` for the attempt's
/// span stream; panics if any child fails to chain to the minting parent
/// (that invariant is schedule-independent and must hold on every attempt).
fn traced_attempt() -> (u32, Vec<fg_obs::span::SpanRecord>) {
    let _ = fg_obs::span::take_spans();
    let parent_id;
    {
        let _parent = fg_obs::span::span("test.parent");
        parent_id = fg_obs::span::current_span_id();
        assert_ne!(parent_id, 0);

        // Enough splits — and enough work per element that the minting
        // thread can't steal everything back before a worker wakes — that
        // (at 4 threads) jobs normally land on real workers, each closure
        // opening a span.
        let out: Vec<usize> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    let _s = fg_obs::span::span("test.child");
                    let mut acc = i as u64;
                    for k in 0..50_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i * 2
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    let spans = fg_obs::span::take_spans();
    let children: Vec<fg_obs::span::SpanRecord> =
        spans.iter().filter(|s| s.name == "test.child").copied().collect();
    assert_eq!(children.len(), 64, "every mapped element recorded a span");

    // Every child's ancestry must reach test.parent: either directly, or via
    // the minting context the pool installed around the job that ran it.
    let by_id: std::collections::HashMap<u64, &fg_obs::span::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    for child in &children {
        let mut cur = child.parent;
        let mut reached = false;
        while cur != 0 {
            if cur == parent_id {
                reached = true;
                break;
            }
            cur = by_id.get(&cur).map_or(0, |s| s.parent);
        }
        assert!(reached, "child span (tid {}) does not chain to the minting parent", child.tid);
    }

    let parent_tid = spans.iter().find(|s| s.id == parent_id).unwrap().tid;
    (parent_tid, children)
}

#[test]
fn stolen_job_spans_nest_under_minting_span() {
    fg_obs::set_enabled(true);

    // The nesting invariant is checked on every attempt inside
    // traced_attempt(). The *cross-thread* part is inherently
    // schedule-dependent: on a loaded machine the OS may not wake a worker
    // before the minting thread steals all 64 jobs back, so retry a few
    // times and only fail if no attempt ever crossed a thread.
    let mut crossed = false;
    for _ in 0..20 {
        let (parent_tid, children) = traced_attempt();
        if children.iter().any(|c| c.tid != parent_tid) {
            crossed = true;
            break;
        }
    }
    fg_obs::set_enabled(false);
    assert!(crossed, "no attempt ever closed a span on a worker thread");
}
