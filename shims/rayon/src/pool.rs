//! The fork-join worker pool behind the parallel iterators.
//!
//! A single process-global pool of detached `std::thread` workers pulls
//! type-erased jobs from a shared injector queue. Everything the iterator
//! layer does is built on one primitive, [`join`]: run two closures,
//! potentially in parallel, and return both results.
//!
//! ## Thread-count knob
//!
//! The pool sizes itself from the `FG_THREADS` environment variable, falling
//! back to [`std::thread::available_parallelism`]. `FG_THREADS=1` disables
//! the pool entirely: every `join` runs both closures inline on the calling
//! thread, reproducing the sequential schedule. Tests and benchmarks can
//! override the count for a scope with [`with_threads`], which wins over the
//! environment on the calling thread; each queued job carries its minting
//! thread's limit, so parallel regions nested inside a job inherit the
//! scope's override no matter which worker runs it.
//!
//! ## Scalability limits (deliberate)
//!
//! The pool uses a single injector queue behind one mutex; steal-back is an
//! O(queue) scan and waiters poll their latch on a 200µs timeout. That is
//! plenty for the handful of coarse-grained splits this workspace mints, but
//! it will contend at high thread counts over deep join trees. If pool
//! scalability ever matters, move to per-worker deques with LIFO steal-back
//! and a proper wakeup path.
//!
//! ## Why blocking on a job cannot deadlock
//!
//! `join` pushes the second closure to the queue, runs the first inline, and
//! then either *steals the second back* (if no worker claimed it yet) and
//! runs it inline, or waits for the claiming worker to finish it. A thread
//! therefore only ever blocks on a job that another thread is actively
//! executing, and the waits-on graph follows the join tree — acyclic — so at
//! least one thread is always making progress. While waiting, a thread helps
//! by draining other queued jobs instead of spinning.
//!
//! ## Panic propagation
//!
//! A worker executes every job under `catch_unwind`; the payload is stored
//! in the job and re-thrown by `resume_unwind` on the thread that called
//! `join`, so a panic inside a parallel closure surfaces in the caller
//! exactly as it would have sequentially (both halves are always resolved
//! before unwinding, keeping borrowed stack data alive until no worker can
//! touch it).
//!
//! ## Observability
//!
//! Every [`JobRef`] carries the minting thread's open `fg-obs` span id, and
//! [`run_job`] installs it around execution — so a span opened inside a
//! stolen job nests under the span that was live where the job was created,
//! not under whatever the executing worker happened to be doing. The pool
//! also maintains `pool.jobs_worker` / `pool.jobs_helped` /
//! `pool.steal_backs` counters, a `pool.workers` gauge, and (while tracing
//! is enabled) a `pool.queue_wait_ns` histogram of injector-queue latency.

use fg_obs::metrics::{Counter, Gauge, Histogram};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Backstop on pool growth; far above any sane `FG_THREADS`.
const MAX_THREADS: usize = 256;

/// Jobs executed by dedicated pool workers (vs. threads helping while they
/// wait on a latch of their own).
static JOBS_WORKER: Counter = Counter::new("pool.jobs_worker");
/// Jobs drained by a waiting thread inside [`wait_while_helping`].
static JOBS_HELPED: Counter = Counter::new("pool.jobs_helped");
/// `join` calls whose queued half was reclaimed before any worker took it.
static STEAL_BACKS: Counter = Counter::new("pool.steal_backs");
/// Dedicated worker threads spawned so far.
static WORKERS: Gauge = Gauge::new("pool.workers");
/// Nanoseconds a job sat in the injector queue before executing; recorded
/// only while tracing is enabled (mint timestamps are skipped otherwise).
static QUEUE_WAIT_NS: Histogram = Histogram::new("pool.queue_wait_ns");

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Type-erased pointer to a [`StackJob`] living on the frame of the `join`
/// call that created it.
///
/// Soundness: that `join` frame never returns (or unwinds) before the job is
/// resolved — stolen back and run inline, or awaited via its latch — so the
/// pointee strictly outlives every access through this reference.
struct JobRef {
    ptr: *const (),
    execute: unsafe fn(*const ()),
    /// Thread-count target of the thread that minted this job, captured at
    /// creation so nested parallel regions inside the job inherit the
    /// [`with_threads`] scope that spawned it rather than the executing
    /// worker's default.
    limit: usize,
    /// Trace span open on the minting thread when the job was queued; spans
    /// opened inside the job nest under it regardless of which worker (or
    /// helping waiter) executes the job. 0 = no enclosing span.
    parent_span: u64,
    /// Queue-entry timestamp for the queue-wait histogram; 0 when tracing
    /// was disabled at mint time (skips the clock read on the hot path).
    mint_ns: u64,
}

unsafe impl Send for JobRef {}

/// Execute a job with the minting thread's limit installed, so `join`/
/// `par_iter` calls inside the closure size themselves from the scope that
/// created the job (restored afterwards even if the job panics).
fn run_job(job: &JobRef) {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.with(|l| l.set(self.0));
        }
    }
    let _restore = Restore(THREAD_LIMIT.with(|l| l.replace(Some(job.limit))));
    if job.mint_ns != 0 {
        QUEUE_WAIT_NS.record(fg_obs::now_ns().saturating_sub(job.mint_ns));
    }
    let _span_ctx = fg_obs::span::enter_remote_parent(job.parent_span);
    unsafe { (job.execute)(job.ptr) };
}

/// One-shot completion flag a caller can block on.
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch { done: Mutex::new(false), cv: Condvar::new() }
    }

    /// Mark the latch set. The lock is held across `notify_all`: the instant
    /// `probe` can observe `done == true`, the owning `join` frame may return
    /// and free this latch, so notifying after unlocking would touch a
    /// potentially-freed `Condvar`.
    fn set(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }

    fn probe(&self) -> bool {
        *self.done.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until set, or until `timeout` elapses (so a helping waiter can
    /// re-check the queue for newly injected jobs).
    fn wait_timeout(&self, timeout: Duration) {
        let guard = self.done.lock().unwrap_or_else(|e| e.into_inner());
        if !*guard {
            let _ = self.cv.wait_timeout(guard, timeout).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The closure + result slot of one half of a `join`, allocated on the
/// caller's stack and handed to the pool by reference.
struct StackJob<F, R> {
    f: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob { f: Mutex::new(Some(f)), result: Mutex::new(None), latch: Latch::new() }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            ptr: self as *const Self as *const (),
            execute: Self::execute,
            limit: current_num_threads(),
            parent_span: fg_obs::span::current_span_id(),
            mint_ns: if fg_obs::enabled() { fg_obs::now_ns() } else { 0 },
        }
    }

    /// Run the closure, catching any panic into the result slot, and release
    /// the latch. Called exactly once, by whichever thread claims the job.
    unsafe fn execute(ptr: *const ()) {
        let job = &*(ptr as *const Self);
        let f = job
            .f
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("StackJob executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        *job.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
        job.latch.set();
    }

    fn take_result(&self) -> std::thread::Result<R> {
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("StackJob resolved without a result")
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    jobs_cv: Condvar,
    /// Workers spawned so far; grows on demand up to the requested count.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.jobs_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        JOBS_WORKER.incr();
        run_job(&job);
    }
}

/// Grow the pool so at least `n` workers exist (idempotent, lazy).
fn ensure_workers(n: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap_or_else(|e| e.into_inner());
    while *spawned < n.min(MAX_THREADS) {
        std::thread::Builder::new()
            .name(format!("fg-rayon-{}", *spawned))
            .spawn(worker_loop)
            .expect("failed to spawn pool worker");
        *spawned += 1;
        WORKERS.set(*spawned as i64);
    }
}

fn push_job(job: JobRef) {
    let p = pool();
    p.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
    p.jobs_cv.notify_one();
}

/// Remove `job` from the queue if no worker has claimed it yet. Identity is
/// the stack address, unique while the owning `join` frame is alive.
fn try_steal_back(job: &JobRef) -> bool {
    let p = pool();
    let mut q = p.queue.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.ptr, job.ptr)) {
        q.remove(pos);
        true
    } else {
        false
    }
}

/// Block until `latch` is set, executing other queued jobs in the meantime
/// so a waiting thread keeps contributing instead of idling.
fn wait_while_helping(latch: &Latch) {
    let p = pool();
    loop {
        if latch.probe() {
            return;
        }
        let job = p.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
        match job {
            Some(j) => {
                JOBS_HELPED.incr();
                run_job(&j);
            }
            None => latch.wait_timeout(Duration::from_micros(200)),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `FG_THREADS`, parsed once, defaulting to the machine's parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("FG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .min(MAX_THREADS)
    })
}

/// The thread count parallel regions started from this thread will target:
/// the innermost [`with_threads`] override, else `FG_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    THREAD_LIMIT.with(|l| l.get()).unwrap_or_else(env_threads)
}

/// Run `f` with parallel regions minted on this thread targeting `n`
/// threads. `n = 1` forces the fully sequential schedule; results are
/// bit-identical either way because the split tree and combine order never
/// depend on the thread count — only the schedule does.
///
/// The override follows the work: jobs queued from inside `f` carry this
/// limit with them, so nested `join`/`par_iter` calls executed on pool
/// workers target `n` as well. In particular `with_threads(1, ..)` runs the
/// whole scope sequentially on the calling thread.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_threads requires at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.with(|l| l.set(self.0));
        }
    }
    let _restore = Restore(THREAD_LIMIT.with(|l| l.replace(Some(n.min(MAX_THREADS)))));
    f()
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results. Mirrors `rayon::join`: `oper_b` is offered to the pool while the
/// calling thread runs `oper_a`; if no worker picks it up in time the caller
/// steals it back and runs it inline, so the pair never waits on an idle
/// queue. Panics from either closure propagate to the caller after both
/// halves have been resolved.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    ensure_workers(threads - 1);

    let job_b = StackJob::new(oper_b);
    let job_ref = job_b.as_job_ref();
    push_job(job_b.as_job_ref());

    // Run `a` under catch_unwind: even if it panics, `b` may be running on a
    // worker that borrows this frame, so unwinding must wait for it.
    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if try_steal_back(&job_ref) {
        STEAL_BACKS.incr();
        run_job(&job_ref);
    } else {
        wait_while_helping(&job_b.latch);
    }
    let rb = job_b.take_result();

    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}
