//! Offline shim for `rayon`: the parallel-iterator API surface used by this
//! workspace, executed sequentially.
//!
//! The hermetic build environment has no crates.io access, so `rayon` is
//! replaced by this crate. Call sites are unchanged: `par_iter`,
//! `par_chunks(_mut)`, `into_par_iter`, and the rayon-specific
//! `fold(identity, op).reduce(identity, op)` chain all compile against the
//! same signatures and produce identical results (the workspace's kernels are
//! order-insensitive or use per-item RNG streams precisely so that the
//! parallel schedule does not affect output).
//!
//! [`ParIter`] implements [`Iterator`] by delegation, so std adapters
//! (`collect`, `sum`, `max_by`, ...) keep working; the handful of adapters
//! whose rayon signature differs from std's (`map`, `zip`, `enumerate`,
//! `fold`, `reduce`, `for_each`) are provided as inherent methods, which take
//! precedence over the `Iterator` trait methods of the same name.

/// Sequential stand-in for every rayon parallel iterator type.
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    #[inline]
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    #[inline]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    #[inline]
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter(self.0.filter(p))
    }

    #[inline]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: sequentially this produces a single accumulator,
    /// exposed as a one-element parallel iterator (rayon produces one
    /// accumulator per split).
    #[inline]
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce with an identity constructor.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, mut op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        let mut acc = identity();
        for item in self.0 {
            acc = op(acc, item);
        }
        acc
    }
}

/// `into_par_iter()` for any owned collection (rayon: `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;

    #[inline]
    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter()` / `par_chunks()` on slices (rayon: `IntoParallelRefIterator`
/// + `ParallelSlice`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on slices (rayon:
/// `IntoParallelRefMutIterator` + `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..10usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_rayon_signatures() {
        let total = (1..=4usize)
            .into_par_iter()
            .map(|x| x as f32)
            .fold(|| 0.0f32, |acc, x| acc + x)
            .reduce(|| 0.0f32, |a, b| a + b);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn chunks_zip_sum() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [10.0f32, 20.0, 30.0, 40.0];
        let s: f32 = a
            .par_chunks(2)
            .zip(b.par_chunks(2))
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p * q).sum::<f32>())
            .sum();
        assert_eq!(s, 10.0 + 40.0 + 90.0 + 160.0);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut out = [0usize; 6];
        out.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i));
        assert_eq!(out, [0, 0, 1, 1, 2, 2]);
    }
}
