//! Offline shim for `rayon`: the parallel-iterator API surface used by this
//! workspace, executed on a real fork-join worker pool.
//!
//! The hermetic build environment has no crates.io access, so `rayon` is
//! replaced by this crate. Call sites are unchanged: `par_iter`,
//! `par_iter_mut`, `par_chunks(_mut)`, `into_par_iter`, and the
//! rayon-specific `fold(identity, op).reduce(identity, op)` chain all
//! compile against the same signatures — but unlike the old pass-through
//! shim they now actually run across threads (see [`mod@pool`]).
//!
//! ## Execution model
//!
//! An iterator chain is a tree of splittable [`Producer`]s (ranges, slices,
//! chunk views, and the `map`/`zip`/`enumerate`/`filter` adapters over
//! them). A consuming operation (`for_each`, `collect`, `sum`, `fold`,
//! `reduce`) recursively halves the producer into segments and executes the
//! segments via [`join`], then combines the per-segment results **in index
//! order**.
//!
//! ## Determinism contract
//!
//! The segment tree is a pure function of the input length (and
//! `with_min_len`), never of the thread count, and segment results are
//! always combined left-to-right in the fixed tree shape. The thread count
//! (`FG_THREADS`, or a scoped [`with_threads`] override) therefore changes
//! only *which thread* runs a segment, not what is computed or in what
//! order results are folded — so every consumer, including
//! order-sensitive `f32` reductions, is bit-identical at any thread count.
//! `FG_THREADS=1` runs the same tree inline on the calling thread.

mod pool;

pub use pool::{current_num_threads, join, with_threads};

/// Number of segments a parallel consumption splits its input into. A fixed
/// constant — deliberately *not* derived from the thread count, so the
/// reduction tree (and therefore every floating-point result) is identical
/// no matter how many workers execute it. 32 segments keep up to 32 threads
/// busy while costing only ~5 levels of split recursion.
const MAX_SEGMENTS: usize = 32;

/// Smallest segment the driver will produce for an input of `len` items:
/// `len / MAX_SEGMENTS`, floored by the iterator's `with_min_len`.
fn segment_floor(len: usize, min_len: usize) -> usize {
    min_len.max(len.div_ceil(MAX_SEGMENTS)).max(1)
}

// ---------------------------------------------------------------------------
// Producers: splittable sources
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized source of items — the shim's equivalent of
/// rayon's internal `Producer`. Consumers split producers at deterministic
/// indices and iterate the leaves sequentially.
#[allow(clippy::len_without_is_empty)]
pub trait Producer: Sized + Send {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;

    /// Number of items (an upper bound for `filter`, exact otherwise); used
    /// only to shape the split tree.
    fn len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Sequential iterator over a leaf segment.
    fn into_seq(self) -> Self::IntoIter;
}

/// Producer over `Range<usize>`.
pub struct RangeProducer {
    start: usize,
    end: usize,
}

impl Producer for RangeProducer {
    type Item = usize;
    type IntoIter = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start + index;
        (RangeProducer { start: self.start, end: mid }, RangeProducer { start: mid, end: self.end })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.start..self.end
    }
}

/// Producer over an owned `Vec` (splits via `split_off`, a shallow move).
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index);
        (self, VecProducer(tail))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Producer over `&[T]` (the `par_iter` source).
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceProducer(l), SliceProducer(r))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Producer over `&mut [T]` (the `par_iter_mut` source).
pub struct SliceMutProducer<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutProducer(l), SliceMutProducer(r))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Producer over `chunks(size)` of a slice; items are whole chunks, so a
/// split at chunk `i` is a split at element `i * size`.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (ChunksProducer { slice: l, size: self.size }, ChunksProducer { slice: r, size: self.size })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer over `chunks_mut(size)` of a slice.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            ChunksMutProducer { slice: l, size: self.size },
            ChunksMutProducer { slice: r, size: self.size },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// `map` adapter. The mapping closure is cloned per split — cheap, since
/// parallel closures capture by shared reference or `Copy`.
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, B> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> B + Clone + Send,
    B: Send,
{
    type Item = B;
    type IntoIter = std::iter::Map<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (MapProducer { base: l, f: self.f.clone() }, MapProducer { base: r, f: self.f })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.base.into_seq().map(self.f)
    }
}

/// `zip` adapter; both sides split at the same index.
///
/// Both producers must report **exact** lengths: segments are paired purely
/// by index, so a side whose `len()` is only an upper bound (notably
/// [`FilterProducer`]) would silently mispair or drop items. Real rayon
/// forbids this by making filtered iterators unindexed; here the contract is
/// only documented, so do not `zip` a filtered iterator.
pub struct ZipProducer<P, Q> {
    a: P,
    b: Q,
}

impl<P: Producer, Q: Producer> Producer for ZipProducer<P, Q> {
    type Item = (P::Item, Q::Item);
    type IntoIter = std::iter::Zip<P::IntoIter, Q::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Sequential tail of [`EnumerateProducer`]: `enumerate` offset by the
/// segment's position in the original input.
pub struct OffsetEnumerate<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for OffsetEnumerate<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `enumerate` adapter; indices stay global across splits.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = OffsetEnumerate<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer { base: l, offset: self.offset },
            EnumerateProducer { base: r, offset: self.offset + index },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        OffsetEnumerate { inner: self.base.into_seq(), next: self.offset }
    }
}

/// `filter` adapter. `len()` is the pre-filter upper bound, which only
/// shapes the split tree; order is preserved because segments are combined
/// in index order. Because `len()` is inexact, a filtered iterator must not
/// feed adapters that treat `Producer::len()` as exact — see the
/// [`ZipProducer`] contract.
pub struct FilterProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Clone + Send,
{
    type Item = P::Item;
    type IntoIter = std::iter::Filter<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (FilterProducer { base: l, f: self.f.clone() }, FilterProducer { base: r, f: self.f })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.base.into_seq().filter(self.f)
    }
}

// ---------------------------------------------------------------------------
// The driver: deterministic split tree, work distributed via join
// ---------------------------------------------------------------------------

/// Recursively halve `p` down to segments of at most `floor` items, run
/// `leaf` on each segment, and `combine` the results in left-to-right tree
/// order. `parallel` gates whether halves are offered to the pool; it never
/// affects the tree shape or combine order, which is the determinism
/// contract of the whole shim.
fn drive<P, T, L, C>(p: P, floor: usize, parallel: bool, leaf: &L, combine: &C) -> T
where
    P: Producer,
    T: Send,
    L: Fn(P) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let len = p.len();
    if len <= floor {
        return leaf(p);
    }
    let (l, r) = p.split_at(len / 2);
    let (tl, tr) = if parallel {
        join(
            || drive(l, floor, parallel, leaf, combine),
            || drive(r, floor, parallel, leaf, combine),
        )
    } else {
        (drive(l, floor, parallel, leaf, combine), drive(r, floor, parallel, leaf, combine))
    };
    combine(tl, tr)
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing parallel iterator
// ---------------------------------------------------------------------------

/// Stand-in for every rayon parallel-iterator type: a splittable producer
/// plus the `with_min_len` granularity floor.
pub struct ParIter<P> {
    p: P,
    min_len: usize,
}

fn par<P>(p: P) -> ParIter<P> {
    ParIter { p, min_len: 1 }
}

impl<P: Producer> ParIter<P> {
    fn floor(&self) -> usize {
        segment_floor(self.p.len(), self.min_len)
    }

    fn parallel() -> bool {
        current_num_threads() > 1
    }

    // ---- adapters --------------------------------------------------------

    pub fn map<B, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        B: Send,
        F: Fn(P::Item) -> B + Clone + Send,
    {
        ParIter { p: MapProducer { base: self.p, f }, min_len: self.min_len }
    }

    /// Pair items by index. Both sides must be exact-length iterators — see
    /// the [`ZipProducer`] contract; do not zip a `filter`ed iterator.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<ZipProducer<P, J::Producer>> {
        ParIter { p: ZipProducer { a: self.p, b: other.into_par_iter().p }, min_len: self.min_len }
    }

    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter { p: EnumerateProducer { base: self.p, offset: 0 }, min_len: self.min_len }
    }

    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Clone + Send,
    {
        ParIter { p: FilterProducer { base: self.p, f }, min_len: self.min_len }
    }

    /// Lower bound on segment size; raises the granularity floor exactly
    /// like rayon's `with_min_len`.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    // ---- consumers -------------------------------------------------------

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let floor = self.floor();
        drive(
            self.p,
            floor,
            Self::parallel(),
            &|leaf: P| {
                for item in leaf.into_seq() {
                    f(item)
                }
            },
            &|(), ()| (),
        );
    }

    fn collect_vec(self) -> Vec<P::Item> {
        let floor = self.floor();
        drive(
            self.p,
            floor,
            Self::parallel(),
            &|leaf: P| leaf.into_seq().collect::<Vec<_>>(),
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    /// Collect into a container, preserving input order.
    pub fn collect<C: FromParallelIterator<P::Item>>(self) -> C {
        C::from_par_vec(self.collect_vec())
    }

    /// Parallel sum. Per-segment sums combine in index order, so the result
    /// is identical at any thread count.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        let floor = self.floor();
        drive(self.p, floor, Self::parallel(), &|leaf: P| leaf.into_seq().sum::<S>(), &|a, b| {
            [a, b].into_iter().sum::<S>()
        })
    }

    pub fn count(self) -> usize {
        let floor = self.floor();
        drive(self.p, floor, Self::parallel(), &|leaf: P| leaf.into_seq().count(), &|a, b| a + b)
    }

    /// Rayon-style fold: one accumulator **per segment** of the fixed split
    /// tree (not per thread), exposed as a parallel iterator over the
    /// per-segment accumulators in index order.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, P::Item) -> T + Sync,
    {
        let floor = self.floor();
        let accs = drive(
            self.p,
            floor,
            Self::parallel(),
            &|leaf: P| vec![leaf.into_seq().fold(identity(), &fold_op)],
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        par(VecProducer(accs))
    }

    /// Rayon-style reduce with an identity constructor. Segments reduce
    /// internally left-to-right and segment results combine in fixed tree
    /// order, so the reduction is deterministic for any (even non-associative
    /// floating-point) `op` at any thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let floor = self.floor();
        drive(
            self.p,
            floor,
            Self::parallel(),
            &|leaf: P| leaf.into_seq().fold(identity(), &op),
            &|a, b| op(a, b),
        )
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `collect()` target; order of `v` is the input order.
pub trait FromParallelIterator<T: Send> {
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// `into_par_iter()` (rayon: `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Producer: Producer<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Producer = RangeProducer;

    fn into_par_iter(self) -> ParIter<RangeProducer> {
        par(RangeProducer { start: self.start, end: self.end })
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;

    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        par(VecProducer(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;

    fn into_par_iter(self) -> ParIter<SliceProducer<'a, T>> {
        par(SliceProducer(self))
    }
}

/// A `ParIter` is trivially "into" itself — this is what lets `zip` accept
/// the result of another `par_chunks`/`par_iter` call.
impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;

    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

/// `par_iter()` / `par_chunks()` on slices (rayon: `IntoParallelRefIterator`
/// + `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        par(SliceProducer(self))
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        par(ChunksProducer { slice: self, size: chunk_size })
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` on slices (rayon:
/// `IntoParallelRefMutIterator` + `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        par(SliceMutProducer(self))
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        par(ChunksMutProducer { slice: self, size: chunk_size })
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, join, with_threads};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_matches_sequential() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..10usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn collect_preserves_order_across_threads() {
        let v: Vec<usize> =
            with_threads(4, || (0..10_000).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(v, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_rayon_signatures() {
        let total = (1..=4usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x as f32)
            .fold(|| 0.0f32, |acc, x| acc + x)
            .reduce(|| 0.0f32, |a, b| a + b);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn chunks_zip_sum() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [10.0f32, 20.0, 30.0, 40.0];
        let s: f32 = a
            .par_chunks(2)
            .zip(b.par_chunks(2))
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p * q).sum::<f32>())
            .sum();
        assert_eq!(s, 10.0 + 40.0 + 90.0 + 160.0);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut out = [0usize; 6];
        out.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.iter_mut().for_each(|x| *x = i));
        assert_eq!(out, [0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn filter_keeps_order() {
        let v: Vec<usize> =
            with_threads(4, || (0..1000usize).into_par_iter().filter(|x| x % 3 == 0).collect());
        assert_eq!(v, (0..1000usize).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_threads(4, || join(|| 1 + 1, || "two"));
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        // A 3-level join tree summing 0..8 — exercises workers calling join
        // and stealing back / helping while blocked.
        fn tree_sum(lo: usize, hi: usize) -> usize {
            if hi - lo <= 1 {
                return lo;
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| tree_sum(lo, mid), || tree_sum(mid, hi));
            a + b
        }
        let total = with_threads(4, || tree_sum(0, 8));
        assert_eq!(total, (0..8).sum::<usize>());
    }

    #[test]
    fn join_propagates_panic_from_first_closure() {
        let res =
            catch_unwind(AssertUnwindSafe(|| with_threads(4, || join(|| panic!("boom-a"), || 7))));
        let payload = res.expect_err("panic in a must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom-a");
    }

    #[test]
    fn join_propagates_panic_from_second_closure() {
        let res =
            catch_unwind(AssertUnwindSafe(|| with_threads(4, || join(|| 7, || panic!("boom-b")))));
        let payload = res.expect_err("panic in b must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom-b");
    }

    #[test]
    fn for_each_propagates_worker_panic() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                (0..1024usize).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("poisoned item")
                    }
                });
            })
        }));
        assert!(res.is_err(), "panic inside a parallel closure must reach the caller");
    }

    #[test]
    fn with_threads_override_propagates_to_workers() {
        // Queued jobs carry the minting scope's limit, so a closure running
        // on a pool worker still sees the override when it mints nested
        // parallelism.
        let mismatches = AtomicUsize::new(0);
        with_threads(5, || {
            (0..256usize).into_par_iter().for_each(|_| {
                if current_num_threads() != 5 {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // An adversarial sequence where summation order visibly matters.
        let xs: Vec<f32> = (0..100_000).map(|i| ((i * 37 % 1000) as f32 - 499.5) * 1e-3).collect();
        let s1: f32 = with_threads(1, || xs.par_iter().map(|&x| x * x - 0.1).sum());
        let s4: f32 = with_threads(4, || xs.par_iter().map(|&x| x * x - 0.1).sum());
        let s8: f32 = with_threads(8, || xs.par_iter().map(|&x| x * x - 0.1).sum());
        assert_eq!(s1.to_bits(), s4.to_bits());
        assert_eq!(s1.to_bits(), s8.to_bits());
    }

    #[test]
    fn fold_reduce_is_bit_identical_across_thread_counts() {
        let xs: Vec<f32> = (0..50_000).map(|i| (i as f32).sin()).collect();
        let run = |n: usize| {
            with_threads(n, || {
                xs.par_iter()
                    .fold(|| 0.0f32, |acc, &x| acc + x * 1.0001)
                    .reduce(|| 0.0f32, |a, b| a + b)
            })
        };
        assert_eq!(run(1).to_bits(), run(4).to_bits());
    }

    #[test]
    fn work_actually_lands_on_pool_threads() {
        // With >1 threads requested, at least one segment of a large enough
        // for_each should execute off the calling thread.
        let caller = std::thread::current().id();
        let off_thread = AtomicUsize::new(0);
        with_threads(4, || {
            (0..64usize).into_par_iter().for_each(|_| {
                if std::thread::current().id() != caller {
                    off_thread.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        assert!(
            off_thread.load(Ordering::Relaxed) > 0,
            "no work was executed by pool workers at 4 threads"
        );
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let outer = current_num_threads();
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(1, || assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn with_min_len_coarsens_but_preserves_results() {
        let a: Vec<f32> = (0..4_000).map(|i| i as f32).collect();
        let fine: f32 = with_threads(4, || a.par_iter().map(|&x| x).sum());
        let coarse: f32 = with_threads(4, || a.par_iter().with_min_len(4_000).map(|&x| x).sum());
        // The total stays below 2^24, so every partial is exact in f32 and
        // the two tree shapes must agree bitwise.
        assert_eq!(fine, coarse);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut v = vec![0usize; 5000];
        with_threads(4, || v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3));
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn count_and_empty_inputs() {
        assert_eq!((0..0usize).into_par_iter().count(), 0);
        let empty: Vec<f32> = Vec::new();
        let s: f32 = empty.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
        let r = (0..0usize).into_par_iter().map(|x| x as f32).reduce(|| 0.0, |a, b| a + b);
        assert_eq!(r, 0.0);
    }
}
