//! # fg-fl
//!
//! The federated-learning simulation framework of the FedGuard reproduction.
//! It plays the role the paper's Grid'5000 deployment plays: `N` clients
//! holding Dirichlet-partitioned data, a server that samples `m` of them per
//! round, local training (classifier always, CVAE when configured), pluggable
//! aggregation strategies, an update-interception hook for poisoning attacks,
//! byte-accurate communication accounting, a structured per-round telemetry
//! pipeline ([`telemetry`]) with composable observer sinks, a seeded
//! fault-injection layer ([`fault`]) with graceful round degradation
//! (sanitization, quorum, carry-forward) for chaos testing, and a pluggable
//! [`transport`] layer: the same round loop runs in-process
//! ([`transport::LocalTransport`], the deterministic oracle) or against
//! separate client processes over TCP ([`net`], speaking the length-prefixed
//! [`wire`] protocol).
//!
//! The crate knows nothing about specific defenses or attacks; those live in
//! `fg-agg`, `fg-defenses`, `fg-attacks` and `fedguard`, all plugging in via
//! [`strategy::AggregationStrategy`] and [`client::UpdateInterceptor`].

pub mod admin;
pub mod client;
pub mod comm;
pub mod compress;
pub mod config;
pub mod fault;
pub mod federation;
pub mod forensics;
pub mod metrics;
pub mod net;
pub mod strategy;
pub mod telemetry;
pub mod transport;
pub mod update;
pub mod wire;

pub use admin::{AdminPlane, FlightRecTrigger, OpsObserver, OpsState};
pub use client::{Client, DataStream, UpdateInterceptor};
pub use comm::CommStats;
pub use compress::{CompressedBlob, CompressedUpdate, Compression, SparseUpdate};
pub use config::{
    AggregationMemory, CvaeTrainConfig, FederationConfig, LocalTrainConfig, ResiliencePolicy,
};
pub use fault::{
    sanitize_round, CorruptionMode, FaultConfig, FaultEvent, FaultKind, FaultPlan, SubmissionFaults,
};
pub use federation::{Federation, FederationBuilder};
pub use forensics::{
    read_forensics_jsonl, ClientVerdict, DefenseConfusion, ExclusionCause, ForensicsCollector,
    ForensicsLedger, RoundForensics,
};
pub use metrics::RoundRecord;
pub use net::{
    run_federated_client, ClientRunReport, NetConfig, TcpClientChannel, TcpTransport, WireStats,
};
pub use strategy::{
    AggregationContext, AggregationOutcome, AggregationStrategy, StrategyTimings,
    StreamingAggregator,
};
pub use telemetry::{
    read_jsonl, JsonlSink, MemoryCollector, RoundObserver, RoundTelemetry, StageTimings,
    StderrProgress,
};
pub use transport::{
    ClientChannel, Directive, ExchangeTail, IncomingUpdate, LocalTransport, RoundExchange,
    RoundOffer, SessionEvent, SessionEventKind, Transport, TransportKind,
};
pub use update::{ModelUpdate, UpdateRejection};
pub use wire::{Message, WireConfig, WireError};
