//! Wire-level update compression (DESIGN.md §14).
//!
//! A FedGuard round ships ψ+θ f32 parameters per client in both directions;
//! at large cohorts the wire, not the server, is the scaling ceiling. This
//! module turns the `fg_tensor::codec` kernels into a transport-level
//! compression layer:
//!
//! * [`Compression`] — the experiment knob (`FG_COMPRESS` overrides),
//!   negotiated in the Join/Welcome handshake so one server-side config
//!   drives every client process.
//! * [`CompressedBlob`] / [`CompressedUpdate`] — the in-memory form of the
//!   `UploadCompressed` / `RoundStartCompressed` wire frames.
//! * [`compress_update`] / [`decompress_update`] — the encode→decode pair
//!   both transports share ([`crate::transport::LocalTransport`] runs it
//!   in-process, so the oracle exercises the exact codec path TCP does).
//!
//! ## Delta coding and the reference model
//!
//! Uplink compression never quantizes raw parameter vectors: every uplink
//! blob encodes the **delta** `Δ = ψ_j − ref`, where `ref` is exactly the
//! global model the client received this round — i.e. the broadcast *after*
//! the downlink codec. Deltas are small relative to the weights, so the
//! quantization error that survives is proportional to the per-round step,
//! not to the weight magnitude — that is what keeps the lossy modes inside
//! the ≤ 0.5 pp accuracy-drift gate. The server reconstructs the same `ref`
//! (it knows what it broadcast), so both sides agree bit-for-bit.
//!
//! Per-mode downlink policy: `Bf16` and `Int8` broadcast `bf16(ψ₀)` (the
//! broadcast is the shared reference every client must rebuild — int8
//! reference error would dominate the delta signal); `TopK` broadcasts
//! dense (sparsifying the one vector everyone folds against would compound
//! round over round). CVAE decoders have no reference: `Int8` quantizes
//! them directly, `Bf16` and `TopK` ship them as bf16 (sparsifying a
//! generative decoder corrupts the FedGuard audit).
//!
//! ## Determinism
//!
//! Every codec kernel is bit-deterministic at any `FG_THREADS` (see
//! `fg_tensor::codec`), and both transports call the same
//! [`decompress_update`]; the dequantized fold is therefore bit-identical
//! across thread counts, arrival orders, and Local-vs-TCP deployments —
//! asserted by `bench_compression` and `tests/net_equivalence.rs`.

use crate::update::{ModelUpdate, UpdateRejection};
use fg_obs::metrics::Counter;
use fg_tensor::codec;
use fg_tensor::workspace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Logical (pre-codec) model-payload bytes pushed through [`compress_update`]
/// / [`compress_global`], at 4 B per f32 — the numerator of the measured
/// compression ratio.
static RAW_BYTES: Counter = Counter::new("fl.comm.raw_bytes");
/// Encoded model-payload bytes the same calls produced — the denominator.
/// The ratio is measured from real encodes, never assumed from the format.
static WIRE_BYTES: Counter = Counter::new("fl.comm.wire_bytes");
/// Nanoseconds spent inside encode kernels.
static ENC_NS: Counter = Counter::new("fl.codec.enc_ns");
/// Nanoseconds spent inside decode kernels.
static DEC_NS: Counter = Counter::new("fl.codec.dec_ns");

/// Default int8 scale-block size: one scale per 64K-element slab, aligned
/// with the kernels' parallel split.
pub const DEFAULT_INT8_BLOCK: usize = codec::CODEC_SLAB;
/// Default top-k keep fraction (10%).
pub const DEFAULT_TOPK_FRAC: f64 = 0.1;

/// Wire-compression mode for model payloads; the `ExperimentConfig` knob.
/// `FG_COMPRESS` overrides at run time (see [`Compression::resolved`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Compression {
    /// Dense f32 frames — bit-identical to the pre-compression protocol.
    #[default]
    None,
    /// bf16 round-to-nearest-even (2 B/param, ≈ 2× reduction).
    Bf16,
    /// Symmetric per-block int8 with f32 scales (≈ 4× reduction).
    Int8 {
        /// Elements per scale block.
        block: usize,
    },
    /// Magnitude top-k of the delta: a presence bitmap plus bf16 values
    /// (`frac = 0.1` ≈ 12× reduction).
    TopK {
        /// Fraction of entries kept, in (0, 1].
        frac: f64,
    },
}

impl Compression {
    /// Apply the `FG_COMPRESS` environment override: `0`/`false`/`off`/
    /// `none` force dense frames; `bf16`, `int8[:block]`, `topk[:frac]`
    /// force that codec; anything else (or unset) keeps the configured
    /// mode.
    pub fn resolved(self) -> Compression {
        match std::env::var("FG_COMPRESS") {
            Ok(v) => Compression::parse(&v).unwrap_or(self),
            Err(_) => self,
        }
    }

    /// Parse a mode spec — the shared grammar of `FG_COMPRESS` and the
    /// bench binaries' `--compress` flag: `0`/`false`/`off`/`none` for
    /// dense frames; `bf16`; `int8[:block]`; `topk[:frac]`. `None` for
    /// anything else (out-of-range arguments fall back to the defaults).
    pub fn parse(spec: &str) -> Option<Compression> {
        let v = spec.to_ascii_lowercase();
        let (mode, arg) = match v.split_once(':') {
            Some((m, a)) => (m, Some(a)),
            None => (v.as_str(), None),
        };
        match mode {
            "0" | "false" | "off" | "none" => Some(Compression::None),
            "bf16" => Some(Compression::Bf16),
            "int8" => Some(Compression::Int8 {
                block: arg
                    .and_then(|a| a.parse().ok())
                    .filter(|&b| b > 0)
                    .unwrap_or(DEFAULT_INT8_BLOCK),
            }),
            "topk" => Some(Compression::TopK {
                frac: arg
                    .and_then(|a| a.parse().ok())
                    .filter(|f: &f64| f.is_finite() && *f > 0.0 && *f <= 1.0)
                    .unwrap_or(DEFAULT_TOPK_FRAC),
            }),
            _ => None,
        }
    }

    /// Codec applied to the server → client broadcast (see the module docs
    /// for the rationale): `Int8` rides bf16 downlink, `TopK` rides dense.
    pub fn downlink(self) -> Compression {
        match self {
            Compression::Int8 { .. } => Compression::Bf16,
            Compression::TopK { .. } => Compression::None,
            other => other,
        }
    }

    /// Codec applied to a CVAE decoder (no reference model exists for it).
    pub fn decoder_codec(self) -> Compression {
        match self {
            Compression::TopK { .. } => Compression::Bf16,
            other => other,
        }
    }

    /// Short stable name (bench/report labels).
    pub fn name(&self) -> &'static str {
        match self {
            Compression::None => "none",
            Compression::Bf16 => "bf16",
            Compression::Int8 { .. } => "int8",
            Compression::TopK { .. } => "topk",
        }
    }
}

/// One compressed f32 vector, in memory exactly as it travels in a frame.
/// Top-k values are stored as bf16 bits (the canonical wire form), so a
/// decoded blob re-encodes byte-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum CompressedBlob {
    /// bf16 bits, one per source element.
    Bf16 { raw_len: u32, data: Vec<u16> },
    /// Per-block scales plus one signed byte per source element.
    Int8 { raw_len: u32, block: u32, scales: Vec<f32>, q: Vec<i8> },
    /// Selected indices (ascending, unique) with bf16 values; travels as a
    /// presence bitmap + value list.
    TopK { raw_len: u32, idx: Vec<u32>, val: Vec<u16> },
}

impl CompressedBlob {
    /// Length of the vector this blob reconstructs to.
    pub fn raw_len(&self) -> usize {
        match self {
            CompressedBlob::Bf16 { raw_len, .. }
            | CompressedBlob::Int8 { raw_len, .. }
            | CompressedBlob::TopK { raw_len, .. } => *raw_len as usize,
        }
    }

    /// Logical (pre-codec) bytes: `raw_len × 4`.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_len() as u64 * 4
    }

    /// Exact encoded payload bytes of this blob on the wire (tag byte
    /// included) — what `fl.comm.wire_bytes` accounts.
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            CompressedBlob::Bf16 { raw_len, .. } => 1 + 4 + *raw_len as u64 * 2,
            CompressedBlob::Int8 { raw_len, scales, .. } => {
                1 + 4 + 4 + scales.len() as u64 * 4 + *raw_len as u64
            }
            CompressedBlob::TopK { raw_len, val, .. } => {
                1 + 4 + 4 + (*raw_len as u64).div_ceil(8) + val.len() as u64 * 2
            }
        }
    }
}

/// A client's round submission in compressed form — the payload of the
/// `UploadCompressed` wire frame. `params` encodes the delta against the
/// round's reference model; `decoder` (when the strategy audits decoders)
/// is compressed directly.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedUpdate {
    pub client_id: usize,
    pub num_samples: usize,
    pub params: CompressedBlob,
    pub decoder: Option<CompressedBlob>,
    pub class_coverage: Option<Vec<u32>>,
}

impl CompressedUpdate {
    /// Logical model bytes this update stands for — identical to the
    /// reconstructed [`ModelUpdate::wire_bytes`], so `CommStats` accounting
    /// is invariant across compression modes.
    pub fn model_bytes(&self) -> u64 {
        self.params.raw_bytes() + self.decoder.as_ref().map_or(0, |d| d.raw_bytes())
    }

    /// Encoded model-payload bytes (params + decoder blobs).
    pub fn encoded_model_bytes(&self) -> u64 {
        self.params.encoded_bytes() + self.decoder.as_ref().map_or(0, |d| d.encoded_bytes())
    }
}

/// A top-k submission kept sparse all the way into the aggregation fold:
/// `val[i]` is the decoded delta at `idx[i]` against the round's reference
/// model; every unlisted coordinate is unchanged. Produced by
/// [`sparse_update`] on the streaming path so no dense f32 vector is ever
/// materialized for the update.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseUpdate {
    pub client_id: usize,
    pub num_samples: usize,
    /// Length of the dense vector this update sparsifies.
    pub raw_len: usize,
    /// Selected coordinates, ascending and unique.
    pub idx: Vec<u32>,
    /// Decoded deltas, one per selected coordinate.
    pub val: Vec<f32>,
    pub decoder: Option<Vec<f32>>,
    pub class_coverage: Option<Vec<u32>>,
}

impl SparseUpdate {
    /// Logical model bytes (same basis as [`ModelUpdate::wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        (self.raw_len as u64 + self.decoder.as_ref().map_or(0, |d| d.len() as u64)) * 4
    }

    /// The checks [`ModelUpdate::validate`] runs, on the sparse form.
    pub fn validate(&self, expected_len: usize) -> Result<(), UpdateRejection> {
        if self.raw_len != expected_len {
            return Err(UpdateRejection::WrongLength { got: self.raw_len, expected: expected_len });
        }
        if self.val.iter().any(|v| !v.is_finite()) {
            return Err(UpdateRejection::NonFinite);
        }
        Ok(())
    }

    /// Strip a non-finite decoder and its coverage (mirror of
    /// [`ModelUpdate::strip_non_finite_decoder`]); returns true if stripped.
    pub fn strip_non_finite_decoder(&mut self) -> bool {
        let bad = self.decoder.as_ref().is_some_and(|d| d.iter().any(|x| !x.is_finite()));
        if bad {
            self.decoder = None;
            self.class_coverage = None;
        }
        bad
    }
}

/// Compress one f32 vector under `mode` (which must not be
/// [`Compression::None`] — dense vectors stay on the dense frames).
pub fn compress_vec(mode: Compression, data: &[f32]) -> CompressedBlob {
    assert!(
        data.len() <= u32::MAX as usize,
        "compression supports vectors up to u32::MAX elements"
    );
    let t0 = Instant::now();
    let raw_len = data.len() as u32;
    let blob = match mode {
        Compression::None => unreachable!("Compression::None never builds a blob"),
        Compression::Bf16 => {
            let mut packed = Vec::new();
            codec::bf16_pack_into(data, &mut packed);
            CompressedBlob::Bf16 { raw_len, data: packed }
        }
        Compression::Int8 { block } => {
            let (mut scales, mut q) = (Vec::new(), Vec::new());
            codec::int8_quantize_into(data, block, &mut scales, &mut q);
            CompressedBlob::Int8 { raw_len, block: block as u32, scales, q }
        }
        Compression::TopK { frac } => {
            let k = codec::topk_count(data.len(), frac);
            let (mut idx, mut keys) = (Vec::new(), Vec::new());
            codec::topk_select(data, k, &mut idx, &mut keys);
            let val: Vec<u16> = idx.iter().map(|&i| codec::f32_to_bf16(data[i as usize])).collect();
            CompressedBlob::TopK { raw_len, idx, val }
        }
    };
    ENC_NS.add(t0.elapsed().as_nanos() as u64);
    RAW_BYTES.add(blob.raw_bytes());
    WIRE_BYTES.add(blob.encoded_bytes());
    blob
}

/// Decode a blob into the dense vector it directly encodes (for top-k:
/// zeros off the selected set). `dst` is overwritten and resized.
pub fn decompress_blob_into(blob: &CompressedBlob, dst: &mut Vec<f32>) {
    let t0 = Instant::now();
    dst.clear();
    dst.resize(blob.raw_len(), 0.0);
    match blob {
        CompressedBlob::Bf16 { data, .. } => codec::bf16_unpack_into(data, dst),
        CompressedBlob::Int8 { block, scales, q, .. } => {
            codec::int8_dequantize_into(q, scales, *block as usize, dst)
        }
        CompressedBlob::TopK { idx, val, .. } => {
            for (&i, &v) in idx.iter().zip(val) {
                dst[i as usize] = codec::bf16_to_f32(v);
            }
        }
    }
    DEC_NS.add(t0.elapsed().as_nanos() as u64);
}

/// The reference model a round runs against: the broadcast global after the
/// downlink codec. `None` means the downlink is dense and the reference is
/// the global itself (no copy needed).
pub fn reference_global(mode: Compression, global: &[f32]) -> Option<Vec<f32>> {
    match mode.downlink() {
        Compression::None => None,
        downlink => {
            let blob = compress_vec(downlink, global);
            let mut reference = Vec::new();
            decompress_blob_into(&blob, &mut reference);
            Some(reference)
        }
    }
}

/// Compress the global broadcast for the `RoundStartCompressed` frame.
/// Only meaningful when `mode.downlink() != None`.
pub fn compress_global(mode: Compression, global: &[f32]) -> CompressedBlob {
    compress_vec(mode.downlink(), global)
}

/// Client side: compress a trained submission against the reference model
/// the client received this round. The params blob encodes
/// `Δ = params − reference`; the decoder (if any) is compressed directly
/// under [`Compression::decoder_codec`].
pub fn compress_update(
    mode: Compression,
    update: &ModelUpdate,
    reference: &[f32],
) -> CompressedUpdate {
    assert_eq!(
        update.params.len(),
        reference.len(),
        "compress_update: params/reference length mismatch"
    );
    let mut delta = workspace::take_uninit(update.params.len());
    for ((d, &p), &r) in delta.iter_mut().zip(&update.params).zip(reference) {
        *d = p - r;
    }
    let params = compress_vec(mode, &delta);
    let decoder = update.decoder.as_ref().map(|d| compress_vec(mode.decoder_codec(), d));
    CompressedUpdate {
        client_id: update.client_id,
        num_samples: update.num_samples,
        params,
        decoder,
        class_coverage: update.class_coverage.clone(),
    }
}

/// Server side: reconstruct the dense [`ModelUpdate`] from a compressed
/// one, adding the decoded delta back onto the same reference the client
/// encoded against. Top-k leaves unselected coordinates exactly at the
/// reference value (a copy, not a `+ 0.0`), so the dense reconstruction is
/// bit-identical to the sparse fold's per-element arithmetic.
///
/// A blob whose `raw_len` disagrees with the reference cannot be rebased;
/// its raw delta is returned instead and the round sanitizer rejects it by
/// length — decoding stays total without an error channel.
pub fn decompress_update(cu: &CompressedUpdate, reference: &[f32]) -> ModelUpdate {
    let params = if cu.params.raw_len() == reference.len() {
        match &cu.params {
            CompressedBlob::TopK { idx, val, .. } => {
                let t0 = Instant::now();
                let mut params = reference.to_vec();
                for (&i, &v) in idx.iter().zip(val) {
                    params[i as usize] = reference[i as usize] + codec::bf16_to_f32(v);
                }
                DEC_NS.add(t0.elapsed().as_nanos() as u64);
                params
            }
            dense => {
                let mut delta = Vec::new();
                decompress_blob_into(dense, &mut delta);
                let t0 = Instant::now();
                for (d, &r) in delta.iter_mut().zip(reference) {
                    *d += r;
                }
                DEC_NS.add(t0.elapsed().as_nanos() as u64);
                delta
            }
        }
    } else {
        let mut delta = Vec::new();
        decompress_blob_into(&cu.params, &mut delta);
        delta
    };
    let decoder = cu.decoder.as_ref().map(|blob| {
        let mut d = Vec::new();
        decompress_blob_into(blob, &mut d);
        d
    });
    ModelUpdate {
        client_id: cu.client_id,
        params,
        num_samples: cu.num_samples,
        decoder,
        class_coverage: cu.class_coverage.clone(),
    }
}

/// The sparse view of a top-k submission, for the streaming fold — decoded
/// deltas, never a dense vector. Returns `None` for dense blobs (the
/// caller reconstructs densely instead).
pub fn sparse_update(cu: &CompressedUpdate) -> Option<SparseUpdate> {
    let CompressedBlob::TopK { raw_len, idx, val } = &cu.params else {
        return None;
    };
    let t0 = Instant::now();
    let vals: Vec<f32> = val.iter().map(|&v| codec::bf16_to_f32(v)).collect();
    let decoder = cu.decoder.as_ref().map(|blob| {
        let mut d = Vec::new();
        decompress_blob_into(blob, &mut d);
        d
    });
    DEC_NS.add(t0.elapsed().as_nanos() as u64);
    Some(SparseUpdate {
        client_id: cu.client_id,
        num_samples: cu.num_samples,
        raw_len: *raw_len as usize,
        idx: idx.clone(),
        val: vals,
        decoder,
        class_coverage: cu.class_coverage.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::rng::SeededRng;

    fn noise(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeededRng::new(seed);
        (0..n).map(|_| rng.next_f32() * 0.2 - 0.1).collect()
    }

    fn update(params: Vec<f32>, decoder: Option<Vec<f32>>) -> ModelUpdate {
        ModelUpdate { client_id: 3, params, num_samples: 40, decoder, class_coverage: None }
    }

    #[test]
    fn resolved_parses_the_env_grammar() {
        // Set/unset FG_COMPRESS around each case; tests in this crate run
        // single-process per binary but the var is process-global, so keep
        // the whole grammar in one test.
        let base = Compression::Bf16;
        for (v, want) in [
            ("off", Compression::None),
            ("none", Compression::None),
            ("0", Compression::None),
            ("bf16", Compression::Bf16),
            ("int8", Compression::Int8 { block: DEFAULT_INT8_BLOCK }),
            ("int8:512", Compression::Int8 { block: 512 }),
            ("int8:junk", Compression::Int8 { block: DEFAULT_INT8_BLOCK }),
            ("topk", Compression::TopK { frac: DEFAULT_TOPK_FRAC }),
            ("topk:0.25", Compression::TopK { frac: 0.25 }),
            ("topk:7", Compression::TopK { frac: DEFAULT_TOPK_FRAC }),
            ("garbage", base),
        ] {
            std::env::set_var("FG_COMPRESS", v);
            assert_eq!(base.resolved(), want, "FG_COMPRESS={v}");
        }
        std::env::remove_var("FG_COMPRESS");
        assert_eq!(base.resolved(), base);
    }

    #[test]
    fn downlink_and_decoder_policies() {
        assert_eq!(Compression::None.downlink(), Compression::None);
        assert_eq!(Compression::Bf16.downlink(), Compression::Bf16);
        assert_eq!(Compression::Int8 { block: 64 }.downlink(), Compression::Bf16);
        assert_eq!(Compression::TopK { frac: 0.1 }.downlink(), Compression::None);
        assert_eq!(Compression::TopK { frac: 0.1 }.decoder_codec(), Compression::Bf16);
        assert_eq!(
            Compression::Int8 { block: 64 }.decoder_codec(),
            Compression::Int8 { block: 64 }
        );
    }

    #[test]
    fn old_config_blobs_without_the_field_still_parse() {
        assert_eq!(Compression::default(), Compression::None);
        let json = serde_json::to_string(&Compression::TopK { frac: 0.1 }).unwrap();
        let back: Compression = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Compression::TopK { frac: 0.1 });
    }

    #[test]
    fn round_trip_reconstructs_within_codec_error() {
        let reference = noise(10_000, 1);
        let mut params = reference.clone();
        let delta = noise(10_000, 2);
        for (p, d) in params.iter_mut().zip(&delta) {
            *p += d * 0.01;
        }
        for mode in [
            Compression::Bf16,
            Compression::Int8 { block: 1 << 10 },
            Compression::TopK { frac: 0.1 },
        ] {
            let cu = compress_update(mode, &update(params.clone(), None), &reference);
            assert_eq!(cu.model_bytes(), params.len() as u64 * 4);
            let back = decompress_update(&cu, &reference);
            assert_eq!(back.client_id, 3);
            assert_eq!(back.params.len(), params.len());
            // The reconstruction error is bounded by the codec's error on
            // the *delta*, which is ~1e-3 of the delta magnitude here.
            let worst =
                params.iter().zip(&back.params).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
            assert!(worst < 1e-3, "{}: worst abs error {worst}", mode.name());
        }
    }

    #[test]
    fn topk_keeps_reference_bits_off_the_selected_set() {
        // Unselected coordinates must be *copies* of the reference, not
        // `ref + 0.0` (which would flush -0.0): that is the bit-equality
        // contract between the dense reconstruction and the sparse fold.
        let reference = vec![-0.0f32, 1.0, 2.0, 3.0];
        let params = vec![-0.0f32, 1.0, 2.0, 9.0]; // only index 3 changed
        let cu =
            compress_update(Compression::TopK { frac: 0.25 }, &update(params, None), &reference);
        let back = decompress_update(&cu, &reference);
        assert_eq!(back.params[0].to_bits(), (-0.0f32).to_bits());
        assert!((back.params[3] - 9.0).abs() < 0.05);
    }

    #[test]
    fn sparse_view_matches_dense_reconstruction_bitwise() {
        let reference = noise(5_000, 3);
        let mut params = reference.clone();
        for (i, p) in params.iter_mut().enumerate() {
            if i % 7 == 0 {
                *p += 0.05;
            }
        }
        let cu = compress_update(
            Compression::TopK { frac: 0.05 },
            &update(params, Some(noise(64, 4))),
            &reference,
        );
        let dense = decompress_update(&cu, &reference);
        let sparse = sparse_update(&cu).expect("topk blob has a sparse view");
        assert_eq!(sparse.raw_len, reference.len());
        assert_eq!(sparse.validate(reference.len()), Ok(()));
        assert_eq!(sparse.wire_bytes(), dense.wire_bytes());
        let mut rebuilt = reference.clone();
        for (&i, &v) in sparse.idx.iter().zip(&sparse.val) {
            rebuilt[i as usize] = reference[i as usize] + v;
        }
        let dense_bits: Vec<u32> = dense.params.iter().map(|x| x.to_bits()).collect();
        let sparse_bits: Vec<u32> = rebuilt.iter().map(|x| x.to_bits()).collect();
        assert_eq!(dense_bits, sparse_bits);
        assert_eq!(sparse.decoder.as_ref().map(|d| d.len()), Some(64));
    }

    #[test]
    fn sparse_update_validation_mirrors_dense_checks() {
        let mut s = SparseUpdate {
            client_id: 0,
            num_samples: 1,
            raw_len: 100,
            idx: vec![5],
            val: vec![1.0],
            decoder: Some(vec![f32::NAN]),
            class_coverage: None,
        };
        assert!(matches!(
            s.validate(99),
            Err(UpdateRejection::WrongLength { got: 100, expected: 99 })
        ));
        assert_eq!(s.validate(100), Ok(()));
        assert!(s.strip_non_finite_decoder());
        assert!(s.decoder.is_none());
        s.val[0] = f32::INFINITY;
        assert_eq!(s.validate(100), Err(UpdateRejection::NonFinite));
    }

    #[test]
    fn reference_global_tracks_the_downlink_codec() {
        let global = noise(1_000, 5);
        assert!(reference_global(Compression::None, &global).is_none());
        assert!(reference_global(Compression::TopK { frac: 0.1 }, &global).is_none());
        let bf = reference_global(Compression::Bf16, &global).unwrap();
        let i8ref = reference_global(Compression::Int8 { block: 64 }, &global).unwrap();
        // Int8 mode's downlink is bf16: both modes share the reference.
        let bf_bits: Vec<u32> = bf.iter().map(|x| x.to_bits()).collect();
        let i8_bits: Vec<u32> = i8ref.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bf_bits, i8_bits);
        // And it is exactly the bf16 round-trip of the global.
        for (&g, &r) in global.iter().zip(&bf) {
            assert_eq!(fg_tensor::codec::bf16_to_f32(fg_tensor::codec::f32_to_bf16(g)), r);
        }
    }

    #[test]
    fn encoded_bytes_hit_the_headline_ratios() {
        let d = 200_000usize;
        let data = noise(d, 6);
        let raw = d as u64 * 4;
        let bf = compress_vec(Compression::Bf16, &data);
        assert!(raw as f64 / bf.encoded_bytes() as f64 >= 1.9);
        let i8b = compress_vec(Compression::Int8 { block: DEFAULT_INT8_BLOCK }, &data);
        assert!(raw as f64 / i8b.encoded_bytes() as f64 >= 3.5);
        let tk = compress_vec(Compression::TopK { frac: 0.1 }, &data);
        assert!(raw as f64 / tk.encoded_bytes() as f64 >= 8.0);
    }
}
