//! Length-prefixed binary wire codec for the networked deployment mode.
//!
//! Every frame is `[magic u32 LE][kind u8][payload_len u32 LE][payload]`.
//! Payloads are fixed little-endian encodings — `f32` travels as its raw IEEE
//! bits, so a decoded parameter vector is **bit-identical** to the encoded
//! one (NaN payloads included). The codec is deliberately dumb: no varints,
//! no compression, no schema evolution — a frame either decodes exactly or
//! fails with a typed [`WireError`], never a panic (fuzzed over arbitrary
//! byte prefixes in `tests/wire_fuzz.rs`).
//!
//! ## Byte accounting
//!
//! The paper's communication figures (Table V) count model payloads at
//! 4 bytes per f32 — exactly what `crate::comm::CommStats` accounts. Each
//! message therefore reports its [`model_bytes`](Message::model_bytes): the
//! bytes of classifier/decoder parameters it carries. For an `Upload` this
//! equals [`ModelUpdate::wire_bytes`]; for a `RoundStart` it is
//! `global.len() * 4`. Everything else on the wire (headers, ids, lengths,
//! the coverage histogram) is frame overhead, reported separately, so the
//! networked path's model-byte counters can be asserted **identical** to the
//! in-process `CommStats` accounting.
//!
//! ## Robustness
//!
//! A frame whose declared payload length exceeds [`WireConfig::max_frame_bytes`]
//! is rejected before any allocation ([`WireError::Oversized`]); truncated or
//! malformed frames surface as [`WireError`] values the transport maps onto
//! the fault taxonomy ([`WireError::to_fault_kind`]).

use crate::compress::{CompressedBlob, CompressedUpdate, Compression};
use crate::fault::FaultKind;
use crate::update::ModelUpdate;
use std::io::{Read, Write};

/// Frame magic: `FGW1` in little-endian byte order.
pub const MAGIC: u32 = 0x3157_4746;

/// Bytes of the fixed frame header: magic (4) + kind (1) + payload len (4).
pub const HEADER_BYTES: usize = 9;

/// Protocol version sent in `Join`; the server rejects mismatches.
/// Version 2 added compression negotiation to `Welcome` and the
/// `UploadCompressed`/`RoundStartCompressed` frame kinds.
pub const PROTOCOL_VERSION: u32 = 2;

/// Codec limits. The default frame cap (64 MiB) comfortably fits the paper's
/// largest payload (the Table II classifier: 1,662,752 × 4 B ≈ 6.65 MB) with
/// room for bigger models, while bounding what a malicious or corrupt peer
/// can make the server allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Maximum accepted payload length in bytes; larger declared lengths are
    /// rejected with [`WireError::Oversized`] before any allocation.
    pub max_frame_bytes: u32,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { max_frame_bytes: 64 << 20 }
    }
}

/// Everything that crosses the wire between `fed_server` and `fed_client`.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → server: session open. The server validates the protocol
    /// version and registers the session under `client_id`.
    Join { client_id: u64, protocol: u32 },
    /// Server → client: session accepted. Carries the global parameter
    /// count, the negotiated wire-compression mode (the server's resolved
    /// `Compression`, authoritative for the whole session), and an opaque
    /// blob (the serialized `ExperimentConfig` in the shipped bins) so one
    /// config, defined at the server, drives every process.
    Welcome { param_len: u64, compression: Compression, blob: String },
    /// Server → client: one round's work order. `participate` is false when
    /// the seeded fault plan scheduled this client to drop out — the client
    /// must not train (keeping decoder caches bit-identical to the
    /// in-process path) and answers with `Decline`.
    RoundStart { round: u64, participate: bool, global: Vec<f32> },
    /// Client → server: the trained (and possibly attack-intercepted)
    /// submission for `round`.
    Upload { round: u64, update: ModelUpdate },
    /// Client → server: no submission this round (scheduled dropout).
    Decline { round: u64 },
    /// Client → server: liveness signal while idle between rounds.
    Heartbeat { client_id: u64 },
    /// Client → server: orderly session close.
    Leave { client_id: u64 },
    /// Server → client: the run is over; close after sending `Leave`.
    Shutdown,
    /// Client → server: the trained submission for `round`, compressed
    /// (delta-coded against the round's reference model; see
    /// [`crate::compress`]). Used when the negotiated mode is not
    /// [`Compression::None`].
    UploadCompressed { round: u64, update: CompressedUpdate },
    /// Server → client: one round's work order with a compressed global
    /// broadcast. Sent only when the negotiated mode's
    /// [`Compression::downlink`] codec is not `None`; top-k mode keeps the
    /// dense [`Message::RoundStart`] downlink.
    RoundStartCompressed { round: u64, participate: bool, blob: CompressedBlob },
}

impl Message {
    /// Wire kind tag.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Join { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::RoundStart { .. } => 3,
            Message::Upload { .. } => 4,
            Message::Decline { .. } => 5,
            Message::Heartbeat { .. } => 6,
            Message::Leave { .. } => 7,
            Message::Shutdown => 8,
            Message::UploadCompressed { .. } => 9,
            Message::RoundStartCompressed { .. } => 10,
        }
    }

    /// Stable name for spans and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Join { .. } => "join",
            Message::Welcome { .. } => "welcome",
            Message::RoundStart { .. } => "round_start",
            Message::Upload { .. } => "upload",
            Message::Decline { .. } => "decline",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Leave { .. } => "leave",
            Message::Shutdown => "shutdown",
            Message::UploadCompressed { .. } => "upload_compressed",
            Message::RoundStartCompressed { .. } => "round_start_compressed",
        }
    }

    /// Model-parameter payload bytes this message carries (4 bytes per f32),
    /// the quantity [`crate::comm::CommStats`] accounts. Zero for control
    /// frames. Compressed frames report the **logical** (pre-codec) model
    /// bytes they stand for — identical to their dense reconstruction — so
    /// this accounting is invariant across compression modes; the actual
    /// encoded footprint surfaces via the `fl.comm.wire_bytes` counter and
    /// the `WireStats` header/payload split.
    pub fn model_bytes(&self) -> u64 {
        match self {
            Message::RoundStart { global, .. } => global.len() as u64 * 4,
            Message::Upload { update, .. } => update.wire_bytes(),
            Message::UploadCompressed { update, .. } => update.model_bytes(),
            Message::RoundStartCompressed { blob, .. } => blob.raw_bytes(),
            _ => 0,
        }
    }
}

/// Why a frame failed to decode. No variant is ever produced by panicking;
/// the decoder is total over arbitrary byte prefixes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket error (includes read/write timeouts as
    /// `WouldBlock`/`TimedOut`).
    Io(std::io::ErrorKind),
    /// The frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// Unknown message kind tag.
    UnknownKind(u8),
    /// Declared payload length exceeds the configured cap.
    Oversized { declared: u64, cap: u64 },
    /// The buffer ends before the declared frame does.
    Truncated { needed: usize, got: usize },
    /// Structurally invalid payload (bad flag byte, inner length overrun,
    /// non-UTF-8 string, trailing garbage...).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
            WireError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Oversized { declared, cap } => {
                write!(f, "frame declares {declared} payload bytes, cap is {cap}")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

impl WireError {
    /// True when the error is a read/write deadline expiry rather than a
    /// broken peer (`WouldBlock` on Unix, `TimedOut` on Windows).
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::Io(std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut))
    }

    /// Map the failure onto the round-loop fault taxonomy: an oversized
    /// declaration becomes [`FaultKind::FrameOversized`], a timeout or
    /// disconnect becomes [`FaultKind::Dropout`] (the submission simply never
    /// arrived), and every other decode failure becomes
    /// [`FaultKind::FrameMalformed`].
    pub fn to_fault_kind(&self) -> FaultKind {
        match self {
            WireError::Oversized { declared, cap } => {
                FaultKind::FrameOversized { declared: *declared, cap: *cap }
            }
            WireError::Io(_) => FaultKind::Dropout,
            other => FaultKind::FrameMalformed { detail: other.to_string() },
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    put_u64(buf, xs.len() as u64);
    buf.reserve(xs.len() * 4);
    for x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Compression travels as `[tag u8][aux u64]`: tag 0 = none, 1 = bf16,
/// 2 = int8 (aux = block size), 3 = top-k (aux = `f64::to_bits(frac)`).
fn put_compression(buf: &mut Vec<u8>, c: Compression) {
    let (tag, aux): (u8, u64) = match c {
        Compression::None => (0, 0),
        Compression::Bf16 => (1, 0),
        Compression::Int8 { block } => (2, block as u64),
        Compression::TopK { frac } => (3, frac.to_bits()),
    };
    buf.push(tag);
    put_u64(buf, aux);
}

/// Blob layout carries no inner length prefixes: every field's byte count
/// derives from `raw_len` (and `block`/`k`), so a decoder can length-check
/// the whole payload before building anything.
///
/// * tag 1 (bf16): `raw_len u32`, `raw_len × u16`.
/// * tag 2 (int8): `raw_len u32`, `block u32`, `ceil(raw_len/block) × f32`
///   scales, `raw_len × i8`.
/// * tag 3 (top-k): `raw_len u32`, `k u32`, presence bitmap of
///   `ceil(raw_len/8)` bytes (bit `i & 7` of byte `i >> 3` set ⇔ index `i`
///   selected; pad bits must be zero), `k × u16` bf16 values in ascending
///   index order.
fn put_blob(buf: &mut Vec<u8>, blob: &CompressedBlob) {
    match blob {
        CompressedBlob::Bf16 { raw_len, data } => {
            buf.push(1);
            put_u32(buf, *raw_len);
            buf.reserve(data.len() * 2);
            for h in data {
                buf.extend_from_slice(&h.to_le_bytes());
            }
        }
        CompressedBlob::Int8 { raw_len, block, scales, q } => {
            buf.push(2);
            put_u32(buf, *raw_len);
            put_u32(buf, *block);
            buf.reserve(scales.len() * 4 + q.len());
            for s in scales {
                buf.extend_from_slice(&s.to_le_bytes());
            }
            buf.extend(q.iter().map(|&b| b as u8));
        }
        CompressedBlob::TopK { raw_len, idx, val } => {
            buf.push(3);
            put_u32(buf, *raw_len);
            put_u32(buf, val.len() as u32);
            let mut bitmap = vec![0u8; (*raw_len as usize).div_ceil(8)];
            for &i in idx {
                bitmap[(i >> 3) as usize] |= 1 << (i & 7);
            }
            buf.extend_from_slice(&bitmap);
            buf.reserve(val.len() * 2);
            for v in val {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

fn encode_update(buf: &mut Vec<u8>, update: &ModelUpdate) {
    put_u64(buf, update.client_id as u64);
    put_u64(buf, update.num_samples as u64);
    put_f32s(buf, &update.params);
    match &update.decoder {
        Some(decoder) => {
            buf.push(1);
            put_f32s(buf, decoder);
        }
        None => buf.push(0),
    }
    match &update.class_coverage {
        Some(coverage) => {
            buf.push(1);
            put_u64(buf, coverage.len() as u64);
            for c in coverage {
                put_u32(buf, *c);
            }
        }
        None => buf.push(0),
    }
}

fn frame_of(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    put_u32(&mut frame, MAGIC);
    frame.push(kind);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame
}

/// Encode `msg` as one complete frame (header + payload).
pub fn encode(msg: &Message) -> Vec<u8> {
    match msg {
        Message::RoundStart { round, participate, global } => {
            return encode_round_start(*round, *participate, global);
        }
        Message::Upload { round, update } => return encode_upload(*round, update),
        Message::UploadCompressed { round, update } => {
            return encode_upload_compressed(*round, update);
        }
        Message::RoundStartCompressed { round, participate, blob } => {
            return encode_round_start_compressed(*round, *participate, blob);
        }
        _ => {}
    }
    let mut payload = Vec::new();
    match msg {
        Message::Join { client_id, protocol } => {
            put_u64(&mut payload, *client_id);
            put_u32(&mut payload, *protocol);
        }
        Message::Welcome { param_len, compression, blob } => {
            put_u64(&mut payload, *param_len);
            put_compression(&mut payload, *compression);
            put_str(&mut payload, blob);
        }
        Message::Decline { round } => put_u64(&mut payload, *round),
        Message::Heartbeat { client_id } | Message::Leave { client_id } => {
            put_u64(&mut payload, *client_id)
        }
        Message::Shutdown => {}
        Message::RoundStart { .. }
        | Message::Upload { .. }
        | Message::UploadCompressed { .. }
        | Message::RoundStartCompressed { .. } => unreachable!("handled above"),
    }
    frame_of(msg.kind(), payload)
}

/// Encode a `RoundStart` frame straight from a borrowed parameter slice —
/// lets the server fan one global model out to `m` sessions without cloning
/// it into an owned [`Message`] per client. Byte-identical to
/// [`encode`]`(&Message::RoundStart { .. })`.
pub fn encode_round_start(round: u64, participate: bool, global: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + 8 + global.len() * 4);
    put_u64(&mut payload, round);
    payload.push(u8::from(participate));
    put_f32s(&mut payload, global);
    frame_of(3, payload)
}

/// Encode an `Upload` frame from a borrowed update (no clone of the
/// parameter vectors). Byte-identical to
/// [`encode`]`(&Message::Upload { .. })`.
pub fn encode_upload(round: u64, update: &ModelUpdate) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 24 + update.wire_bytes() as usize);
    put_u64(&mut payload, round);
    encode_update(&mut payload, update);
    frame_of(4, payload)
}

/// Encode a `RoundStartCompressed` frame from a borrowed blob (the server
/// compresses the global once per round and fans the same blob out to `m`
/// sessions). Byte-identical to
/// [`encode`]`(&Message::RoundStartCompressed { .. })`.
pub fn encode_round_start_compressed(
    round: u64,
    participate: bool,
    blob: &CompressedBlob,
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + blob.encoded_bytes() as usize);
    put_u64(&mut payload, round);
    payload.push(u8::from(participate));
    put_blob(&mut payload, blob);
    frame_of(10, payload)
}

/// Encode an `UploadCompressed` frame from a borrowed update.
/// Byte-identical to [`encode`]`(&Message::UploadCompressed { .. })`.
pub fn encode_upload_compressed(round: u64, update: &CompressedUpdate) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 24 + update.encoded_model_bytes() as usize);
    put_u64(&mut payload, round);
    put_u64(&mut payload, update.client_id as u64);
    put_u64(&mut payload, update.num_samples as u64);
    put_blob(&mut payload, &update.params);
    match &update.decoder {
        Some(decoder) => {
            payload.push(1);
            put_blob(&mut payload, decoder);
        }
        None => payload.push(0),
    }
    match &update.class_coverage {
        Some(coverage) => {
            payload.push(1);
            put_u64(&mut payload, coverage.len() as u64);
            for c in coverage {
                put_u32(&mut payload, *c);
            }
        }
        None => payload.push(0),
    }
    frame_of(9, payload)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounded cursor over a payload slice; every take is length-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(WireError::Truncated { needed: n, got: remaining });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// A `u64` that must fit the remaining payload when multiplied by
    /// `elem_bytes` — guards `Vec` preallocation against corrupt lengths.
    fn seq_len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let declared = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if declared.saturating_mul(elem_bytes as u64) > remaining {
            return Err(WireError::Malformed("inner length overruns payload"));
        }
        Ok(declared as usize)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.seq_len(4)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn flag(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("flag byte not 0/1")),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn read_compression(r: &mut Reader<'_>) -> Result<Compression, WireError> {
    let tag = r.u8()?;
    let aux = r.u64()?;
    match tag {
        0 => Ok(Compression::None),
        1 => Ok(Compression::Bf16),
        2 => {
            if aux == 0 || aux > u32::MAX as u64 {
                return Err(WireError::Malformed("int8 block size out of range"));
            }
            Ok(Compression::Int8 { block: aux as usize })
        }
        3 => {
            let frac = f64::from_bits(aux);
            if !frac.is_finite() || frac <= 0.0 || frac > 1.0 {
                return Err(WireError::Malformed("top-k fraction out of range"));
            }
            Ok(Compression::TopK { frac })
        }
        _ => Err(WireError::Malformed("unknown compression tag")),
    }
}

/// Decode one blob (layout documented on `put_blob`). Every field's byte
/// count derives from the leading `raw_len`/`block`/`k` fields, and each is
/// `take`n from the bounded payload before any `Vec` is built — allocation
/// is capped by bytes actually received, never by a declared count.
fn read_blob(r: &mut Reader<'_>) -> Result<CompressedBlob, WireError> {
    match r.u8()? {
        1 => {
            let raw_len = r.u32()?;
            let bytes = r.take(raw_len as usize * 2)?;
            let data =
                bytes.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().unwrap())).collect();
            Ok(CompressedBlob::Bf16 { raw_len, data })
        }
        2 => {
            let raw_len = r.u32()?;
            let block = r.u32()?;
            if block == 0 {
                return Err(WireError::Malformed("int8 block size out of range"));
            }
            let n_blocks = (raw_len as usize).div_ceil(block as usize);
            let scale_bytes = r.take(n_blocks * 4)?;
            let q_bytes = r.take(raw_len as usize)?;
            let scales =
                scale_bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap()));
            Ok(CompressedBlob::Int8 {
                raw_len,
                block,
                scales: scales.collect(),
                q: q_bytes.iter().map(|&b| b as i8).collect(),
            })
        }
        3 => {
            let raw_len = r.u32()?;
            let k = r.u32()?;
            if k > raw_len {
                return Err(WireError::Malformed("top-k count exceeds raw length"));
            }
            let bitmap = r.take((raw_len as usize).div_ceil(8))?;
            let val_bytes = r.take(k as usize * 2)?;
            let ones: u32 = bitmap.iter().map(|b| b.count_ones()).sum();
            if ones != k {
                return Err(WireError::Malformed("top-k bitmap popcount mismatch"));
            }
            if raw_len % 8 != 0 {
                let pad_mask = !0u8 << (raw_len % 8);
                if bitmap.last().is_some_and(|b| b & pad_mask != 0) {
                    return Err(WireError::Malformed("top-k bitmap pad bits set"));
                }
            }
            let mut idx = Vec::with_capacity(k as usize);
            for (byte_i, &b) in bitmap.iter().enumerate() {
                let mut bits = b;
                while bits != 0 {
                    let bit = bits.trailing_zeros();
                    idx.push(byte_i as u32 * 8 + bit);
                    bits &= bits - 1;
                }
            }
            let val = val_bytes.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().unwrap()));
            Ok(CompressedBlob::TopK { raw_len, idx, val: val.collect() })
        }
        _ => Err(WireError::Malformed("unknown blob tag")),
    }
}

fn decode_compressed_update(r: &mut Reader<'_>) -> Result<CompressedUpdate, WireError> {
    let client_id = r.u64()? as usize;
    let num_samples = r.u64()? as usize;
    let params = read_blob(r)?;
    let decoder = if r.flag()? { Some(read_blob(r)?) } else { None };
    let class_coverage = if r.flag()? {
        let len = r.seq_len(4)?;
        let mut coverage = Vec::with_capacity(len);
        for _ in 0..len {
            coverage.push(r.u32()?);
        }
        Some(coverage)
    } else {
        None
    };
    Ok(CompressedUpdate { client_id, num_samples, params, decoder, class_coverage })
}

fn decode_update(r: &mut Reader<'_>) -> Result<ModelUpdate, WireError> {
    let client_id = r.u64()? as usize;
    let num_samples = r.u64()? as usize;
    let params = r.f32s()?;
    let decoder = if r.flag()? { Some(r.f32s()?) } else { None };
    let class_coverage = if r.flag()? {
        let len = r.seq_len(4)?;
        let mut coverage = Vec::with_capacity(len);
        for _ in 0..len {
            coverage.push(r.u32()?);
        }
        Some(coverage)
    } else {
        None
    };
    Ok(ModelUpdate { client_id, params, num_samples, decoder, class_coverage })
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        1 => Message::Join { client_id: r.u64()?, protocol: r.u32()? },
        2 => Message::Welcome {
            param_len: r.u64()?,
            compression: read_compression(&mut r)?,
            blob: r.string()?,
        },
        3 => Message::RoundStart { round: r.u64()?, participate: r.flag()?, global: r.f32s()? },
        4 => Message::Upload { round: r.u64()?, update: decode_update(&mut r)? },
        5 => Message::Decline { round: r.u64()? },
        6 => Message::Heartbeat { client_id: r.u64()? },
        7 => Message::Leave { client_id: r.u64()? },
        8 => Message::Shutdown,
        9 => {
            Message::UploadCompressed { round: r.u64()?, update: decode_compressed_update(&mut r)? }
        }
        10 => Message::RoundStartCompressed {
            round: r.u64()?,
            participate: r.flag()?,
            blob: read_blob(&mut r)?,
        },
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Decode one frame from the front of `buf`. On success returns the message
/// and the number of bytes consumed. Total over arbitrary inputs: any input
/// either decodes or returns a typed error — never panics, never allocates
/// more than the declared (capped) payload.
pub fn decode(buf: &[u8], cfg: &WireConfig) -> Result<(Message, usize), WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::Truncated { needed: HEADER_BYTES, got: buf.len() });
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = buf[4];
    let declared = u32::from_le_bytes(buf[5..9].try_into().unwrap()) as usize;
    if declared as u64 > cfg.max_frame_bytes as u64 {
        return Err(WireError::Oversized {
            declared: declared as u64,
            cap: cfg.max_frame_bytes as u64,
        });
    }
    let total = HEADER_BYTES + declared;
    if buf.len() < total {
        return Err(WireError::Truncated { needed: total, got: buf.len() });
    }
    let msg = decode_payload(kind, &buf[HEADER_BYTES..total])?;
    Ok((msg, total))
}

/// Write one frame to `w`, flushing it. Returns the total frame bytes put on
/// the wire.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<u64, WireError> {
    let frame = encode(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len() as u64)
}

/// Read exactly one frame from `r`. Returns the message and its total frame
/// bytes. A peer that closes the connection cleanly between frames surfaces
/// as `Io(UnexpectedEof)`; a close mid-frame the same way (the transport maps
/// both onto the fault taxonomy).
pub fn read_frame<R: Read>(r: &mut R, cfg: &WireConfig) -> Result<(Message, u64), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = header[4];
    let declared = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    if declared as u64 > cfg.max_frame_bytes as u64 {
        return Err(WireError::Oversized {
            declared: declared as u64,
            cap: cfg.max_frame_bytes as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    let msg = decode_payload(kind, &payload)?;
    Ok((msg, (HEADER_BYTES + declared) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update(decoder: bool) -> ModelUpdate {
        ModelUpdate {
            client_id: 7,
            params: vec![1.5, -2.25, f32::MIN_POSITIVE, 0.0],
            num_samples: 120,
            decoder: decoder.then(|| vec![0.5, -0.5, 3.75]),
            class_coverage: decoder.then(|| vec![3, 0, 9]),
        }
    }

    fn sample_blobs() -> Vec<CompressedBlob> {
        use crate::compress::compress_vec;
        let data: Vec<f32> = (0..300).map(|i| ((i * 37) % 101) as f32 * 0.013 - 0.65).collect();
        vec![
            compress_vec(Compression::Bf16, &data),
            compress_vec(Compression::Int8 { block: 64 }, &data),
            compress_vec(Compression::TopK { frac: 0.1 }, &data),
            // Edge: raw_len a multiple of 8 (no bitmap pad bits).
            compress_vec(Compression::TopK { frac: 0.5 }, &data[..16]),
        ]
    }

    fn sample_compressed_update(decoder: bool) -> CompressedUpdate {
        use crate::compress::compress_vec;
        let params = compress_vec(Compression::TopK { frac: 0.2 }, &[0.0, 3.5, 0.0, -1.25, 0.0]);
        CompressedUpdate {
            client_id: 7,
            num_samples: 120,
            params,
            decoder: decoder.then(|| compress_vec(Compression::Bf16, &[0.5, -0.5, 3.75])),
            class_coverage: decoder.then(|| vec![3, 0, 9]),
        }
    }

    fn all_messages() -> Vec<Message> {
        let mut msgs = vec![
            Message::Join { client_id: 3, protocol: PROTOCOL_VERSION },
            Message::Welcome {
                param_len: 42,
                compression: Compression::None,
                blob: "{\"preset\":\"smoke\"}".to_string(),
            },
            Message::Welcome {
                param_len: 42,
                compression: Compression::Int8 { block: 65536 },
                blob: String::new(),
            },
            Message::Welcome {
                param_len: 42,
                compression: Compression::TopK { frac: 0.1 },
                blob: String::new(),
            },
            Message::RoundStart { round: 5, participate: true, global: vec![0.25, -1.0, 7.5] },
            Message::RoundStart { round: 6, participate: false, global: Vec::new() },
            Message::Upload { round: 5, update: sample_update(true) },
            Message::Upload { round: 5, update: sample_update(false) },
            Message::Decline { round: 9 },
            Message::Heartbeat { client_id: 3 },
            Message::Leave { client_id: 3 },
            Message::Shutdown,
            Message::UploadCompressed { round: 5, update: sample_compressed_update(true) },
            Message::UploadCompressed { round: 5, update: sample_compressed_update(false) },
        ];
        for (i, blob) in sample_blobs().into_iter().enumerate() {
            msgs.push(Message::RoundStartCompressed {
                round: 11 + i as u64,
                participate: i % 2 == 0,
                blob,
            });
        }
        msgs
    }

    #[test]
    fn every_message_round_trips_bitwise() {
        let cfg = WireConfig::default();
        for msg in all_messages() {
            let frame = encode(&msg);
            let (back, consumed) = decode(&frame, &cfg).expect("frame decodes");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn borrowed_encoders_match_the_owned_path() {
        let update = sample_update(true);
        assert_eq!(
            encode_upload(3, &update),
            encode(&Message::Upload { round: 3, update: update.clone() })
        );
        let global = vec![1.0f32, -0.5, f32::MAX];
        assert_eq!(
            encode_round_start(9, false, &global),
            encode(&Message::RoundStart { round: 9, participate: false, global })
        );
        let cu = sample_compressed_update(true);
        assert_eq!(
            encode_upload_compressed(3, &cu),
            encode(&Message::UploadCompressed { round: 3, update: cu.clone() })
        );
        for blob in sample_blobs() {
            assert_eq!(
                encode_round_start_compressed(9, true, &blob),
                encode(&Message::RoundStartCompressed { round: 9, participate: true, blob })
            );
        }
    }

    #[test]
    fn nan_parameters_survive_the_wire_bit_for_bit() {
        let mut update = sample_update(false);
        update.params = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0];
        let msg = Message::Upload { round: 0, update };
        let (back, _) = decode(&encode(&msg), &WireConfig::default()).unwrap();
        let Message::Upload { update: u, .. } = back else { panic!("upload") };
        let bits: Vec<u32> = u.params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                f32::NAN.to_bits(),
                f32::INFINITY.to_bits(),
                f32::NEG_INFINITY.to_bits(),
                (-0.0f32).to_bits()
            ]
        );
    }

    #[test]
    fn model_bytes_match_comm_accounting() {
        // Upload: exactly ModelUpdate::wire_bytes (params + decoder, 4 B/f32).
        let update = sample_update(true);
        let msg = Message::Upload { round: 1, update: update.clone() };
        assert_eq!(msg.model_bytes(), update.wire_bytes());
        assert_eq!(msg.model_bytes(), (4 + 3) * 4);
        // RoundStart: the global model distribution, 4 B/f32.
        let global = vec![0.0f32; 11];
        let msg = Message::RoundStart { round: 0, participate: true, global };
        assert_eq!(msg.model_bytes(), 44);
        // Control frames carry no model payload.
        assert_eq!(Message::Heartbeat { client_id: 0 }.model_bytes(), 0);
        assert_eq!(Message::Shutdown.model_bytes(), 0);
        // Compressed frames report the LOGICAL model bytes they stand for —
        // identical to their dense reconstruction — keeping CommStats
        // accounting invariant across compression modes.
        let cu = sample_compressed_update(true);
        let msg = Message::UploadCompressed { round: 1, update: cu.clone() };
        assert_eq!(msg.model_bytes(), (5 + 3) * 4);
        assert_eq!(msg.model_bytes(), cu.model_bytes());
        let blob = crate::compress::compress_vec(Compression::Bf16, &[0.0; 11]);
        let msg = Message::RoundStartCompressed { round: 0, participate: true, blob };
        assert_eq!(msg.model_bytes(), 44);
    }

    #[test]
    fn compressed_frames_are_smaller_than_their_logical_bytes() {
        // The whole point: the encoded frame (header + ids + blob) undercuts
        // the 4 B/f32 logical payload it stands for once vectors are
        // non-trivial.
        let data: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        for mode in
            [Compression::Bf16, Compression::Int8 { block: 65536 }, Compression::TopK { frac: 0.1 }]
        {
            let blob = crate::compress::compress_vec(mode, &data);
            let frame = encode_round_start_compressed(0, true, &blob);
            let logical = data.len() as u64 * 4;
            assert!(
                (frame.len() as u64) < logical / 19 * 10,
                "{:?}: frame {} vs logical {}",
                mode,
                frame.len(),
                logical
            );
        }
    }

    #[test]
    fn malformed_compressed_payloads_error_cleanly() {
        let cfg = WireConfig::default();
        let blob = crate::compress::compress_vec(Compression::TopK { frac: 0.5 }, &[1.0, 0.0, 3.0]);
        let good = encode_round_start_compressed(0, true, &blob);
        // Payload layout: round u64, participate u8, then the blob.
        let payload_at = |off: usize| HEADER_BYTES + 8 + 1 + off;
        let bitmap_pos = payload_at(1 + 4 + 4);

        // Keep popcount == k but set a pad bit (raw_len = 3, so bits 3..8 of
        // byte 0 are pad): bits {0, 6} instead of the selected {0, 2}.
        let mut frame = good.clone();
        frame[bitmap_pos] = 0b0100_0001;
        assert!(matches!(decode(&frame, &cfg), Err(WireError::Malformed(m)) if m.contains("pad")));

        // Clear a selected bit: popcount no longer matches k.
        let mut frame = good.clone();
        frame[bitmap_pos] &= !1;
        assert!(
            matches!(decode(&frame, &cfg), Err(WireError::Malformed(m)) if m.contains("popcount"))
        );

        // k > raw_len.
        let mut frame = good.clone();
        let k_pos = payload_at(1 + 4);
        frame[k_pos..k_pos + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(
            matches!(decode(&frame, &cfg), Err(WireError::Malformed(m)) if m.contains("exceeds"))
        );

        // Unknown blob tag.
        let mut frame = good.clone();
        frame[payload_at(0)] = 77;
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("unknown blob tag")));

        // Int8 blob with block = 0.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        payload.push(1);
        payload.push(2); // int8 tag
        put_u32(&mut payload, 8); // raw_len
        put_u32(&mut payload, 0); // block: invalid
        let frame = frame_of(10, payload);
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("int8 block size out of range")));
    }

    #[test]
    fn welcome_compression_field_is_validated() {
        let cfg = WireConfig::default();
        let base = Message::Welcome {
            param_len: 7,
            compression: Compression::TopK { frac: 0.25 },
            blob: String::new(),
        };
        let good = encode(&base);
        let tag_pos = HEADER_BYTES + 8;

        let mut frame = good.clone();
        frame[tag_pos] = 9;
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("unknown compression tag")));

        // top-k fraction outside (0, 1].
        for bad in [0.0f64, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let mut frame = good.clone();
            frame[tag_pos + 1..tag_pos + 9].copy_from_slice(&bad.to_bits().to_le_bytes());
            assert_eq!(
                decode(&frame, &cfg),
                Err(WireError::Malformed("top-k fraction out of range")),
                "frac {bad}"
            );
        }

        // int8 with a zero block.
        let mut frame = good.clone();
        frame[tag_pos] = 2;
        frame[tag_pos + 1..tag_pos + 9].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("int8 block size out of range")));
    }

    #[test]
    fn frame_overhead_is_header_plus_fixed_fields() {
        // The non-model bytes of an Upload are the header, round, ids,
        // lengths, flags and the coverage histogram — everything CommStats
        // does not count.
        let update = sample_update(true);
        let frame = encode(&Message::Upload { round: 1, update: update.clone() });
        let fixed = HEADER_BYTES as u64 // frame header
            + 8  // round
            + 8  // client_id
            + 8  // num_samples
            + 8  // params len
            + 1 + 8 // decoder flag + len
            + 1 + 8 // coverage flag + len
            + update.class_coverage.as_ref().unwrap().len() as u64 * 4;
        assert_eq!(frame.len() as u64, fixed + update.wire_bytes());
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut frame = encode(&Message::Shutdown);
        // Rewrite the payload length to something enormous.
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let cfg = WireConfig::default();
        assert_eq!(
            decode(&frame, &cfg),
            Err(WireError::Oversized {
                declared: u32::MAX as u64,
                cap: cfg.max_frame_bytes as u64
            })
        );
        // A tighter cap rejects an otherwise-valid frame.
        let big =
            encode(&Message::RoundStart { round: 0, participate: true, global: vec![0.0; 100] });
        let tiny = WireConfig { max_frame_bytes: 16 };
        assert!(matches!(decode(&big, &tiny), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn truncated_prefixes_error_cleanly() {
        let frame = encode(&Message::Upload { round: 2, update: sample_update(true) });
        for cut in 0..frame.len() {
            let err = decode(&frame[..cut], &WireConfig::default())
                .expect_err("prefix must not decode as a whole frame");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_unknown_kind_and_trailing_bytes_are_malformed() {
        let cfg = WireConfig::default();
        let mut frame = encode(&Message::Shutdown);
        frame[0] ^= 0xFF;
        assert!(matches!(decode(&frame, &cfg), Err(WireError::BadMagic(_))));

        let mut frame = encode(&Message::Shutdown);
        frame[4] = 200;
        assert_eq!(decode(&frame, &cfg), Err(WireError::UnknownKind(200)));

        // Declare one extra payload byte and append it: trailing garbage.
        let mut frame = encode(&Message::Decline { round: 3 });
        let len = u32::from_le_bytes(frame[5..9].try_into().unwrap());
        frame[5..9].copy_from_slice(&(len + 1).to_le_bytes());
        frame.push(0xAB);
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("trailing bytes after payload")));
    }

    #[test]
    fn inner_length_overrun_is_malformed_not_oom() {
        // A RoundStart whose f32 count claims more elements than the payload
        // holds must fail without attempting the huge allocation.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // round
        payload.push(1); // participate
        put_u64(&mut payload, u64::MAX / 8); // absurd element count
        let mut frame = Vec::new();
        put_u32(&mut frame, MAGIC);
        frame.push(3);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        assert_eq!(
            decode(&frame, &WireConfig::default()),
            Err(WireError::Malformed("inner length overruns payload"))
        );
    }

    #[test]
    fn stream_round_trip_and_eof_mapping() {
        let cfg = WireConfig::default();
        let messages = all_messages();
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = &buf[..];
        for m in &messages {
            let (back, _) = read_frame(&mut cursor, &cfg).unwrap();
            assert_eq!(&back, m);
        }
        // Clean EOF between frames surfaces as an Io error, mapped to Dropout.
        let err = read_frame(&mut cursor, &cfg).unwrap_err();
        assert_eq!(err, WireError::Io(std::io::ErrorKind::UnexpectedEof));
        assert_eq!(err.to_fault_kind(), FaultKind::Dropout);
    }

    #[test]
    fn wire_errors_map_onto_the_fault_taxonomy() {
        assert_eq!(
            WireError::Oversized { declared: 99, cap: 10 }.to_fault_kind(),
            FaultKind::FrameOversized { declared: 99, cap: 10 }
        );
        assert!(matches!(WireError::BadMagic(7).to_fault_kind(), FaultKind::FrameMalformed { .. }));
        assert!(matches!(
            WireError::Malformed("x").to_fault_kind(),
            FaultKind::FrameMalformed { .. }
        ));
        assert_eq!(
            WireError::Io(std::io::ErrorKind::WouldBlock).to_fault_kind(),
            FaultKind::Dropout
        );
        assert!(WireError::Io(std::io::ErrorKind::WouldBlock).is_timeout());
        assert!(!WireError::BadMagic(0).is_timeout());
    }
}
