//! Length-prefixed binary wire codec for the networked deployment mode.
//!
//! Every frame is `[magic u32 LE][kind u8][payload_len u32 LE][payload]`.
//! Payloads are fixed little-endian encodings — `f32` travels as its raw IEEE
//! bits, so a decoded parameter vector is **bit-identical** to the encoded
//! one (NaN payloads included). The codec is deliberately dumb: no varints,
//! no compression, no schema evolution — a frame either decodes exactly or
//! fails with a typed [`WireError`], never a panic (fuzzed over arbitrary
//! byte prefixes in `tests/wire_fuzz.rs`).
//!
//! ## Byte accounting
//!
//! The paper's communication figures (Table V) count model payloads at
//! 4 bytes per f32 — exactly what `crate::comm::CommStats` accounts. Each
//! message therefore reports its [`model_bytes`](Message::model_bytes): the
//! bytes of classifier/decoder parameters it carries. For an `Upload` this
//! equals [`ModelUpdate::wire_bytes`]; for a `RoundStart` it is
//! `global.len() * 4`. Everything else on the wire (headers, ids, lengths,
//! the coverage histogram) is frame overhead, reported separately, so the
//! networked path's model-byte counters can be asserted **identical** to the
//! in-process `CommStats` accounting.
//!
//! ## Robustness
//!
//! A frame whose declared payload length exceeds [`WireConfig::max_frame_bytes`]
//! is rejected before any allocation ([`WireError::Oversized`]); truncated or
//! malformed frames surface as [`WireError`] values the transport maps onto
//! the fault taxonomy ([`WireError::to_fault_kind`]).

use crate::fault::FaultKind;
use crate::update::ModelUpdate;
use std::io::{Read, Write};

/// Frame magic: `FGW1` in little-endian byte order.
pub const MAGIC: u32 = 0x3157_4746;

/// Bytes of the fixed frame header: magic (4) + kind (1) + payload len (4).
pub const HEADER_BYTES: usize = 9;

/// Protocol version sent in `Join`; the server rejects mismatches.
pub const PROTOCOL_VERSION: u32 = 1;

/// Codec limits. The default frame cap (64 MiB) comfortably fits the paper's
/// largest payload (the Table II classifier: 1,662,752 × 4 B ≈ 6.65 MB) with
/// room for bigger models, while bounding what a malicious or corrupt peer
/// can make the server allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Maximum accepted payload length in bytes; larger declared lengths are
    /// rejected with [`WireError::Oversized`] before any allocation.
    pub max_frame_bytes: u32,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { max_frame_bytes: 64 << 20 }
    }
}

/// Everything that crosses the wire between `fed_server` and `fed_client`.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → server: session open. The server validates the protocol
    /// version and registers the session under `client_id`.
    Join { client_id: u64, protocol: u32 },
    /// Server → client: session accepted. Carries the global parameter count
    /// and an opaque blob (the serialized `ExperimentConfig` in the shipped
    /// bins) so one config, defined at the server, drives every process.
    Welcome { param_len: u64, blob: String },
    /// Server → client: one round's work order. `participate` is false when
    /// the seeded fault plan scheduled this client to drop out — the client
    /// must not train (keeping decoder caches bit-identical to the
    /// in-process path) and answers with `Decline`.
    RoundStart { round: u64, participate: bool, global: Vec<f32> },
    /// Client → server: the trained (and possibly attack-intercepted)
    /// submission for `round`.
    Upload { round: u64, update: ModelUpdate },
    /// Client → server: no submission this round (scheduled dropout).
    Decline { round: u64 },
    /// Client → server: liveness signal while idle between rounds.
    Heartbeat { client_id: u64 },
    /// Client → server: orderly session close.
    Leave { client_id: u64 },
    /// Server → client: the run is over; close after sending `Leave`.
    Shutdown,
}

impl Message {
    /// Wire kind tag.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Join { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::RoundStart { .. } => 3,
            Message::Upload { .. } => 4,
            Message::Decline { .. } => 5,
            Message::Heartbeat { .. } => 6,
            Message::Leave { .. } => 7,
            Message::Shutdown => 8,
        }
    }

    /// Stable name for spans and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Join { .. } => "join",
            Message::Welcome { .. } => "welcome",
            Message::RoundStart { .. } => "round_start",
            Message::Upload { .. } => "upload",
            Message::Decline { .. } => "decline",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Leave { .. } => "leave",
            Message::Shutdown => "shutdown",
        }
    }

    /// Model-parameter payload bytes this message carries (4 bytes per f32),
    /// the quantity [`crate::comm::CommStats`] accounts. Zero for control
    /// frames.
    pub fn model_bytes(&self) -> u64 {
        match self {
            Message::RoundStart { global, .. } => global.len() as u64 * 4,
            Message::Upload { update, .. } => update.wire_bytes(),
            _ => 0,
        }
    }
}

/// Why a frame failed to decode. No variant is ever produced by panicking;
/// the decoder is total over arbitrary byte prefixes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket error (includes read/write timeouts as
    /// `WouldBlock`/`TimedOut`).
    Io(std::io::ErrorKind),
    /// The frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// Unknown message kind tag.
    UnknownKind(u8),
    /// Declared payload length exceeds the configured cap.
    Oversized { declared: u64, cap: u64 },
    /// The buffer ends before the declared frame does.
    Truncated { needed: usize, got: usize },
    /// Structurally invalid payload (bad flag byte, inner length overrun,
    /// non-UTF-8 string, trailing garbage...).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
            WireError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::Oversized { declared, cap } => {
                write!(f, "frame declares {declared} payload bytes, cap is {cap}")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

impl WireError {
    /// True when the error is a read/write deadline expiry rather than a
    /// broken peer (`WouldBlock` on Unix, `TimedOut` on Windows).
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::Io(std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut))
    }

    /// Map the failure onto the round-loop fault taxonomy: an oversized
    /// declaration becomes [`FaultKind::FrameOversized`], a timeout or
    /// disconnect becomes [`FaultKind::Dropout`] (the submission simply never
    /// arrived), and every other decode failure becomes
    /// [`FaultKind::FrameMalformed`].
    pub fn to_fault_kind(&self) -> FaultKind {
        match self {
            WireError::Oversized { declared, cap } => {
                FaultKind::FrameOversized { declared: *declared, cap: *cap }
            }
            WireError::Io(_) => FaultKind::Dropout,
            other => FaultKind::FrameMalformed { detail: other.to_string() },
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    put_u64(buf, xs.len() as u64);
    buf.reserve(xs.len() * 4);
    for x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn encode_update(buf: &mut Vec<u8>, update: &ModelUpdate) {
    put_u64(buf, update.client_id as u64);
    put_u64(buf, update.num_samples as u64);
    put_f32s(buf, &update.params);
    match &update.decoder {
        Some(decoder) => {
            buf.push(1);
            put_f32s(buf, decoder);
        }
        None => buf.push(0),
    }
    match &update.class_coverage {
        Some(coverage) => {
            buf.push(1);
            put_u64(buf, coverage.len() as u64);
            for c in coverage {
                put_u32(buf, *c);
            }
        }
        None => buf.push(0),
    }
}

fn frame_of(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    put_u32(&mut frame, MAGIC);
    frame.push(kind);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame
}

/// Encode `msg` as one complete frame (header + payload).
pub fn encode(msg: &Message) -> Vec<u8> {
    match msg {
        Message::RoundStart { round, participate, global } => {
            return encode_round_start(*round, *participate, global);
        }
        Message::Upload { round, update } => return encode_upload(*round, update),
        _ => {}
    }
    let mut payload = Vec::new();
    match msg {
        Message::Join { client_id, protocol } => {
            put_u64(&mut payload, *client_id);
            put_u32(&mut payload, *protocol);
        }
        Message::Welcome { param_len, blob } => {
            put_u64(&mut payload, *param_len);
            put_str(&mut payload, blob);
        }
        Message::Decline { round } => put_u64(&mut payload, *round),
        Message::Heartbeat { client_id } | Message::Leave { client_id } => {
            put_u64(&mut payload, *client_id)
        }
        Message::Shutdown => {}
        Message::RoundStart { .. } | Message::Upload { .. } => unreachable!("handled above"),
    }
    frame_of(msg.kind(), payload)
}

/// Encode a `RoundStart` frame straight from a borrowed parameter slice —
/// lets the server fan one global model out to `m` sessions without cloning
/// it into an owned [`Message`] per client. Byte-identical to
/// [`encode`]`(&Message::RoundStart { .. })`.
pub fn encode_round_start(round: u64, participate: bool, global: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 1 + 8 + global.len() * 4);
    put_u64(&mut payload, round);
    payload.push(u8::from(participate));
    put_f32s(&mut payload, global);
    frame_of(3, payload)
}

/// Encode an `Upload` frame from a borrowed update (no clone of the
/// parameter vectors). Byte-identical to
/// [`encode`]`(&Message::Upload { .. })`.
pub fn encode_upload(round: u64, update: &ModelUpdate) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + 24 + update.wire_bytes() as usize);
    put_u64(&mut payload, round);
    encode_update(&mut payload, update);
    frame_of(4, payload)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounded cursor over a payload slice; every take is length-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(WireError::Truncated { needed: n, got: remaining });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// A `u64` that must fit the remaining payload when multiplied by
    /// `elem_bytes` — guards `Vec` preallocation against corrupt lengths.
    fn seq_len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let declared = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if declared.saturating_mul(elem_bytes as u64) > remaining {
            return Err(WireError::Malformed("inner length overruns payload"));
        }
        Ok(declared as usize)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.seq_len(4)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn flag(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("flag byte not 0/1")),
        }
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn decode_update(r: &mut Reader<'_>) -> Result<ModelUpdate, WireError> {
    let client_id = r.u64()? as usize;
    let num_samples = r.u64()? as usize;
    let params = r.f32s()?;
    let decoder = if r.flag()? { Some(r.f32s()?) } else { None };
    let class_coverage = if r.flag()? {
        let len = r.seq_len(4)?;
        let mut coverage = Vec::with_capacity(len);
        for _ in 0..len {
            coverage.push(r.u32()?);
        }
        Some(coverage)
    } else {
        None
    };
    Ok(ModelUpdate { client_id, params, num_samples, decoder, class_coverage })
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        1 => Message::Join { client_id: r.u64()?, protocol: r.u32()? },
        2 => Message::Welcome { param_len: r.u64()?, blob: r.string()? },
        3 => Message::RoundStart { round: r.u64()?, participate: r.flag()?, global: r.f32s()? },
        4 => Message::Upload { round: r.u64()?, update: decode_update(&mut r)? },
        5 => Message::Decline { round: r.u64()? },
        6 => Message::Heartbeat { client_id: r.u64()? },
        7 => Message::Leave { client_id: r.u64()? },
        8 => Message::Shutdown,
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Decode one frame from the front of `buf`. On success returns the message
/// and the number of bytes consumed. Total over arbitrary inputs: any input
/// either decodes or returns a typed error — never panics, never allocates
/// more than the declared (capped) payload.
pub fn decode(buf: &[u8], cfg: &WireConfig) -> Result<(Message, usize), WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::Truncated { needed: HEADER_BYTES, got: buf.len() });
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = buf[4];
    let declared = u32::from_le_bytes(buf[5..9].try_into().unwrap()) as usize;
    if declared as u64 > cfg.max_frame_bytes as u64 {
        return Err(WireError::Oversized {
            declared: declared as u64,
            cap: cfg.max_frame_bytes as u64,
        });
    }
    let total = HEADER_BYTES + declared;
    if buf.len() < total {
        return Err(WireError::Truncated { needed: total, got: buf.len() });
    }
    let msg = decode_payload(kind, &buf[HEADER_BYTES..total])?;
    Ok((msg, total))
}

/// Write one frame to `w`, flushing it. Returns the total frame bytes put on
/// the wire.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<u64, WireError> {
    let frame = encode(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len() as u64)
}

/// Read exactly one frame from `r`. Returns the message and its total frame
/// bytes. A peer that closes the connection cleanly between frames surfaces
/// as `Io(UnexpectedEof)`; a close mid-frame the same way (the transport maps
/// both onto the fault taxonomy).
pub fn read_frame<R: Read>(r: &mut R, cfg: &WireConfig) -> Result<(Message, u64), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let kind = header[4];
    let declared = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    if declared as u64 > cfg.max_frame_bytes as u64 {
        return Err(WireError::Oversized {
            declared: declared as u64,
            cap: cfg.max_frame_bytes as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    let msg = decode_payload(kind, &payload)?;
    Ok((msg, (HEADER_BYTES + declared) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update(decoder: bool) -> ModelUpdate {
        ModelUpdate {
            client_id: 7,
            params: vec![1.5, -2.25, f32::MIN_POSITIVE, 0.0],
            num_samples: 120,
            decoder: decoder.then(|| vec![0.5, -0.5, 3.75]),
            class_coverage: decoder.then(|| vec![3, 0, 9]),
        }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Join { client_id: 3, protocol: PROTOCOL_VERSION },
            Message::Welcome { param_len: 42, blob: "{\"preset\":\"smoke\"}".to_string() },
            Message::RoundStart { round: 5, participate: true, global: vec![0.25, -1.0, 7.5] },
            Message::RoundStart { round: 6, participate: false, global: Vec::new() },
            Message::Upload { round: 5, update: sample_update(true) },
            Message::Upload { round: 5, update: sample_update(false) },
            Message::Decline { round: 9 },
            Message::Heartbeat { client_id: 3 },
            Message::Leave { client_id: 3 },
            Message::Shutdown,
        ]
    }

    #[test]
    fn every_message_round_trips_bitwise() {
        let cfg = WireConfig::default();
        for msg in all_messages() {
            let frame = encode(&msg);
            let (back, consumed) = decode(&frame, &cfg).expect("frame decodes");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn borrowed_encoders_match_the_owned_path() {
        let update = sample_update(true);
        assert_eq!(
            encode_upload(3, &update),
            encode(&Message::Upload { round: 3, update: update.clone() })
        );
        let global = vec![1.0f32, -0.5, f32::MAX];
        assert_eq!(
            encode_round_start(9, false, &global),
            encode(&Message::RoundStart { round: 9, participate: false, global })
        );
    }

    #[test]
    fn nan_parameters_survive_the_wire_bit_for_bit() {
        let mut update = sample_update(false);
        update.params = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0];
        let msg = Message::Upload { round: 0, update };
        let (back, _) = decode(&encode(&msg), &WireConfig::default()).unwrap();
        let Message::Upload { update: u, .. } = back else { panic!("upload") };
        let bits: Vec<u32> = u.params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                f32::NAN.to_bits(),
                f32::INFINITY.to_bits(),
                f32::NEG_INFINITY.to_bits(),
                (-0.0f32).to_bits()
            ]
        );
    }

    #[test]
    fn model_bytes_match_comm_accounting() {
        // Upload: exactly ModelUpdate::wire_bytes (params + decoder, 4 B/f32).
        let update = sample_update(true);
        let msg = Message::Upload { round: 1, update: update.clone() };
        assert_eq!(msg.model_bytes(), update.wire_bytes());
        assert_eq!(msg.model_bytes(), (4 + 3) * 4);
        // RoundStart: the global model distribution, 4 B/f32.
        let global = vec![0.0f32; 11];
        let msg = Message::RoundStart { round: 0, participate: true, global };
        assert_eq!(msg.model_bytes(), 44);
        // Control frames carry no model payload.
        assert_eq!(Message::Heartbeat { client_id: 0 }.model_bytes(), 0);
        assert_eq!(Message::Shutdown.model_bytes(), 0);
    }

    #[test]
    fn frame_overhead_is_header_plus_fixed_fields() {
        // The non-model bytes of an Upload are the header, round, ids,
        // lengths, flags and the coverage histogram — everything CommStats
        // does not count.
        let update = sample_update(true);
        let frame = encode(&Message::Upload { round: 1, update: update.clone() });
        let fixed = HEADER_BYTES as u64 // frame header
            + 8  // round
            + 8  // client_id
            + 8  // num_samples
            + 8  // params len
            + 1 + 8 // decoder flag + len
            + 1 + 8 // coverage flag + len
            + update.class_coverage.as_ref().unwrap().len() as u64 * 4;
        assert_eq!(frame.len() as u64, fixed + update.wire_bytes());
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut frame = encode(&Message::Shutdown);
        // Rewrite the payload length to something enormous.
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let cfg = WireConfig::default();
        assert_eq!(
            decode(&frame, &cfg),
            Err(WireError::Oversized {
                declared: u32::MAX as u64,
                cap: cfg.max_frame_bytes as u64
            })
        );
        // A tighter cap rejects an otherwise-valid frame.
        let big =
            encode(&Message::RoundStart { round: 0, participate: true, global: vec![0.0; 100] });
        let tiny = WireConfig { max_frame_bytes: 16 };
        assert!(matches!(decode(&big, &tiny), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn truncated_prefixes_error_cleanly() {
        let frame = encode(&Message::Upload { round: 2, update: sample_update(true) });
        for cut in 0..frame.len() {
            let err = decode(&frame[..cut], &WireConfig::default())
                .expect_err("prefix must not decode as a whole frame");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_unknown_kind_and_trailing_bytes_are_malformed() {
        let cfg = WireConfig::default();
        let mut frame = encode(&Message::Shutdown);
        frame[0] ^= 0xFF;
        assert!(matches!(decode(&frame, &cfg), Err(WireError::BadMagic(_))));

        let mut frame = encode(&Message::Shutdown);
        frame[4] = 200;
        assert_eq!(decode(&frame, &cfg), Err(WireError::UnknownKind(200)));

        // Declare one extra payload byte and append it: trailing garbage.
        let mut frame = encode(&Message::Decline { round: 3 });
        let len = u32::from_le_bytes(frame[5..9].try_into().unwrap());
        frame[5..9].copy_from_slice(&(len + 1).to_le_bytes());
        frame.push(0xAB);
        assert_eq!(decode(&frame, &cfg), Err(WireError::Malformed("trailing bytes after payload")));
    }

    #[test]
    fn inner_length_overrun_is_malformed_not_oom() {
        // A RoundStart whose f32 count claims more elements than the payload
        // holds must fail without attempting the huge allocation.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // round
        payload.push(1); // participate
        put_u64(&mut payload, u64::MAX / 8); // absurd element count
        let mut frame = Vec::new();
        put_u32(&mut frame, MAGIC);
        frame.push(3);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        assert_eq!(
            decode(&frame, &WireConfig::default()),
            Err(WireError::Malformed("inner length overruns payload"))
        );
    }

    #[test]
    fn stream_round_trip_and_eof_mapping() {
        let cfg = WireConfig::default();
        let messages = all_messages();
        let mut buf = Vec::new();
        for m in &messages {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cursor = &buf[..];
        for m in &messages {
            let (back, _) = read_frame(&mut cursor, &cfg).unwrap();
            assert_eq!(&back, m);
        }
        // Clean EOF between frames surfaces as an Io error, mapped to Dropout.
        let err = read_frame(&mut cursor, &cfg).unwrap_err();
        assert_eq!(err, WireError::Io(std::io::ErrorKind::UnexpectedEof));
        assert_eq!(err.to_fault_kind(), FaultKind::Dropout);
    }

    #[test]
    fn wire_errors_map_onto_the_fault_taxonomy() {
        assert_eq!(
            WireError::Oversized { declared: 99, cap: 10 }.to_fault_kind(),
            FaultKind::FrameOversized { declared: 99, cap: 10 }
        );
        assert!(matches!(WireError::BadMagic(7).to_fault_kind(), FaultKind::FrameMalformed { .. }));
        assert!(matches!(
            WireError::Malformed("x").to_fault_kind(),
            FaultKind::FrameMalformed { .. }
        ));
        assert_eq!(
            WireError::Io(std::io::ErrorKind::WouldBlock).to_fault_kind(),
            FaultKind::Dropout
        );
        assert!(WireError::Io(std::io::ErrorKind::WouldBlock).is_timeout());
        assert!(!WireError::BadMagic(0).is_timeout());
    }
}
