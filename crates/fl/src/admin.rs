//! Admin plane: a tiny HTTP endpoint served inline from the transport's
//! existing poll loop — no dedicated thread, no framework.
//!
//! A deployed `fed_server` binds a *second* listening socket next to the
//! federation endpoint. The nonblocking accept loop the TCP transport
//! already runs between rounds (`poll_joins`) also drains this socket, so
//! operational requests are answered at every round boundary and
//! continuously while the server waits for clients — without a thread that
//! could perturb the deterministic round loop.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the fg-obs registry snapshot in Prometheus text
//!   exposition format (`fg_obs::prometheus`). Rendering is a pure function
//!   of the snapshot, so a scrape equals an offline rendering of a snapshot
//!   taken at the same instant.
//! * `GET /healthz` — JSON liveness: round progress, session count, quorum
//!   state, last accuracy.
//! * `GET /forensics` — the current [`crate::forensics`] ledger as a JSON
//!   array.
//!
//! [`FlightRecTrigger`] rides the same observer bus and dumps the fg-obs
//! flight recorder on anomalies: a quorum failure, a malformed/oversized
//! wire frame, or a round slower than a configurable multiple of the
//! trailing-median wall clock.

use crate::fault::FaultKind;
use crate::forensics::ForensicsCollector;
use crate::telemetry::{RoundObserver, RoundTelemetry};
use parking_lot::Mutex;
use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

#[derive(Default)]
struct Health {
    rounds_total: usize,
    rounds_done: usize,
    last_round: Option<usize>,
    last_accuracy: Option<f32>,
    quorum_failures: usize,
    last_quorum_met: Option<bool>,
    sessions: usize,
    last_excluded: Vec<usize>,
}

/// What `GET /healthz` returns.
#[derive(Serialize)]
struct HealthReport {
    status: String,
    rounds_total: usize,
    rounds_done: usize,
    last_round: Option<usize>,
    last_accuracy: Option<f32>,
    quorum_failures: usize,
    last_quorum_met: Option<bool>,
    sessions: usize,
    last_excluded: Vec<usize>,
}

/// Shared operational state behind the admin endpoints: run health plus a
/// handle on the forensics ledger. Clones share state; the transport holds
/// one for session counts, the round-observer another for progress.
#[derive(Clone)]
pub struct OpsState {
    health: Arc<Mutex<Health>>,
    forensics: ForensicsCollector,
}

impl OpsState {
    pub fn new(rounds_total: usize) -> Self {
        OpsState {
            health: Arc::new(Mutex::new(Health { rounds_total, ..Health::default() })),
            forensics: ForensicsCollector::new(),
        }
    }

    /// Share an existing collector (e.g. one that also writes the JSONL)
    /// instead of the internal one.
    pub fn with_forensics(mut self, collector: ForensicsCollector) -> Self {
        self.forensics = collector;
        self
    }

    pub fn forensics(&self) -> ForensicsCollector {
        self.forensics.clone()
    }

    /// Stamp the current session count (the transport calls this from its
    /// poll loop).
    pub fn set_sessions(&self, n: usize) {
        self.health.lock().sessions = n;
    }

    /// The observer to attach to the federation: updates health and feeds
    /// the forensics ledger.
    pub fn observer(&self) -> OpsObserver {
        OpsObserver { state: self.clone() }
    }

    pub fn healthz_json(&self) -> String {
        let h = self.health.lock();
        let report = HealthReport {
            status: "ok".to_string(),
            rounds_total: h.rounds_total,
            rounds_done: h.rounds_done,
            last_round: h.last_round,
            last_accuracy: h.last_accuracy,
            quorum_failures: h.quorum_failures,
            last_quorum_met: h.last_quorum_met,
            sessions: h.sessions,
            last_excluded: h.last_excluded.clone(),
        };
        serde_json::to_string(&report).expect("health report serializes")
    }
}

/// [`RoundObserver`] feeding an [`OpsState`] (health + forensics ledger).
pub struct OpsObserver {
    state: OpsState,
}

impl RoundObserver for OpsObserver {
    fn on_round(&mut self, event: &RoundTelemetry) {
        {
            let mut h = self.state.health.lock();
            h.rounds_done += 1;
            h.last_round = Some(event.round);
            h.last_accuracy = Some(event.accuracy);
            h.last_quorum_met = Some(event.quorum_met);
            if !event.quorum_met {
                h.quorum_failures += 1;
            }
            h.last_excluded = event.excluded.clone();
        }
        let mut forensics = self.state.forensics.clone();
        forensics.on_round(event);
    }

    fn on_run_complete(&mut self) {
        self.state.forensics.clone().on_run_complete();
    }
}

/// The admin listening socket. `poll` accepts and answers every pending
/// request inline; it never blocks beyond a short per-connection timeout,
/// so it is safe to call from the transport's nonblocking poll points.
pub struct AdminPlane {
    listener: TcpListener,
    state: OpsState,
}

impl AdminPlane {
    pub fn bind(addr: &str, state: OpsState) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(AdminPlane { listener, state })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn state(&self) -> &OpsState {
        &self.state
    }

    /// Accept and answer every connection currently pending. Requests are
    /// one-shot (`Connection: close`); a client that stalls past the read
    /// timeout is dropped.
    pub fn poll(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = self.serve(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn serve(&self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_secs(2)))?;

        let mut req = Vec::new();
        let mut buf = [0u8; 1024];
        while !req.windows(4).any(|w| w == b"\r\n\r\n") && req.len() < 8192 {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => req.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        let request_line =
            std::str::from_utf8(&req).unwrap_or("").lines().next().unwrap_or("").to_string();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");

        let (status, content_type, body) = if method != "GET" {
            ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
        } else {
            match path {
                "/metrics" => (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    fg_obs::prometheus::render(&fg_obs::metrics::snapshot()),
                ),
                "/healthz" => ("200 OK", "application/json", self.state.healthz_json()),
                "/forensics" => ("200 OK", "application/json", self.state.forensics.to_json()),
                _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
            }
        };
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }
}

/// Dump-on-anomaly triggers for the fg-obs flight recorder. Watches each
/// completed round and calls [`fg_obs::flightrec::dump`] when the round
/// failed quorum, carried a malformed/oversized wire frame, or took longer
/// than `slow_multiple ×` the trailing median wall clock (over the last
/// [`Self::WINDOW`] rounds, once at least [`Self::MIN_HISTORY`] are known).
pub struct FlightRecTrigger {
    dir: PathBuf,
    slow_multiple: f64,
    walls: Vec<f64>,
}

impl FlightRecTrigger {
    /// Rounds of wall-clock history kept for the trailing median.
    pub const WINDOW: usize = 16;
    /// Rounds required before the slow-round trigger arms.
    pub const MIN_HISTORY: usize = 3;

    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightRecTrigger { dir: dir.into(), slow_multiple: 3.0, walls: Vec::new() }
    }

    /// Override the slow-round multiple (default 3×).
    pub fn with_slow_multiple(mut self, multiple: f64) -> Self {
        self.slow_multiple = multiple.max(1.0);
        self
    }

    fn trailing_median(&self) -> Option<f64> {
        if self.walls.len() < Self::MIN_HISTORY {
            return None;
        }
        let mut sorted = self.walls.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(sorted[sorted.len() / 2])
    }
}

impl RoundObserver for FlightRecTrigger {
    fn on_round(&mut self, event: &RoundTelemetry) {
        let mut reasons: Vec<String> = Vec::new();
        if !event.quorum_met {
            reasons.push(format!("r{}-quorum", event.round));
        }
        if event.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::FrameMalformed { .. } | FaultKind::FrameOversized { .. })
        }) {
            reasons.push(format!("r{}-wire-fault", event.round));
        }
        if let Some(median) = self.trailing_median() {
            if event.wall_secs > self.slow_multiple * median {
                reasons.push(format!("r{}-slow-round", event.round));
            }
        }
        self.walls.push(event.wall_secs);
        if self.walls.len() > Self::WINDOW {
            self.walls.remove(0);
        }
        for reason in reasons {
            let _ = fg_obs::flightrec::dump(&self.dir, &reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommStats;
    use crate::telemetry::{StageTimings, SCHEMA_VERSION};

    fn event(round: usize, wall: f64, quorum: bool) -> RoundTelemetry {
        RoundTelemetry {
            schema_version: SCHEMA_VERSION,
            round,
            strategy: "fedguard".to_string(),
            accuracy: 0.4,
            stages: StageTimings::default(),
            wall_secs: wall,
            scores: vec![],
            threshold: None,
            sampled: vec![0, 1],
            survivors: vec![0, 1],
            selected: if quorum { vec![0, 1] } else { vec![] },
            excluded: if quorum { vec![] } else { vec![0, 1] },
            faults: vec![],
            quorum_met: quorum,
            malicious_sampled: vec![],
            comm: CommStats::default(),
            transport: Default::default(),
            sessions: vec![],
            metrics: Default::default(),
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn admin_plane_serves_all_three_endpoints() {
        // The registry only lists touched metrics; make sure the scrape has
        // at least one sample regardless of which other tests ran first.
        static PROBE: fg_obs::metrics::Counter = fg_obs::metrics::Counter::new("test.admin.probe");
        PROBE.incr();
        let ops = OpsState::new(4);
        let mut observer = ops.observer();
        observer.on_round(&event(0, 1.0, true));
        observer.on_round(&event(1, 1.0, false));
        ops.set_sessions(2);
        let mut admin = AdminPlane::bind("127.0.0.1:0", ops).unwrap();
        let addr = admin.local_addr().unwrap();

        for (path, probe) in [
            ("/healthz", "\"quorum_failures\":1"),
            ("/forensics", "\"round\":1"),
            ("/metrics", "# TYPE"),
        ] {
            let handle = std::thread::spawn(move || http_get(addr, path));
            while !handle.is_finished() {
                admin.poll();
                std::thread::sleep(Duration::from_millis(1));
            }
            let (head, body) = handle.join().unwrap();
            assert!(head.starts_with("HTTP/1.0 200 OK"), "{path}: {head}");
            assert!(body.contains(probe), "{path} body missing {probe:?}: {body}");
        }

        // Unknown path → 404; the serve loop must not wedge.
        let handle = std::thread::spawn(move || http_get(addr, "/nope"));
        while !handle.is_finished() {
            admin.poll();
            std::thread::sleep(Duration::from_millis(1));
        }
        let (head, _) = handle.join().unwrap();
        assert!(head.starts_with("HTTP/1.0 404"));
    }

    #[test]
    fn healthz_tracks_round_progress() {
        let ops = OpsState::new(8);
        let mut observer = ops.observer();
        observer.on_round(&event(0, 1.0, true));
        let json = ops.healthz_json();
        assert!(json.contains("\"rounds_total\":8"));
        assert!(json.contains("\"rounds_done\":1"));
        assert!(json.contains("\"last_quorum_met\":true"));
    }

    #[test]
    fn flight_trigger_fires_on_quorum_and_slow_rounds() {
        let dir = std::env::temp_dir().join("fg_flighttrig_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut trig = FlightRecTrigger::new(&dir).with_slow_multiple(2.0);
        for r in 0..3 {
            trig.on_round(&event(r, 1.0, true));
        }
        assert!(!dir.exists(), "steady rounds must not dump");
        trig.on_round(&event(3, 10.0, true)); // 10× the median
        trig.on_round(&event(4, 1.0, false)); // quorum failure
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.contains("slow-round")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("quorum")), "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
