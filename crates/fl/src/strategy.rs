//! The pluggable aggregation-strategy interface.

use crate::compress::SparseUpdate;
use crate::config::AggregationMemory;
use crate::update::ModelUpdate;
use fg_tensor::rng::SeededRng;

/// Per-round context handed to the aggregation strategy.
pub struct AggregationContext<'a> {
    /// Current federated round (0-based).
    pub round: usize,
    /// The global parameters `ψ₀` the round started from.
    pub global: &'a [f32],
    /// Round-scoped RNG (derived from the federation seed), for strategies
    /// with stochastic components — FedGuard's latent / conditioning samples.
    pub rng: SeededRng,
}

/// Wall-clock seconds a strategy spent in its internal phases, self-reported
/// through [`AggregationOutcome::with_timings`]. The federation subtracts
/// these from the measured `aggregate()` time to attribute the remainder to
/// inner aggregation in the round's
/// [`StageTimings`](crate::telemetry::StageTimings).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StrategyTimings {
    /// Server-side synthesis of the audit dataset from client decoders.
    pub synthesis_secs: f64,
    /// Per-client scoring/auditing of the submitted updates.
    pub audit_secs: f64,
}

/// What a strategy produced for the round: the aggregate itself plus the
/// selection diagnostics that used to live in strategy-private state
/// (formerly `FedGuardStrategy::last_trace()`).
#[derive(Clone, Debug)]
pub struct AggregationOutcome {
    /// The aggregated parameter vector (before the server learning rate is
    /// applied by the federation).
    pub params: Vec<f32>,
    /// Client ids whose updates were included in the aggregate.
    pub selected: Vec<usize>,
    /// Optional per-client diagnostic scores (meaning is strategy-specific:
    /// validation accuracy for FedGuard, reconstruction error for Spectral,
    /// Krum scores for Krum...).
    pub scores: Vec<(usize, f32)>,
    /// The selection threshold the strategy applied to `scores`, when it
    /// used one (FedGuard/Spectral: the round-mean score).
    pub threshold: Option<f32>,
    /// Self-reported internal phase timings (zero for strategies without a
    /// synthesis/audit phase).
    pub timings: StrategyTimings,
}

impl AggregationOutcome {
    /// Outcome with no diagnostics.
    pub fn new(params: Vec<f32>, selected: Vec<usize>) -> Self {
        AggregationOutcome {
            params,
            selected,
            scores: Vec::new(),
            threshold: None,
            timings: StrategyTimings::default(),
        }
    }

    /// Attach per-client diagnostic scores.
    pub fn with_scores(mut self, scores: Vec<(usize, f32)>) -> Self {
        self.scores = scores;
        self
    }

    /// Attach the selection threshold applied to the scores.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Attach self-measured synthesis/audit timings.
    pub fn with_timings(mut self, timings: StrategyTimings) -> Self {
        self.timings = timings;
        self
    }
}

/// An aggregation strategy: FedAvg, GeoMed, Krum, Spectral, FedGuard, ...
///
/// Strategies receive every submitted update (possibly corrupted by the
/// attack interceptor) and must produce the next global parameter vector.
/// `updates` is never empty.
pub trait AggregationStrategy: Send {
    /// Human-readable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Combine the round's updates.
    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome;

    /// Whether this strategy consumes the clients' CVAE decoders (drives both
    /// client-side CVAE training and communication accounting).
    fn uses_decoders(&self) -> bool {
        false
    }

    /// Open a streaming accumulator for a round, or `None` if this strategy
    /// can only aggregate a materialized batch (Krum's pairwise distances,
    /// FedGuard's audit). `roster` is the round's active client ids in
    /// ascending order — the canonical slot order every transport delivers
    /// and the order the streaming fold is keyed to, so results are
    /// independent of arrival order. The federation only consults this when
    /// [`AggregationMemory`] resolves away from `Batch`; a `Some` aggregator
    /// must produce the same `AggregationOutcome` the batch `aggregate`
    /// would (bit-identical params for `Streaming` mode).
    fn begin_streaming(
        &mut self,
        dim: usize,
        roster: &[usize],
        memory: AggregationMemory,
    ) -> Option<Box<dyn StreamingAggregator>> {
        let _ = (dim, roster, memory);
        None
    }
}

/// An in-flight O(d)-memory aggregation: updates fold in one at a time as
/// the transport delivers them, instead of being materialized as a batch.
///
/// Contract: the caller sanitizes first (length/finiteness validation,
/// duplicate discard) and pushes each surviving update exactly once; every
/// pushed `client_id` must be on the roster `begin_streaming` was given.
/// `finalize` returns `None` when nothing was pushed (the quorum-skip path
/// discards the accumulator without finalizing).
pub trait StreamingAggregator: Send {
    /// Fold one sanitized update into the accumulator.
    fn push(&mut self, update: &ModelUpdate);

    /// Fold one sanitized **sparse** update (a top-k compressed submission's
    /// decoded deltas against `base`, the round's reference model): the
    /// coordinate `idx[i]` holds `base[idx[i]] + val[i]`, every other
    /// coordinate holds `base` unchanged. Must produce bit-identical state
    /// to [`push`](StreamingAggregator::push) of the dense reconstruction.
    ///
    /// The default materializes that reconstruction and pushes it — correct
    /// for any aggregator; O(d)-fold implementations override it to fold the
    /// (idx, val) pairs directly without a dense intermediate.
    fn push_sparse(&mut self, update: &SparseUpdate, base: &[f32]) {
        assert_eq!(update.raw_len, base.len(), "sparse update/base length mismatch");
        let mut params = base.to_vec();
        for (&i, &v) in update.idx.iter().zip(&update.val) {
            params[i as usize] = base[i as usize] + v;
        }
        self.push(&ModelUpdate {
            client_id: update.client_id,
            params,
            num_samples: update.num_samples,
            decoder: update.decoder.clone(),
            class_coverage: update.class_coverage.clone(),
        });
    }

    /// High-water mark of the aggregator's transient residency in bytes
    /// (accumulators + any out-of-order reorder buffer), for the
    /// `fl.agg.peak_bytes` gauge and `bench_aggregation`.
    fn peak_bytes(&self) -> u64;

    /// Complete the round: the outcome the batch path would have produced,
    /// or `None` if no updates were pushed.
    fn finalize(self: Box<Self>) -> Option<AggregationOutcome>;
}

/// Boxes forward, so `FederationBuilder::strategy` accepts either a plain
/// strategy value or a `Box<dyn AggregationStrategy>` (as returned by
/// `fedguard::experiment::build_strategy`).
impl<S: AggregationStrategy + ?Sized> AggregationStrategy for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome {
        (**self).aggregate(updates, ctx)
    }

    fn uses_decoders(&self) -> bool {
        (**self).uses_decoders()
    }

    fn begin_streaming(
        &mut self,
        dim: usize,
        roster: &[usize],
        memory: AggregationMemory,
    ) -> Option<Box<dyn StreamingAggregator>> {
        (**self).begin_streaming(dim, roster, memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TakeFirst;

    impl AggregationStrategy for TakeFirst {
        fn name(&self) -> &'static str {
            "take-first"
        }

        fn aggregate(
            &mut self,
            updates: &[ModelUpdate],
            _ctx: &mut AggregationContext<'_>,
        ) -> AggregationOutcome {
            AggregationOutcome::new(updates[0].params.clone(), vec![updates[0].client_id])
        }
    }

    #[test]
    fn strategies_are_object_safe() {
        let mut s: Box<dyn AggregationStrategy> = Box::new(TakeFirst);
        let updates = vec![ModelUpdate {
            client_id: 7,
            params: vec![1.0, 2.0],
            num_samples: 3,
            decoder: None,
            class_coverage: None,
        }];
        let mut ctx = AggregationContext { round: 0, global: &[0.0, 0.0], rng: SeededRng::new(0) };
        let out = s.aggregate(&updates, &mut ctx);
        assert_eq!(out.params, vec![1.0, 2.0]);
        assert_eq!(out.selected, vec![7]);
        assert!(!s.uses_decoders());
    }

    #[test]
    fn outcome_builders_attach_diagnostics() {
        let out = AggregationOutcome::new(vec![0.0], vec![1])
            .with_scores(vec![(1, 0.9), (2, 0.2)])
            .with_threshold(0.55)
            .with_timings(StrategyTimings { synthesis_secs: 0.1, audit_secs: 0.2 });
        assert_eq!(out.scores.len(), 2);
        assert_eq!(out.threshold, Some(0.55));
        assert!((out.timings.audit_secs - 0.2).abs() < 1e-12);
        // Plain new() carries no diagnostics.
        let plain = AggregationOutcome::new(vec![0.0], vec![1]);
        assert!(plain.scores.is_empty());
        assert_eq!(plain.threshold, None);
        assert_eq!(plain.timings, StrategyTimings::default());
    }

    #[test]
    fn boxed_strategies_forward() {
        let mut s = Box::new(TakeFirst);
        assert_eq!(AggregationStrategy::name(&s), "take-first");
        let updates = vec![ModelUpdate {
            client_id: 1,
            params: vec![3.0],
            num_samples: 1,
            decoder: None,
            class_coverage: None,
        }];
        let mut ctx = AggregationContext { round: 0, global: &[0.0], rng: SeededRng::new(0) };
        assert_eq!(s.aggregate(&updates, &mut ctx).selected, vec![1]);
    }
}
