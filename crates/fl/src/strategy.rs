//! The pluggable aggregation-strategy interface.

use crate::update::ModelUpdate;
use fg_tensor::rng::SeededRng;

/// Per-round context handed to the aggregation strategy.
pub struct AggregationContext<'a> {
    /// Current federated round (0-based).
    pub round: usize,
    /// The global parameters `ψ₀` the round started from.
    pub global: &'a [f32],
    /// Round-scoped RNG (derived from the federation seed), for strategies
    /// with stochastic components — FedGuard's latent / conditioning samples.
    pub rng: SeededRng,
}

/// What a strategy produced for the round.
#[derive(Clone, Debug)]
pub struct AggregationOutcome {
    /// The aggregated parameter vector (before the server learning rate is
    /// applied by the federation).
    pub params: Vec<f32>,
    /// Client ids whose updates were included in the aggregate.
    pub selected: Vec<usize>,
    /// Optional per-client diagnostic scores (meaning is strategy-specific:
    /// validation accuracy for FedGuard, reconstruction error for Spectral,
    /// Krum scores for Krum...).
    pub scores: Vec<(usize, f32)>,
}

impl AggregationOutcome {
    /// Outcome with no diagnostics.
    pub fn new(params: Vec<f32>, selected: Vec<usize>) -> Self {
        AggregationOutcome { params, selected, scores: Vec::new() }
    }
}

/// An aggregation strategy: FedAvg, GeoMed, Krum, Spectral, FedGuard, ...
///
/// Strategies receive every submitted update (possibly corrupted by the
/// attack interceptor) and must produce the next global parameter vector.
/// `updates` is never empty.
pub trait AggregationStrategy: Send {
    /// Human-readable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Combine the round's updates.
    fn aggregate(&mut self, updates: &[ModelUpdate], ctx: &mut AggregationContext<'_>) -> AggregationOutcome;

    /// Whether this strategy consumes the clients' CVAE decoders (drives both
    /// client-side CVAE training and communication accounting).
    fn uses_decoders(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TakeFirst;

    impl AggregationStrategy for TakeFirst {
        fn name(&self) -> &'static str {
            "take-first"
        }

        fn aggregate(
            &mut self,
            updates: &[ModelUpdate],
            _ctx: &mut AggregationContext<'_>,
        ) -> AggregationOutcome {
            AggregationOutcome::new(updates[0].params.clone(), vec![updates[0].client_id])
        }
    }

    #[test]
    fn strategies_are_object_safe() {
        let mut s: Box<dyn AggregationStrategy> = Box::new(TakeFirst);
        let updates = vec![ModelUpdate {
            client_id: 7,
            params: vec![1.0, 2.0],
            num_samples: 3,
            decoder: None,
            class_coverage: None,
        }];
        let mut ctx = AggregationContext { round: 0, global: &[0.0, 0.0], rng: SeededRng::new(0) };
        let out = s.aggregate(&updates, &mut ctx);
        assert_eq!(out.params, vec![1.0, 2.0]);
        assert_eq!(out.selected, vec![7]);
        assert!(!s.uses_decoders());
    }
}
