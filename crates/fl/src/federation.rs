//! The federated round loop (Alg. 1, `Server` function).

use crate::client::{Client, NoAttack, UpdateInterceptor};
use crate::comm::CommStats;
use crate::compress::Compression;
use crate::config::{AggregationMemory, CvaeTrainConfig, FederationConfig, ResiliencePolicy};
use crate::fault::{sanitize_round, FaultEvent, FaultKind, FaultPlan, SubmissionFaults};
use crate::metrics::RoundRecord;
use crate::strategy::{
    AggregationContext, AggregationStrategy, StrategyTimings, StreamingAggregator,
};
use crate::telemetry::{RoundObserver, RoundTelemetry, StageTimings, SCHEMA_VERSION};
use crate::transport::{IncomingUpdate, LocalTransport, RoundOffer, SessionEvent, Transport};
use crate::update::{ModelUpdate, UpdateRejection};
use fg_data::Dataset;
use fg_nn::models::Classifier;
use fg_obs::metrics::{Counter, Gauge};
use fg_obs::span::timed_span;
use fg_tensor::rng::SeededRng;
use fg_tensor::vecops;
use std::collections::HashSet;
use std::sync::Arc;

/// Completed federated rounds, across all `Federation` instances.
static ROUNDS: Counter = Counter::new("fl.rounds");

/// Peak transient server residency of the last aggregation stage, in bytes.
/// Streaming rounds report the aggregator's own high-water mark; batch
/// rounds report the materialized-survivors proxy `(m + 1)·d·4` (the m
/// survivor vectors plus the aggregate), so the two memory models are
/// directly comparable on one gauge.
static AGG_PEAK_BYTES: Gauge = Gauge::new("fl.agg.peak_bytes");

/// What stages (2)–(5) of a round distill to — the exchange, sanitization,
/// and aggregation results. Produced by either [`Federation::batch_body`]
/// (the O(m·d) oracle) or [`Federation::streamed_body`] (the O(d) fold);
/// the evaluation/telemetry tail of `run_round` consumes both identically.
struct RoundBody {
    local_training_secs: f64,
    sanitize_secs: f64,
    sessions: Vec<SessionEvent>,
    comm: CommStats,
    survivor_ids: Vec<usize>,
    quorum_met: bool,
    selected: Vec<usize>,
    scores: Vec<(usize, f32)>,
    threshold: Option<f32>,
    strategy_timings: StrategyTimings,
    aggregate_total_secs: f64,
}

/// A complete federated-learning simulation: `N` clients, a server-side test
/// set, an aggregation strategy, and an optional attack interceptor.
///
/// Assembled through [`Federation::builder`]:
///
/// ```ignore
/// let mut fed = Federation::builder(config)
///     .datasets(client_datasets)
///     .test_set(test)
///     .strategy(FedAvgStrategy)
///     .interceptor(attack)            // optional; defaults to NoAttack
///     .cvae(cvae_config)              // required iff the strategy audits decoders
///     .observer(JsonlSink::create("results/telemetry/run.jsonl")?)
///     .build();
/// ```
///
/// Each round (cf. Alg. 1 lines 16-20):
/// 1. uniformly sample `m` of the `N` clients,
/// 2. run the exchange through the [`Transport`]: deliver the global
///    parameters to the sampled clients and collect their trained updates.
///    The default [`LocalTransport`] trains in-process, in parallel across
///    the rayon-shim worker pool (`FG_THREADS` threads; each client trains
///    from its own forked RNG stream, so the round is bit-identical at any
///    thread count); [`crate::net::TcpTransport`] drives remote client
///    processes over the wire instead. Clients scheduled to drop out by the
///    [fault plan](FederationBuilder::faults) never train,
/// 3. let the attack interceptor corrupt the malicious clients' updates,
///    then inject any scheduled transit faults (straggler delay/timeout,
///    NaN/Inf corruption, truncation, stale duplicates),
/// 4. sanitize the arrived submissions ([`sanitize_round`]: reject
///    non-finite / wrong-length vectors, strip bad decoders, dedup by
///    client id) — this guard runs on every round, fault plan or not,
/// 5. if the survivors meet the [`ResiliencePolicy`] quorum, hand them to
///    the aggregation strategy and move the global model by the server
///    learning rate toward the aggregate; otherwise skip aggregation and
///    carry the global model forward (optionally taking a damped partial
///    step toward the survivors' mean), and
/// 6. evaluate on the held-out test set, record metrics, and emit one
///    [`RoundTelemetry`] event — including the survivor roster and every
///    [`FaultEvent`] — to every registered observer.
pub struct Federation {
    config: FederationConfig,
    transport: Box<dyn Transport>,
    test_set: Dataset,
    strategy: Box<dyn AggregationStrategy>,
    interceptor: Arc<dyn UpdateInterceptor>,
    faults: Option<FaultPlan>,
    resilience: ResiliencePolicy,
    global: Vec<f32>,
    history: Vec<RoundRecord>,
    rng: SeededRng,
    observers: Vec<Box<dyn RoundObserver>>,
}

/// Step-by-step assembly of a [`Federation`]; validates at [`build`].
///
/// [`build`]: FederationBuilder::build
pub struct FederationBuilder {
    config: FederationConfig,
    datasets: Option<Vec<Dataset>>,
    test_set: Option<Dataset>,
    strategy: Option<Box<dyn AggregationStrategy>>,
    interceptor: Arc<dyn UpdateInterceptor>,
    faults: Option<FaultPlan>,
    resilience: ResiliencePolicy,
    cvae: Option<CvaeTrainConfig>,
    observers: Vec<Box<dyn RoundObserver>>,
    transport: Option<Box<dyn Transport>>,
    compression: Compression,
}

impl FederationBuilder {
    /// The per-client data partitions; must contain exactly
    /// `config.n_clients` datasets (checked at build).
    pub fn datasets(mut self, client_datasets: Vec<Dataset>) -> Self {
        self.datasets = Some(client_datasets);
        self
    }

    /// The server-side held-out test set.
    pub fn test_set(mut self, test_set: Dataset) -> Self {
        self.test_set = Some(test_set);
        self
    }

    /// The aggregation strategy. Accepts a plain strategy value or an
    /// already-boxed `Box<dyn AggregationStrategy>`.
    pub fn strategy(mut self, strategy: impl AggregationStrategy + 'static) -> Self {
        self.strategy = Some(Box::new(strategy));
        self
    }

    /// The attack interceptor. Defaults to [`NoAttack`] when omitted.
    pub fn interceptor(mut self, interceptor: Arc<dyn UpdateInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// A seeded fault-injection schedule (see [`crate::fault`]). When set,
    /// each sampled submission may drop out, straggle, arrive corrupted or
    /// truncated, or be duplicated, per the plan's deterministic draws.
    /// Accepts a bare plan or an `Option`; defaults to no injection.
    pub fn faults(mut self, plan: impl Into<Option<FaultPlan>>) -> Self {
        self.faults = plan.into();
        self
    }

    /// How the round degrades when too few valid submissions survive
    /// sanitization. Defaults to [`ResiliencePolicy::default`] (quorum 1,
    /// pure carry-forward below it).
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// CVAE training configuration, installed on every client iff the
    /// strategy consumes decoders. Accepts a bare config or an `Option`.
    pub fn cvae(mut self, cvae: impl Into<Option<CvaeTrainConfig>>) -> Self {
        self.cvae = cvae.into();
        self
    }

    /// Register a telemetry observer; may be called multiple times.
    pub fn observer(mut self, observer: impl RoundObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Like [`Self::observer`] but accepts an already-boxed observer, so
    /// callers can assemble heterogeneous observer lists at runtime.
    pub fn observer_boxed(mut self, observer: Box<dyn RoundObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Install a custom [`Transport`] (e.g. [`crate::net::TcpTransport`])
    /// instead of the in-process default. With a custom transport the
    /// clients live elsewhere: `datasets(..)`/`cvae(..)` must not be set —
    /// each client process assembles its own partition from the shared
    /// experiment configuration.
    pub fn transport(mut self, transport: impl Transport + 'static) -> Self {
        self.transport = Some(Box::new(transport));
        self
    }

    /// Wire-compression mode for the in-process transport (see
    /// [`Compression`]). Applies only to the default [`LocalTransport`] —
    /// a custom transport carries its own mode (e.g.
    /// `TcpTransport::with_compression`).
    pub fn compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Validate the assembled configuration and construct the federation.
    ///
    /// Panics when a required component is missing, the partition count does
    /// not match `config.n_clients`, or a decoder-auditing strategy has no
    /// CVAE configuration.
    pub fn build(self) -> Federation {
        let config = self.config;
        config.validate();
        let test_set = self.test_set.expect("FederationBuilder: test_set(..) not set");
        let strategy = self.strategy.expect("FederationBuilder: strategy(..) not set");
        let needs_cvae = strategy.uses_decoders();
        let master = SeededRng::new(config.seed);

        let transport: Box<dyn Transport> = match self.transport {
            Some(transport) => {
                // Remote clients assemble themselves from the shared config;
                // server-side partitions/CVAE settings would be dead weight
                // and almost certainly a configuration mistake.
                assert!(
                    self.datasets.is_none(),
                    "datasets(..) belong to the in-process transport; a custom transport's \
                     clients hold their own partitions"
                );
                assert!(
                    self.cvae.is_none(),
                    "cvae(..) belongs to the in-process transport; a custom transport's \
                     clients configure their own CVAE"
                );
                transport
            }
            None => {
                let client_datasets =
                    self.datasets.expect("FederationBuilder: datasets(..) not set");
                assert_eq!(
                    client_datasets.len(),
                    config.n_clients,
                    "expected {} client partitions, got {}",
                    config.n_clients,
                    client_datasets.len()
                );
                if needs_cvae {
                    assert!(
                        self.cvae.is_some(),
                        "strategy {} needs a CVAE config",
                        strategy.name()
                    );
                }
                let clients: Vec<Client> = client_datasets
                    .into_iter()
                    .enumerate()
                    .map(|(id, data)| {
                        Client::for_federation(
                            &config,
                            id,
                            data,
                            if needs_cvae { self.cvae } else { None },
                        )
                    })
                    .collect();
                Box::new(
                    LocalTransport::new(clients, Arc::clone(&self.interceptor))
                        .with_compression(self.compression),
                )
            }
        };

        let mut init_rng = master.fork(u64::MAX);
        let global = Classifier::new(&config.classifier, &mut init_rng).get_params();

        Federation {
            config,
            transport,
            test_set,
            strategy,
            interceptor: self.interceptor,
            faults: self.faults,
            resilience: self.resilience,
            global,
            history: Vec::new(),
            rng: master.fork(u64::MAX - 1),
            observers: self.observers,
        }
    }
}

impl Federation {
    /// Start assembling a federation for `config`.
    pub fn builder(config: FederationConfig) -> FederationBuilder {
        FederationBuilder {
            config,
            datasets: None,
            test_set: None,
            strategy: None,
            interceptor: Arc::new(NoAttack),
            faults: None,
            resilience: ResiliencePolicy::default(),
            cvae: None,
            observers: Vec::new(),
            transport: None,
            compression: Compression::None,
        }
    }

    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The current global parameter vector.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Per-round records so far.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Mutable access to a client (e.g. to install a poisoned dataset).
    ///
    /// Panics unless the federation runs on the in-process
    /// [`LocalTransport`] — remote clients are other processes.
    pub fn client_mut(&mut self, id: usize) -> &mut Client {
        self.transport
            .as_any_mut()
            .downcast_mut::<LocalTransport>()
            .expect("client_mut requires the in-process LocalTransport")
            .client_mut(id)
    }

    /// Which transport carries the rounds.
    pub fn transport_kind(&self) -> crate::transport::TransportKind {
        self.transport.kind()
    }

    /// Register a telemetry observer after construction.
    pub fn add_observer(&mut self, observer: impl RoundObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Evaluate the current global model on the test set.
    pub fn evaluate_global(&self) -> f32 {
        let mut clf = Classifier::from_params(&self.config.classifier, &self.global);
        let x = self.test_set.to_tensor();
        let y = self.test_set.labels_usize();
        clf.evaluate(&x, &y, self.config.eval_batch)
    }

    /// Run one round; returns the new record and emits one
    /// [`RoundTelemetry`] event to every observer.
    ///
    /// Stage timing comes from `fg-obs` timed spans: each stage's seconds in
    /// [`StageTimings`] are derived from the same clock readings that land
    /// in the exported trace, so the round telemetry and a profile of the
    /// run can never disagree about where time went.
    pub fn run_round(&mut self) -> RoundRecord {
        let round = self.history.len();
        let round_span = timed_span("round");

        // (1) Sample m participants uniformly (Alg. 1 line 17).
        let stage = timed_span("round.sampling");
        let mut sampled =
            self.rng.sample_distinct(self.config.n_clients, self.config.clients_per_round);
        sampled.sort_unstable();
        let sampling_secs = stage.close();

        // (1b) Draw the round's fault schedule; dropouts never train. Draws
        // are pure functions of (plan seed, round, client), so the schedule
        // is identical across replays regardless of execution order.
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        let schedule: Vec<(usize, SubmissionFaults)> = match &self.faults {
            Some(plan) => sampled.iter().map(|&id| (id, plan.draw(round, id))).collect(),
            None => sampled.iter().map(|&id| (id, SubmissionFaults::default())).collect(),
        };
        let active: Vec<usize> = schedule
            .iter()
            .filter_map(|&(id, f)| {
                if f.dropout {
                    fault_events.push(FaultEvent::new(id, FaultKind::Dropout));
                    None
                } else {
                    Some(id)
                }
            })
            .collect();

        // (2)–(5) Exchange, sanitize, aggregate. When the aggregation-memory
        // knob resolves away from the batch oracle and the strategy can
        // stream, every update folds into an O(d) accumulator as it leaves
        // the transport and the round never materializes; the batch path
        // stays the bitwise oracle and keeps handling everything that needs
        // the survivor vectors in hand (fault injection, the damped
        // below-quorum partial step).
        let memory = self.config.agg_memory.resolved();
        let streaming = if self.faults.is_none() && !self.resilience.damped_partial_step {
            match memory {
                AggregationMemory::Batch => None,
                mode => self.strategy.begin_streaming(self.global.len(), &active, mode),
            }
        } else {
            None
        };
        let RoundBody {
            local_training_secs,
            sanitize_secs,
            sessions,
            comm,
            survivor_ids,
            quorum_met,
            selected,
            scores,
            threshold,
            strategy_timings,
            aggregate_total_secs,
        } = match streaming {
            Some(agg) => self.streamed_body(round, &sampled, &active, &mut fault_events, agg),
            None => self.batch_body(round, &sampled, &active, &schedule, &mut fault_events),
        };

        // (6) Evaluate, record, and emit telemetry.
        let stage = timed_span("round.evaluation");
        let accuracy = self.evaluate_global();
        let evaluation_secs = stage.close();

        let malicious: HashSet<usize> = self.interceptor.malicious_clients().into_iter().collect();
        let malicious_sampled: Vec<usize> =
            sampled.iter().copied().filter(|c| malicious.contains(c)).collect();

        let selected_set: HashSet<usize> = selected.iter().copied().collect();
        let excluded: Vec<usize> =
            sampled.iter().copied().filter(|c| !selected_set.contains(c)).collect();

        let stages = StageTimings {
            sampling_secs,
            local_training_secs,
            sanitize_secs,
            synthesis_secs: strategy_timings.synthesis_secs,
            audit_secs: strategy_timings.audit_secs,
            aggregation_secs: (aggregate_total_secs
                - strategy_timings.synthesis_secs
                - strategy_timings.audit_secs)
                .max(0.0),
            evaluation_secs,
        };

        let record = RoundRecord {
            round,
            accuracy,
            sampled,
            selected,
            malicious_sampled,
            wall_secs: round_span.close(),
            comm,
        };
        ROUNDS.incr();

        let event = RoundTelemetry {
            schema_version: SCHEMA_VERSION,
            round,
            strategy: self.strategy.name().to_string(),
            accuracy,
            stages,
            wall_secs: record.wall_secs,
            scores,
            threshold,
            sampled: record.sampled.clone(),
            survivors: survivor_ids,
            selected: record.selected.clone(),
            excluded,
            faults: fault_events,
            quorum_met,
            malicious_sampled: record.malicious_sampled.clone(),
            comm,
            transport: self.transport.kind(),
            sessions,
            // Cumulative process-wide metrics, folded in only while tracing
            // is on: profiled runs get the numbers, deterministic test runs
            // keep bit-comparable events.
            metrics: if fg_obs::enabled() {
                fg_obs::metrics::snapshot()
            } else {
                fg_obs::metrics::MetricsSnapshot::default()
            },
        };
        for obs in &mut self.observers {
            obs.on_round(&event);
        }

        self.history.push(record.clone());
        record
    }

    /// Stages (2)–(5), batch flavor — the O(m·d) oracle: run the exchange to
    /// a materialized update list, inject scheduled transit faults, sanitize
    /// the arrivals, and hand the surviving batch to the strategy.
    fn batch_body(
        &mut self,
        round: usize,
        sampled: &[usize],
        active: &[usize],
        schedule: &[(usize, SubmissionFaults)],
        fault_events: &mut Vec<FaultEvent>,
    ) -> RoundBody {
        // (2) + (3) The transport runs the exchange: deliver the global
        // model, collect the trained (and attack-intercepted) submissions of
        // the active clients, sorted by client id. In-process this is the
        // parallel training pass; over TCP it is RoundStart/Upload framing —
        // either way the same offers must yield the same updates.
        let stage = timed_span("round.local_training");
        let offer = RoundOffer { round, global: &self.global, sampled, active };
        let exchange = self.transport.exchange_round(&offer);
        let updates = exchange.updates;
        let sessions = exchange.sessions;
        // Transport-observed losses (TCP disconnects, malformed frames)
        // degrade exactly like scheduled faults.
        fault_events.extend(exchange.faults);
        let local_training_secs = stage.close();

        // (3b) Inject transit faults into the trained submissions: corrupt /
        // truncate the vector, queue a stale duplicate, and apply the
        // straggler deadline. Duplicates arrive after every original.
        let deadline =
            self.faults.as_ref().map_or(f64::INFINITY, |p| p.config().round_deadline_secs);
        let faults_of: std::collections::HashMap<usize, SubmissionFaults> =
            schedule.iter().copied().collect();
        let mut arrived: Vec<ModelUpdate> = Vec::with_capacity(updates.len());
        let mut duplicates: Vec<ModelUpdate> = Vec::new();
        for mut update in updates {
            let f = faults_of[&update.client_id];
            if let Some(mode) = f.corrupt {
                FaultPlan::corrupt_params(&mut update, mode);
                fault_events.push(FaultEvent::new(update.client_id, FaultKind::Corrupted { mode }));
            }
            if let Some(frac) = f.truncate_fraction {
                let kept = ((update.params.len() as f64 * frac) as usize).max(1);
                update.params.truncate(kept);
                fault_events.push(FaultEvent::new(update.client_id, FaultKind::Truncated { kept }));
            }
            if f.duplicate {
                // A retransmission frozen at the round-start global model; it
                // goes over the wire even if the original times out.
                let mut dup = update.clone();
                dup.params = self.global.clone();
                duplicates.push(dup);
                fault_events
                    .push(FaultEvent::new(update.client_id, FaultKind::DuplicateSubmission));
            }
            if let Some(delay) = f.straggler_delay_secs {
                if delay > deadline {
                    fault_events.push(FaultEvent::new(
                        update.client_id,
                        FaultKind::StragglerTimeout { delay_secs: delay },
                    ));
                    continue;
                }
                fault_events.push(FaultEvent::new(
                    update.client_id,
                    FaultKind::StragglerLate { delay_secs: delay },
                ));
            }
            arrived.push(update);
        }
        arrived.extend(duplicates);
        // Download accounting covers what actually crossed the wire this
        // round: corrupted/truncated/duplicate submissions included,
        // dropouts and timeouts not.
        let comm = CommStats::for_round(self.global.len(), sampled.len(), &arrived);

        // (4) Sanitize: reject malformed vectors, strip bad decoders, dedup
        // by client id. Runs on every round, fault plan or not.
        let stage = timed_span("round.sanitize");
        let survivors = sanitize_round(arrived, self.global.len(), fault_events);
        let survivor_ids: Vec<usize> = survivors.iter().map(|u| u.client_id).collect();
        let sanitize_secs = stage.close();

        // (5) Aggregate if the survivors meet quorum; otherwise degrade per
        // the resilience policy. The strategy reports its own synthesis /
        // audit time; the remainder of aggregate() is inner aggregation.
        let quorum = self.resilience.effective_quorum();
        let quorum_met = survivors.len() >= quorum;
        let stage = timed_span("round.aggregation");
        let (selected, scores, threshold, strategy_timings) = if quorum_met {
            // Materialized-survivors residency proxy: the m survivor vectors
            // plus the aggregate the strategy is about to produce.
            AGG_PEAK_BYTES.set(((survivors.len() + 1) * self.global.len() * 4) as i64);
            let mut ctx = AggregationContext {
                round,
                global: &self.global,
                rng: self.rng.fork(0xA66 ^ round as u64),
            };
            let outcome = self.strategy.aggregate(&survivors, &mut ctx);
            assert_eq!(
                outcome.params.len(),
                self.global.len(),
                "strategy {} returned wrong-size parameters",
                self.strategy.name()
            );
            // Server learning rate (§V-A): ψ₀ ← (1-η)ψ₀ + η·aggregate.
            self.global = vecops::lerp(&self.global, &outcome.params, self.config.server_lr);
            (outcome.selected, outcome.scores, outcome.threshold, outcome.timings)
        } else if self.resilience.damped_partial_step && !survivors.is_empty() {
            // Below quorum but not empty: a confidence-weighted step toward
            // the survivors' unweighted mean, damped by survivors/quorum on
            // top of the server learning rate.
            let refs: Vec<&[f32]> = survivors.iter().map(|u| u.params.as_slice()).collect();
            let mean = vecops::mean_vector(&refs);
            let scale = survivors.len() as f32 / quorum as f32;
            self.global = vecops::lerp(&self.global, &mean, self.config.server_lr * scale);
            (survivor_ids.clone(), Vec::new(), None, StrategyTimings::default())
        } else {
            // Carry the global model forward unchanged.
            (Vec::new(), Vec::new(), None, StrategyTimings::default())
        };
        let aggregate_total_secs = stage.close();

        RoundBody {
            local_training_secs,
            sanitize_secs,
            sessions,
            comm,
            survivor_ids,
            quorum_met,
            selected,
            scores,
            threshold,
            strategy_timings,
            aggregate_total_secs,
        }
    }

    /// Stages (2)–(5), streaming flavor: the transport hands each update to
    /// a sink that accounts it, sanitizes it inline (same checks and
    /// [`FaultEvent`]s as [`sanitize_round`], minus its last-duplicate-wins
    /// rule — a fold is irrevocable, so the *first* valid arrival per client
    /// wins; unreachable through the in-tree transports, which deliver each
    /// active client at most once), and folds it into the strategy's O(d)
    /// accumulator. No update list is ever materialized.
    fn streamed_body(
        &mut self,
        round: usize,
        sampled: &[usize],
        active: &[usize],
        fault_events: &mut Vec<FaultEvent>,
        mut agg: Box<dyn StreamingAggregator>,
    ) -> RoundBody {
        let stage = timed_span("round.local_training");
        let mut comm = CommStats::for_broadcast(self.global.len(), sampled.len());
        let expected_len = self.global.len();
        let mut survivor_ids: Vec<usize> = Vec::new();
        let offer = RoundOffer { round, global: &self.global, sampled, active };
        // A sparse (top-k) submission's deltas are coded against the round's
        // reference model, which for top-k is the exact global the offer
        // broadcast (its downlink stays dense).
        let base: &[f32] = offer.global;
        let mut sink = |incoming: IncomingUpdate| {
            let mut push_fault = |id: usize, kind: FaultKind| {
                fault_events.push(FaultEvent::new(id, kind));
            };
            match incoming {
                IncomingUpdate::Dense(mut update) => {
                    // Upload accounting covers everything that crossed the
                    // wire, valid or not — the same policy as the batch path.
                    comm.push_update(&update);
                    match update.validate(expected_len) {
                        Err(UpdateRejection::NonFinite) => {
                            push_fault(update.client_id, FaultKind::RejectedNonFinite);
                            return;
                        }
                        Err(UpdateRejection::WrongLength { got, expected }) => {
                            push_fault(
                                update.client_id,
                                FaultKind::RejectedWrongLength { got, expected },
                            );
                            return;
                        }
                        Ok(()) => {}
                    }
                    if update.strip_non_finite_decoder() {
                        push_fault(update.client_id, FaultKind::DecoderStripped);
                    }
                    if survivor_ids.contains(&update.client_id) {
                        push_fault(update.client_id, FaultKind::DuplicateDiscarded);
                        return;
                    }
                    survivor_ids.push(update.client_id);
                    agg.push(&update);
                }
                IncomingUpdate::Sparse(mut update) => {
                    // Same pipeline, sparse flavor: the submission folds as
                    // (idx, val) deltas against `base` without ever being
                    // materialized densely.
                    comm.push_bytes(update.wire_bytes());
                    match update.validate(expected_len) {
                        Err(UpdateRejection::NonFinite) => {
                            push_fault(update.client_id, FaultKind::RejectedNonFinite);
                            return;
                        }
                        Err(UpdateRejection::WrongLength { got, expected }) => {
                            push_fault(
                                update.client_id,
                                FaultKind::RejectedWrongLength { got, expected },
                            );
                            return;
                        }
                        Ok(()) => {}
                    }
                    if update.strip_non_finite_decoder() {
                        push_fault(update.client_id, FaultKind::DecoderStripped);
                    }
                    if survivor_ids.contains(&update.client_id) {
                        push_fault(update.client_id, FaultKind::DuplicateDiscarded);
                        return;
                    }
                    survivor_ids.push(update.client_id);
                    agg.push_sparse(&update, base);
                }
            }
        };
        let tail = self.transport.exchange_round_streamed(&offer, &mut sink);
        fault_events.extend(tail.faults);
        let sessions = tail.sessions;
        let local_training_secs = stage.close();
        // Sanitization ran inline, interleaved with the exchange above; it
        // has no separately measurable span in streaming mode.
        let sanitize_secs = 0.0;
        // The batch sanitizer returns survivors sorted by client id; match.
        survivor_ids.sort_unstable();

        let quorum = self.resilience.effective_quorum();
        let quorum_met = survivor_ids.len() >= quorum;
        let stage = timed_span("round.aggregation");
        let (selected, scores, threshold, strategy_timings) = if quorum_met {
            AGG_PEAK_BYTES.set(agg.peak_bytes() as i64);
            let outcome = agg.finalize().expect("quorum met implies at least one folded update");
            assert_eq!(
                outcome.params.len(),
                self.global.len(),
                "strategy {} streamed wrong-size parameters",
                self.strategy.name()
            );
            // Server learning rate (§V-A): ψ₀ ← (1-η)ψ₀ + η·aggregate.
            self.global = vecops::lerp(&self.global, &outcome.params, self.config.server_lr);
            (outcome.selected, outcome.scores, outcome.threshold, outcome.timings)
        } else {
            // Below quorum: discard the accumulator and carry the model
            // forward (the damped partial step needs survivor vectors and
            // therefore forces the batch path).
            (Vec::new(), Vec::new(), None, StrategyTimings::default())
        };
        let aggregate_total_secs = stage.close();

        RoundBody {
            local_training_secs,
            sanitize_secs,
            sessions,
            comm,
            survivor_ids,
            quorum_met,
            selected,
            scores,
            threshold,
            strategy_timings,
            aggregate_total_secs,
        }
    }

    /// Run all configured rounds; returns the full history and notifies
    /// observers that the run is complete (sinks flush here).
    pub fn run(&mut self) -> Vec<RoundRecord> {
        for _ in 0..self.config.rounds {
            self.run_round();
        }
        // Release the clients (a TCP transport sends Shutdown and drains the
        // orderly Leaves) before the sinks flush.
        self.transport.finish();
        for obs in &mut self.observers {
            obs.on_run_complete();
        }
        self.history.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalTrainConfig;
    use crate::strategy::AggregationOutcome;
    use crate::telemetry::MemoryCollector;
    use fg_data::partition::{dirichlet_partition, partition_datasets};
    use fg_data::synth::generate_dataset;
    use fg_nn::models::ClassifierSpec;

    /// Plain unweighted mean — a stand-in FedAvg for framework tests.
    struct MeanStrategy;

    impl AggregationStrategy for MeanStrategy {
        fn name(&self) -> &'static str {
            "mean"
        }

        fn aggregate(
            &mut self,
            updates: &[ModelUpdate],
            _ctx: &mut AggregationContext<'_>,
        ) -> AggregationOutcome {
            let refs: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            AggregationOutcome::new(
                vecops::mean_vector(&refs),
                updates.iter().map(|u| u.client_id).collect(),
            )
        }
    }

    fn smoke_builder(rounds: usize, seed: u64) -> FederationBuilder {
        let data = generate_dataset(30, seed); // 300 samples
        let (test, train) = data.split_at(60);
        let mut rng = SeededRng::new(seed ^ 1);
        let parts = dirichlet_partition(&train, 8, 10.0, 10, &mut rng);
        let datasets = partition_datasets(&train, &parts);
        let config = FederationConfig {
            n_clients: 8,
            clients_per_round: 4,
            rounds,
            classifier: ClassifierSpec::Mlp { hidden: 24 },
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                prox_mu: 0.0,
            },
            server_lr: 1.0,
            eval_batch: 64,
            seed,
            agg_memory: AggregationMemory::Batch,
        };
        Federation::builder(config).datasets(datasets).test_set(test).strategy(MeanStrategy)
    }

    fn smoke_federation(rounds: usize, seed: u64) -> Federation {
        smoke_builder(rounds, seed).build()
    }

    #[test]
    fn honest_federation_learns() {
        let mut fed = smoke_federation(8, 42);
        let history = fed.run();
        assert_eq!(history.len(), 8);
        let last = history.last().unwrap().accuracy;
        assert!(last > 0.6, "federated training did not learn: {last}");
        // Accuracy should broadly improve over training.
        assert!(last > history[0].accuracy);
    }

    #[test]
    fn rounds_sample_correct_count_without_duplicates() {
        let mut fed = smoke_federation(3, 7);
        let history = fed.run();
        for r in &history {
            assert_eq!(r.sampled.len(), 4);
            let mut s = r.sampled.clone();
            s.dedup();
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|&c| c < 8));
        }
    }

    #[test]
    fn comm_accounting_matches_analytic_count() {
        let mut fed = smoke_federation(1, 9);
        let psi = fed.global_params().len() as u64;
        let history = fed.run();
        let comm = history[0].comm;
        assert_eq!(comm.upload_bytes, psi * 4 * 4); // m = 4 clients
        assert_eq!(comm.download_bytes, psi * 4 * 4); // no decoders
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let h1 = smoke_federation(3, 11).run();
        let h2 = smoke_federation(3, 11).run();
        let a1: Vec<f32> = h1.iter().map(|r| r.accuracy).collect();
        let a2: Vec<f32> = h2.iter().map(|r| r.accuracy).collect();
        assert_eq!(a1, a2);
        assert_ne!(
            a1,
            smoke_federation(3, 12).run().iter().map(|r| r.accuracy).collect::<Vec<_>>()
        );
    }

    #[test]
    fn server_lr_damps_movement() {
        let data = generate_dataset(10, 5);
        let (test, train) = data.split_at(20);
        let mut rng = SeededRng::new(6);
        let parts = dirichlet_partition(&train, 4, 10.0, 10, &mut rng);
        let datasets = partition_datasets(&train, &parts);
        let mut config = FederationConfig {
            n_clients: 4,
            clients_per_round: 2,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 8,
                lr: 0.1,
                momentum: 0.0,
                prox_mu: 0.0,
            },
            server_lr: 1.0,
            eval_batch: 32,
            seed: 3,
            agg_memory: AggregationMemory::Batch,
        };

        let mut full = Federation::builder(config)
            .datasets(datasets.clone())
            .test_set(test.clone())
            .strategy(MeanStrategy)
            .build();
        let start = full.global_params().to_vec();
        full.run();
        let full_move = fg_tensor::vecops::l2_distance(&start, full.global_params());

        config.server_lr = 0.3;
        let mut damped = Federation::builder(config)
            .datasets(datasets)
            .test_set(test)
            .strategy(MeanStrategy)
            .build();
        damped.run();
        let damped_move = fg_tensor::vecops::l2_distance(&start, damped.global_params());

        assert!((damped_move / full_move - 0.3).abs() < 0.02, "{damped_move} vs {full_move}");
    }

    #[test]
    #[should_panic]
    fn wrong_partition_count_rejected() {
        let data = generate_dataset(5, 0);
        let config = FederationConfig {
            n_clients: 4,
            clients_per_round: 2,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig::default(),
            server_lr: 1.0,
            eval_batch: 32,
            seed: 0,
            agg_memory: AggregationMemory::Batch,
        };
        Federation::builder(config)
            .datasets(vec![data.clone()])
            .test_set(data)
            .strategy(MeanStrategy)
            .build();
    }

    #[test]
    #[should_panic]
    fn missing_strategy_rejected() {
        let data = generate_dataset(5, 0);
        let config = FederationConfig {
            n_clients: 1,
            clients_per_round: 1,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig::default(),
            server_lr: 1.0,
            eval_batch: 32,
            seed: 0,
            agg_memory: AggregationMemory::Batch,
        };
        Federation::builder(config).datasets(vec![data.clone()]).test_set(data).build();
    }

    #[test]
    fn faulty_rounds_degrade_gracefully() {
        use crate::fault::{FaultConfig, FaultPlan};
        let collector = MemoryCollector::new();
        let mut fed = smoke_builder(6, 31)
            .faults(FaultPlan::new(FaultConfig::chaotic(), 77))
            .observer(collector.clone())
            .build();
        let history = fed.run();
        assert_eq!(history.len(), 6);
        assert!(fed.global_params().iter().all(|x| x.is_finite()));

        let events = collector.events();
        assert_eq!(events.len(), 6);
        let mut any_fault = false;
        for e in &events {
            any_fault |= !e.faults.is_empty();
            let sampled: HashSet<usize> = e.sampled.iter().copied().collect();
            let survivors: HashSet<usize> = e.survivors.iter().copied().collect();
            // selected ⊆ survivors ⊆ sampled.
            assert!(survivors.iter().all(|c| sampled.contains(c)));
            assert!(e.selected.iter().all(|c| survivors.contains(c)));
            // No dropped-out client ever reaches the survivor roster.
            for f in &e.faults {
                if f.kind == FaultKind::Dropout {
                    assert!(!survivors.contains(&f.client_id));
                }
            }
        }
        assert!(any_fault, "chaotic plan injected nothing over 6 rounds");
    }

    #[test]
    fn quorum_skip_carries_model_forward() {
        use crate::config::ResiliencePolicy;
        use crate::fault::{FaultConfig, FaultPlan};
        // Everyone drops out: no round can meet quorum.
        let plan = FaultPlan::new(FaultConfig { dropout_prob: 1.0, ..FaultConfig::default() }, 3);
        let collector = MemoryCollector::new();
        let mut fed = smoke_builder(2, 13)
            .faults(plan)
            .resilience(ResiliencePolicy::quorum(2))
            .observer(collector.clone())
            .build();
        let start = fed.global_params().to_vec();
        let baseline = fed.evaluate_global();
        let history = fed.run();
        assert_eq!(fed.global_params(), &start[..], "skip round must not move the model");
        for (r, e) in history.iter().zip(collector.events().iter()) {
            assert!(r.selected.is_empty());
            assert!(!e.quorum_met);
            assert!(e.survivors.is_empty());
            assert_eq!(e.faults.len(), 4, "one Dropout event per sampled client");
            assert_eq!(e.comm.upload_bytes, 0, "nothing crossed the wire upstream");
            assert!((r.accuracy - baseline).abs() < 1e-6);
        }
    }

    #[test]
    fn damped_partial_step_moves_below_quorum() {
        use crate::config::ResiliencePolicy;
        // No faults, but a quorum above the round size: every round is below
        // quorum with 4 survivors.
        let policy = ResiliencePolicy { min_quorum: 8, damped_partial_step: true };
        let collector = MemoryCollector::new();
        let mut fed = smoke_builder(1, 17).resilience(policy).observer(collector.clone()).build();
        let start = fed.global_params().to_vec();
        fed.run();
        let moved = fg_tensor::vecops::l2_distance(&start, fed.global_params());
        assert!(moved > 0.0, "damped partial step should still move the model");
        let e = &collector.events()[0];
        assert!(!e.quorum_met);
        // The partial step credits the survivors as selected.
        assert_eq!(e.selected, e.survivors);

        // The same round with pure carry-forward moves not at all, and the
        // full-quorum step moves further than the damped one.
        let mut frozen = smoke_builder(1, 17).resilience(ResiliencePolicy::quorum(8)).build();
        frozen.run();
        assert_eq!(frozen.global_params(), &start[..]);
        let mut full = smoke_federation(1, 17);
        full.run();
        let full_moved = fg_tensor::vecops::l2_distance(&start, full.global_params());
        assert!(moved < full_moved, "damped {moved} vs full {full_moved}");
    }

    #[test]
    fn duplicates_never_double_weight_a_client() {
        use crate::fault::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(FaultConfig { duplicate_prob: 1.0, ..FaultConfig::default() }, 5);
        let collector = MemoryCollector::new();
        let mut fed = smoke_builder(2, 19).faults(plan).observer(collector.clone()).build();
        fed.run();
        for e in &collector.events() {
            // Every client re-sent a stale duplicate; the sanitizer's
            // last-write-wins dedup keeps exactly one submission per id.
            assert_eq!(e.survivors, e.sampled);
            let dups = e.faults.iter().filter(|f| f.kind == FaultKind::DuplicateSubmission).count();
            let discarded =
                e.faults.iter().filter(|f| f.kind == FaultKind::DuplicateDiscarded).count();
            assert_eq!(dups, e.sampled.len());
            assert_eq!(discarded, e.sampled.len());
            assert!(e.quorum_met);
        }
    }

    #[test]
    fn observers_receive_one_event_per_round() {
        let collector = MemoryCollector::new();
        let mut fed = smoke_federation(3, 21);
        fed.add_observer(collector.clone());
        fed.run();
        let events = collector.events();
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.round, i);
            assert_eq!(e.strategy, "mean");
            assert_eq!(e.sampled.len(), 4);
            // MeanStrategy keeps everyone: no exclusions, no threshold.
            assert!(e.excluded.is_empty());
            assert!(e.threshold.is_none());
            assert!(e.stages.local_training_secs > 0.0);
            assert!(e.stages.evaluation_secs > 0.0);
            assert!(e.wall_secs >= e.stages.total() * 0.5);
        }
    }
}
