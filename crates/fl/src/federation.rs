//! The federated round loop (Alg. 1, `Server` function).

use crate::client::{Client, NoAttack, UpdateInterceptor};
use crate::comm::CommStats;
use crate::config::{CvaeTrainConfig, FederationConfig};
use crate::metrics::RoundRecord;
use crate::strategy::{AggregationContext, AggregationStrategy};
use crate::telemetry::{RoundObserver, RoundTelemetry, StageTimings};
use crate::update::ModelUpdate;
use fg_data::Dataset;
use fg_nn::models::Classifier;
use fg_tensor::rng::SeededRng;
use fg_tensor::vecops;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// A complete federated-learning simulation: `N` clients, a server-side test
/// set, an aggregation strategy, and an optional attack interceptor.
///
/// Assembled through [`Federation::builder`]:
///
/// ```ignore
/// let mut fed = Federation::builder(config)
///     .datasets(client_datasets)
///     .test_set(test)
///     .strategy(FedAvgStrategy)
///     .interceptor(attack)            // optional; defaults to NoAttack
///     .cvae(cvae_config)              // required iff the strategy audits decoders
///     .observer(JsonlSink::create("results/telemetry/run.jsonl")?)
///     .build();
/// ```
///
/// Each round (cf. Alg. 1 lines 16-20):
/// 1. uniformly sample `m` of the `N` clients,
/// 2. train the sampled clients locally, in parallel (rayon), from the
///    current global parameters,
/// 3. let the attack interceptor corrupt the malicious clients' updates,
/// 4. hand all updates to the aggregation strategy,
/// 5. move the global model by the server learning rate toward the
///    aggregate, and
/// 6. evaluate on the held-out test set, record metrics, and emit one
///    [`RoundTelemetry`] event to every registered observer.
pub struct Federation {
    config: FederationConfig,
    clients: Vec<Mutex<Client>>,
    test_set: Dataset,
    strategy: Box<dyn AggregationStrategy>,
    interceptor: Arc<dyn UpdateInterceptor>,
    global: Vec<f32>,
    history: Vec<RoundRecord>,
    rng: SeededRng,
    observers: Vec<Box<dyn RoundObserver>>,
}

/// Step-by-step assembly of a [`Federation`]; validates at [`build`].
///
/// [`build`]: FederationBuilder::build
pub struct FederationBuilder {
    config: FederationConfig,
    datasets: Option<Vec<Dataset>>,
    test_set: Option<Dataset>,
    strategy: Option<Box<dyn AggregationStrategy>>,
    interceptor: Arc<dyn UpdateInterceptor>,
    cvae: Option<CvaeTrainConfig>,
    observers: Vec<Box<dyn RoundObserver>>,
}

impl FederationBuilder {
    /// The per-client data partitions; must contain exactly
    /// `config.n_clients` datasets (checked at build).
    pub fn datasets(mut self, client_datasets: Vec<Dataset>) -> Self {
        self.datasets = Some(client_datasets);
        self
    }

    /// The server-side held-out test set.
    pub fn test_set(mut self, test_set: Dataset) -> Self {
        self.test_set = Some(test_set);
        self
    }

    /// The aggregation strategy. Accepts a plain strategy value or an
    /// already-boxed `Box<dyn AggregationStrategy>`.
    pub fn strategy(mut self, strategy: impl AggregationStrategy + 'static) -> Self {
        self.strategy = Some(Box::new(strategy));
        self
    }

    /// The attack interceptor. Defaults to [`NoAttack`] when omitted.
    pub fn interceptor(mut self, interceptor: Arc<dyn UpdateInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// CVAE training configuration, installed on every client iff the
    /// strategy consumes decoders. Accepts a bare config or an `Option`.
    pub fn cvae(mut self, cvae: impl Into<Option<CvaeTrainConfig>>) -> Self {
        self.cvae = cvae.into();
        self
    }

    /// Register a telemetry observer; may be called multiple times.
    pub fn observer(mut self, observer: impl RoundObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Validate the assembled configuration and construct the federation.
    ///
    /// Panics when a required component is missing, the partition count does
    /// not match `config.n_clients`, or a decoder-auditing strategy has no
    /// CVAE configuration.
    pub fn build(self) -> Federation {
        let config = self.config;
        config.validate();
        let client_datasets = self.datasets.expect("FederationBuilder: datasets(..) not set");
        let test_set = self.test_set.expect("FederationBuilder: test_set(..) not set");
        let strategy = self.strategy.expect("FederationBuilder: strategy(..) not set");
        assert_eq!(
            client_datasets.len(),
            config.n_clients,
            "expected {} client partitions, got {}",
            config.n_clients,
            client_datasets.len()
        );
        let needs_cvae = strategy.uses_decoders();
        if needs_cvae {
            assert!(self.cvae.is_some(), "strategy {} needs a CVAE config", strategy.name());
        }
        let master = SeededRng::new(config.seed);
        let clients = client_datasets
            .into_iter()
            .enumerate()
            .map(|(id, data)| {
                Mutex::new(Client::new(
                    id,
                    data,
                    config.classifier,
                    config.local,
                    if needs_cvae { self.cvae } else { None },
                    master.fork(id as u64).seed(),
                ))
            })
            .collect();

        let mut init_rng = master.fork(u64::MAX);
        let global = Classifier::new(&config.classifier, &mut init_rng).get_params();

        Federation {
            config,
            clients,
            test_set,
            strategy,
            interceptor: self.interceptor,
            global,
            history: Vec::new(),
            rng: master.fork(u64::MAX - 1),
            observers: self.observers,
        }
    }
}

impl Federation {
    /// Start assembling a federation for `config`.
    pub fn builder(config: FederationConfig) -> FederationBuilder {
        FederationBuilder {
            config,
            datasets: None,
            test_set: None,
            strategy: None,
            interceptor: Arc::new(NoAttack),
            cvae: None,
            observers: Vec::new(),
        }
    }

    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The current global parameter vector.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// Per-round records so far.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Mutable access to a client (e.g. to install a poisoned dataset).
    pub fn client_mut(&mut self, id: usize) -> &mut Client {
        self.clients[id].get_mut()
    }

    /// Register a telemetry observer after construction.
    pub fn add_observer(&mut self, observer: impl RoundObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Evaluate the current global model on the test set.
    pub fn evaluate_global(&self) -> f32 {
        let mut clf = Classifier::from_params(&self.config.classifier, &self.global);
        let x = self.test_set.to_tensor();
        let y = self.test_set.labels_usize();
        clf.evaluate(&x, &y, self.config.eval_batch)
    }

    /// Run one round; returns the new record and emits one
    /// [`RoundTelemetry`] event to every observer.
    pub fn run_round(&mut self) -> RoundRecord {
        let round = self.history.len();
        let start = Instant::now();

        // (1) Sample m participants uniformly (Alg. 1 line 17).
        let stage = Instant::now();
        let mut sampled =
            self.rng.sample_distinct(self.config.n_clients, self.config.clients_per_round);
        sampled.sort_unstable();
        let sampling_secs = stage.elapsed().as_secs_f64();

        // (2) Parallel local training; (3) attack interception.
        let stage = Instant::now();
        let global = &self.global;
        let interceptor = &self.interceptor;
        let clients = &self.clients;
        let mut updates: Vec<ModelUpdate> = sampled
            .par_iter()
            .map(|&id| {
                let mut client = clients[id].lock();
                let mut update = client.train_round(global, round);
                interceptor.intercept(&mut update, round);
                update
            })
            .collect();
        updates.sort_by_key(|u| u.client_id);
        let local_training_secs = stage.elapsed().as_secs_f64();

        // (4) Aggregate. The strategy reports its own synthesis/audit time;
        // the remainder of the aggregate() call is inner aggregation.
        let stage = Instant::now();
        let mut ctx = AggregationContext {
            round,
            global: &self.global,
            rng: self.rng.fork(0xA66 ^ round as u64),
        };
        let outcome = self.strategy.aggregate(&updates, &mut ctx);
        let aggregate_total_secs = stage.elapsed().as_secs_f64();
        assert_eq!(
            outcome.params.len(),
            self.global.len(),
            "strategy {} returned wrong-size parameters",
            self.strategy.name()
        );

        // (5) Server learning rate (§V-A): ψ₀ ← (1-η)ψ₀ + η·aggregate.
        self.global = vecops::lerp(&self.global, &outcome.params, self.config.server_lr);

        // (6) Evaluate, record, and emit telemetry.
        let stage = Instant::now();
        let accuracy = self.evaluate_global();
        let evaluation_secs = stage.elapsed().as_secs_f64();

        let malicious: HashSet<usize> = self.interceptor.malicious_clients().into_iter().collect();
        let malicious_sampled: Vec<usize> =
            sampled.iter().copied().filter(|c| malicious.contains(c)).collect();
        let comm = CommStats::for_round(self.global.len(), sampled.len(), &updates);

        let selected_set: HashSet<usize> = outcome.selected.iter().copied().collect();
        let excluded: Vec<usize> =
            sampled.iter().copied().filter(|c| !selected_set.contains(c)).collect();

        let stages = StageTimings {
            sampling_secs,
            local_training_secs,
            synthesis_secs: outcome.timings.synthesis_secs,
            audit_secs: outcome.timings.audit_secs,
            aggregation_secs: (aggregate_total_secs
                - outcome.timings.synthesis_secs
                - outcome.timings.audit_secs)
                .max(0.0),
            evaluation_secs,
        };

        let record = RoundRecord {
            round,
            accuracy,
            sampled,
            selected: outcome.selected,
            malicious_sampled,
            wall_secs: start.elapsed().as_secs_f64(),
            comm,
        };

        let event = RoundTelemetry {
            round,
            strategy: self.strategy.name().to_string(),
            accuracy,
            stages,
            wall_secs: record.wall_secs,
            scores: outcome.scores,
            threshold: outcome.threshold,
            sampled: record.sampled.clone(),
            selected: record.selected.clone(),
            excluded,
            malicious_sampled: record.malicious_sampled.clone(),
            comm,
        };
        for obs in &mut self.observers {
            obs.on_round(&event);
        }

        self.history.push(record.clone());
        record
    }

    /// Run all configured rounds; returns the full history and notifies
    /// observers that the run is complete (sinks flush here).
    pub fn run(&mut self) -> Vec<RoundRecord> {
        for _ in 0..self.config.rounds {
            self.run_round();
        }
        for obs in &mut self.observers {
            obs.on_run_complete();
        }
        self.history.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalTrainConfig;
    use crate::strategy::AggregationOutcome;
    use crate::telemetry::MemoryCollector;
    use fg_data::partition::{dirichlet_partition, partition_datasets};
    use fg_data::synth::generate_dataset;
    use fg_nn::models::ClassifierSpec;

    /// Plain unweighted mean — a stand-in FedAvg for framework tests.
    struct MeanStrategy;

    impl AggregationStrategy for MeanStrategy {
        fn name(&self) -> &'static str {
            "mean"
        }

        fn aggregate(
            &mut self,
            updates: &[ModelUpdate],
            _ctx: &mut AggregationContext<'_>,
        ) -> AggregationOutcome {
            let refs: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            AggregationOutcome::new(
                vecops::mean_vector(&refs),
                updates.iter().map(|u| u.client_id).collect(),
            )
        }
    }

    fn smoke_federation(rounds: usize, seed: u64) -> Federation {
        let data = generate_dataset(30, seed); // 300 samples
        let (test, train) = data.split_at(60);
        let mut rng = SeededRng::new(seed ^ 1);
        let parts = dirichlet_partition(&train, 8, 10.0, 10, &mut rng);
        let datasets = partition_datasets(&train, &parts);
        let config = FederationConfig {
            n_clients: 8,
            clients_per_round: 4,
            rounds,
            classifier: ClassifierSpec::Mlp { hidden: 24 },
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                prox_mu: 0.0,
            },
            server_lr: 1.0,
            eval_batch: 64,
            seed,
        };
        Federation::builder(config).datasets(datasets).test_set(test).strategy(MeanStrategy).build()
    }

    #[test]
    fn honest_federation_learns() {
        let mut fed = smoke_federation(8, 42);
        let history = fed.run();
        assert_eq!(history.len(), 8);
        let last = history.last().unwrap().accuracy;
        assert!(last > 0.6, "federated training did not learn: {last}");
        // Accuracy should broadly improve over training.
        assert!(last > history[0].accuracy);
    }

    #[test]
    fn rounds_sample_correct_count_without_duplicates() {
        let mut fed = smoke_federation(3, 7);
        let history = fed.run();
        for r in &history {
            assert_eq!(r.sampled.len(), 4);
            let mut s = r.sampled.clone();
            s.dedup();
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|&c| c < 8));
        }
    }

    #[test]
    fn comm_accounting_matches_analytic_count() {
        let mut fed = smoke_federation(1, 9);
        let psi = fed.global_params().len() as u64;
        let history = fed.run();
        let comm = history[0].comm;
        assert_eq!(comm.upload_bytes, psi * 4 * 4); // m = 4 clients
        assert_eq!(comm.download_bytes, psi * 4 * 4); // no decoders
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let h1 = smoke_federation(3, 11).run();
        let h2 = smoke_federation(3, 11).run();
        let a1: Vec<f32> = h1.iter().map(|r| r.accuracy).collect();
        let a2: Vec<f32> = h2.iter().map(|r| r.accuracy).collect();
        assert_eq!(a1, a2);
        assert_ne!(
            a1,
            smoke_federation(3, 12).run().iter().map(|r| r.accuracy).collect::<Vec<_>>()
        );
    }

    #[test]
    fn server_lr_damps_movement() {
        let data = generate_dataset(10, 5);
        let (test, train) = data.split_at(20);
        let mut rng = SeededRng::new(6);
        let parts = dirichlet_partition(&train, 4, 10.0, 10, &mut rng);
        let datasets = partition_datasets(&train, &parts);
        let mut config = FederationConfig {
            n_clients: 4,
            clients_per_round: 2,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 8,
                lr: 0.1,
                momentum: 0.0,
                prox_mu: 0.0,
            },
            server_lr: 1.0,
            eval_batch: 32,
            seed: 3,
        };

        let mut full = Federation::builder(config)
            .datasets(datasets.clone())
            .test_set(test.clone())
            .strategy(MeanStrategy)
            .build();
        let start = full.global_params().to_vec();
        full.run();
        let full_move = fg_tensor::vecops::l2_distance(&start, full.global_params());

        config.server_lr = 0.3;
        let mut damped = Federation::builder(config)
            .datasets(datasets)
            .test_set(test)
            .strategy(MeanStrategy)
            .build();
        damped.run();
        let damped_move = fg_tensor::vecops::l2_distance(&start, damped.global_params());

        assert!((damped_move / full_move - 0.3).abs() < 0.02, "{damped_move} vs {full_move}");
    }

    #[test]
    #[should_panic]
    fn wrong_partition_count_rejected() {
        let data = generate_dataset(5, 0);
        let config = FederationConfig {
            n_clients: 4,
            clients_per_round: 2,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig::default(),
            server_lr: 1.0,
            eval_batch: 32,
            seed: 0,
        };
        Federation::builder(config)
            .datasets(vec![data.clone()])
            .test_set(data)
            .strategy(MeanStrategy)
            .build();
    }

    #[test]
    #[should_panic]
    fn missing_strategy_rejected() {
        let data = generate_dataset(5, 0);
        let config = FederationConfig {
            n_clients: 1,
            clients_per_round: 1,
            rounds: 1,
            classifier: ClassifierSpec::Mlp { hidden: 8 },
            local: LocalTrainConfig::default(),
            server_lr: 1.0,
            eval_batch: 32,
            seed: 0,
        };
        Federation::builder(config).datasets(vec![data.clone()]).test_set(data).build();
    }

    #[test]
    fn observers_receive_one_event_per_round() {
        let collector = MemoryCollector::new();
        let mut fed = smoke_federation(3, 21);
        fed.add_observer(collector.clone());
        fed.run();
        let events = collector.events();
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.round, i);
            assert_eq!(e.strategy, "mean");
            assert_eq!(e.sampled.len(), 4);
            // MeanStrategy keeps everyone: no exclusions, no threshold.
            assert!(e.excluded.is_empty());
            assert!(e.threshold.is_none());
            assert!(e.stages.local_training_secs > 0.0);
            assert!(e.stages.evaluation_secs > 0.0);
            assert!(e.wall_secs >= e.stages.total() * 0.5);
        }
    }
}
