//! Byte-accurate communication accounting.
//!
//! Directions are **client-centric**, matching the wire protocol: clients
//! *upload* their updates `ψ_j` (plus the CVAE decoder `θ_j` under FedGuard)
//! to the server, and *download* the global model `ψ₀` the server
//! broadcasts. `upload_bytes` therefore realizes exactly the bytes
//! `wire.rs::encode_upload` frames carry (`fl.net.model_bytes_rx` on the
//! server), and `download_bytes` the RoundStart broadcasts
//! (`fl.net.model_bytes_tx`). Earlier revisions booked the two directions
//! the other way around — server-centric — which inverted them relative to
//! the wire accounting; the JSON field names keep the historic (swapped)
//! spelling via `#[serde(rename)]` so v2 telemetry trails stay compatible
//! both ways (see the field docs).
//!
//! The paper's Table V reports the same quantities as "server downloads"
//! (our `upload_bytes`) and "server uploads" (our `download_bytes`). We
//! account each direction from parameter counts at 4 bytes per f32, which
//! is exactly how the paper's MB figures decompose (1,662,752 × 4 B ≈ 6.65
//! MB per classifier, 330,794 × 4 B ≈ 1.32 MB per decoder).

use crate::update::ModelUpdate;
use fg_obs::metrics::Counter;
use serde::{Deserialize, Serialize};

/// Cumulative wire traffic across all rounds (the per-round figures live in
/// each `RoundTelemetry::comm`; these feed the process-wide snapshot).
static UPLOAD_BYTES: Counter = Counter::new("fl.comm.upload_bytes");
static DOWNLOAD_BYTES: Counter = Counter::new("fl.comm.download_bytes");

/// Bytes moved through the server in one round (or accumulated over many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Clients → server: the round's submitted updates, incl. decoders when
    /// present. Serialized as `"download_bytes"` — the key this quantity
    /// has always carried in v2 telemetry trails, from before the
    /// direction-inversion fix — so old trails keep parsing with correct
    /// semantics and new trails look unchanged on disk.
    #[serde(rename = "download_bytes")]
    pub upload_bytes: u64,
    /// Server → clients: the global-model broadcast (`global_params × 4 ×
    /// m`). Serialized as `"upload_bytes"` for v2-trail compatibility (see
    /// `upload_bytes`).
    #[serde(rename = "upload_bytes")]
    pub download_bytes: u64,
}

impl CommStats {
    /// Account one round: the server broadcast `global_params` floats to
    /// each of `m` clients and received the given uploads.
    pub fn for_round(global_params: usize, m: usize, updates: &[ModelUpdate]) -> CommStats {
        let mut stats = CommStats::for_broadcast(global_params, m);
        for u in updates {
            stats.push_update(u);
        }
        stats
    }

    /// Account only the server → clients broadcast of a round — the
    /// starting point the streaming aggregation path then extends one
    /// [`push_update`](CommStats::push_update) at a time, so no update list
    /// ever needs to be materialized for accounting.
    pub fn for_broadcast(global_params: usize, m: usize) -> CommStats {
        let stats =
            CommStats { upload_bytes: 0, download_bytes: (global_params as u64 * 4) * m as u64 };
        DOWNLOAD_BYTES.add(stats.download_bytes);
        stats
    }

    /// Account one client upload as it arrives off the transport.
    pub fn push_update(&mut self, update: &ModelUpdate) {
        self.push_bytes(update.wire_bytes());
    }

    /// Account one client upload by its logical model byte size — the form
    /// the sparse streamed path uses, which never materializes a
    /// [`ModelUpdate`]. Logical bytes (4 per f32 parameter) keep this
    /// ledger mode-invariant under wire compression; actual on-wire sizes
    /// live in the `fl.comm.wire_bytes` counter and
    /// [`WireStats`](crate::net::WireStats).
    pub fn push_bytes(&mut self, bytes: u64) {
        self.upload_bytes += bytes;
        UPLOAD_BYTES.add(bytes);
    }

    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CommStats) {
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
    }

    /// Megabytes (10⁶ bytes, as the paper reports).
    pub fn upload_mb(&self) -> f64 {
        self.upload_bytes as f64 / 1e6
    }

    pub fn download_mb(&self) -> f64 {
        self.download_bytes as f64 / 1e6
    }

    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(params: usize, decoder: Option<usize>) -> ModelUpdate {
        ModelUpdate {
            client_id: 0,
            params: vec![0.0; params],
            num_samples: 1,
            decoder: decoder.map(|d| vec![0.0; d]),
            class_coverage: None,
        }
    }

    #[test]
    fn round_accounting() {
        let updates = vec![update(100, None), update(100, None)];
        let s = CommStats::for_round(100, 2, &updates);
        assert_eq!(s.upload_bytes, 800);
        assert_eq!(s.download_bytes, 800);
        assert_eq!(s.total(), 1600);
    }

    #[test]
    fn decoders_increase_uploads_only() {
        // Decoders ride on the client → server update frames; the broadcast
        // is unaffected. (Regression: the pre-fix accounting booked decoder
        // bytes on the broadcast side.)
        let updates = vec![update(100, Some(20)); 2];
        let s = CommStats::for_round(100, 2, &updates);
        assert_eq!(s.upload_bytes, 960);
        assert_eq!(s.download_bytes, 800);
    }

    #[test]
    fn incremental_accounting_matches_for_round() {
        let updates = vec![update(50, Some(10)), update(50, None), update(50, Some(3))];
        let batch = CommStats::for_round(50, 4, &updates);
        let mut inc = CommStats::for_broadcast(50, 4);
        for u in &updates {
            inc.push_update(u);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn serde_keys_keep_the_historic_v2_spelling() {
        // Crosswise rename: the client-upload bytes keep living under the
        // "download_bytes" JSON key (and vice versa), so a v2 trail written
        // before the direction fix round-trips with correct semantics.
        let s = CommStats { upload_bytes: 960, download_bytes: 800 };
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"download_bytes\": 960") || json.contains("\"download_bytes\":960")
        );
        assert!(json.contains("\"upload_bytes\": 800") || json.contains("\"upload_bytes\":800"));
        let back: CommStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn paper_scale_decoder_overhead_is_twenty_percent() {
        // Table V: FedGuard's per-round client uploads are ~20% above
        // FedAvg's. ψ = 1,662,752 weights (paper count), θ = 330,794;
        // m = 50.
        let psi = 1_662_752usize;
        let theta = 330_794usize;
        let fedavg: Vec<ModelUpdate> = (0..50).map(|_| update(psi, None)).collect();
        let fedguard: Vec<ModelUpdate> = (0..50).map(|_| update(psi, Some(theta))).collect();
        let base = CommStats::for_round(psi, 50, &fedavg);
        let ours = CommStats::for_round(psi, 50, &fedguard);
        let overhead = ours.upload_bytes as f64 / base.upload_bytes as f64 - 1.0;
        assert!((overhead - 0.199).abs() < 0.01, "upload overhead {overhead}");
        let total_overhead = ours.total() as f64 / base.total() as f64 - 1.0;
        assert!((total_overhead - 0.0995).abs() < 0.005, "total overhead {total_overhead}");
    }

    #[test]
    fn accumulation() {
        let mut acc = CommStats::default();
        acc.add(&CommStats { upload_bytes: 10, download_bytes: 20 });
        acc.add(&CommStats { upload_bytes: 1, download_bytes: 2 });
        assert_eq!(acc, CommStats { upload_bytes: 11, download_bytes: 22 });
    }
}
