//! Byte-accurate communication accounting.
//!
//! The paper's Table V reports "server uploads" (the server distributing the
//! global model `ψ₀` to the `m` sampled clients) and "server downloads" (the
//! server receiving each client's `ψ_j`, plus the CVAE decoder `θ_j` under
//! FedGuard). We account each direction from parameter counts at 4 bytes per
//! f32, which is exactly how the paper's MB figures decompose
//! (1,662,752 × 4 B ≈ 6.65 MB per classifier, 330,794 × 4 B ≈ 1.32 MB per
//! decoder).

use crate::update::ModelUpdate;
use fg_obs::metrics::Counter;
use serde::{Deserialize, Serialize};

/// Cumulative wire traffic across all rounds (the per-round figures live in
/// each `RoundTelemetry::comm`; these feed the process-wide snapshot).
static UPLOAD_BYTES: Counter = Counter::new("fl.comm.upload_bytes");
static DOWNLOAD_BYTES: Counter = Counter::new("fl.comm.download_bytes");

/// Bytes moved through the server in one round (or accumulated over many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Server → clients (global model distribution).
    pub upload_bytes: u64,
    /// Clients → server (updates, incl. decoders when present).
    pub download_bytes: u64,
}

impl CommStats {
    /// Account one round: the server sent `global_params` floats to each of
    /// `m` clients and received the given updates.
    pub fn for_round(global_params: usize, m: usize, updates: &[ModelUpdate]) -> CommStats {
        let stats = CommStats {
            upload_bytes: (global_params as u64 * 4) * m as u64,
            download_bytes: updates.iter().map(ModelUpdate::wire_bytes).sum(),
        };
        UPLOAD_BYTES.add(stats.upload_bytes);
        DOWNLOAD_BYTES.add(stats.download_bytes);
        stats
    }

    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.upload_bytes + self.download_bytes
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CommStats) {
        self.upload_bytes += other.upload_bytes;
        self.download_bytes += other.download_bytes;
    }

    /// Megabytes (10⁶ bytes, as the paper reports).
    pub fn upload_mb(&self) -> f64 {
        self.upload_bytes as f64 / 1e6
    }

    pub fn download_mb(&self) -> f64 {
        self.download_bytes as f64 / 1e6
    }

    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(params: usize, decoder: Option<usize>) -> ModelUpdate {
        ModelUpdate {
            client_id: 0,
            params: vec![0.0; params],
            num_samples: 1,
            decoder: decoder.map(|d| vec![0.0; d]),
            class_coverage: None,
        }
    }

    #[test]
    fn round_accounting() {
        let updates = vec![update(100, None), update(100, None)];
        let s = CommStats::for_round(100, 2, &updates);
        assert_eq!(s.upload_bytes, 800);
        assert_eq!(s.download_bytes, 800);
        assert_eq!(s.total(), 1600);
    }

    #[test]
    fn decoders_increase_downloads_only() {
        let updates = vec![update(100, Some(20)); 2];
        let s = CommStats::for_round(100, 2, &updates);
        assert_eq!(s.upload_bytes, 800);
        assert_eq!(s.download_bytes, 960);
    }

    #[test]
    fn paper_scale_decoder_overhead_is_twenty_percent() {
        // Table V: FedGuard's per-round downloads are ~20% above FedAvg's.
        // ψ = 1,662,752 weights (paper count), θ = 330,794; m = 50.
        let psi = 1_662_752usize;
        let theta = 330_794usize;
        let fedavg: Vec<ModelUpdate> = (0..50).map(|_| update(psi, None)).collect();
        let fedguard: Vec<ModelUpdate> = (0..50).map(|_| update(psi, Some(theta))).collect();
        let base = CommStats::for_round(psi, 50, &fedavg);
        let ours = CommStats::for_round(psi, 50, &fedguard);
        let overhead = ours.download_bytes as f64 / base.download_bytes as f64 - 1.0;
        assert!((overhead - 0.199).abs() < 0.01, "download overhead {overhead}");
        let total_overhead = ours.total() as f64 / base.total() as f64 - 1.0;
        assert!((total_overhead - 0.0995).abs() < 0.005, "total overhead {total_overhead}");
    }

    #[test]
    fn accumulation() {
        let mut acc = CommStats::default();
        acc.add(&CommStats { upload_bytes: 10, download_bytes: 20 });
        acc.add(&CommStats { upload_bytes: 1, download_bytes: 2 });
        assert_eq!(acc, CommStats { upload_bytes: 11, download_bytes: 22 });
    }
}
