//! Fault injection and the server-side submission sanitizer.
//!
//! Real federations are messy: clients drop out mid-round, straggle past the
//! server's deadline, ship NaN/Inf-corrupted or truncated parameter vectors,
//! and re-send duplicate (often stale) submissions. The paper's evaluation —
//! like most robust-aggregation evaluations — assumes none of that happens.
//! This module gives the round loop a failure model:
//!
//! * [`FaultPlan`] — a **seeded, deterministic** per-(round, client) schedule
//!   of injected faults. The draw for `(round, client)` depends only on the
//!   plan seed, never on execution order, so a replay with the same seed
//!   reproduces the exact same fault sequence (the chaos suite asserts
//!   bit-identical round records).
//! * [`sanitize_round`] — the server-side guard applied to every round's
//!   submissions, fault plan or not: non-finite and wrong-length parameter
//!   vectors are rejected before they can reach an aggregation strategy,
//!   non-finite decoders are stripped, and duplicate submissions are
//!   deduplicated by client id (**last write wins**, so a re-sent update can
//!   never double-weight FedAvg).
//!
//! Every incident — injected or observed — is recorded as a [`FaultEvent`]
//! and lands in the round's [`RoundTelemetry`](crate::telemetry::RoundTelemetry).

use crate::update::{ModelUpdate, UpdateRejection};
use fg_tensor::rng::{derive_seed, SeededRng};
use serde::{Deserialize, Serialize};

/// Per-(round, client) fault probabilities and the server's round deadline.
///
/// All probabilities default to zero (an ideal network); a default-constructed
/// config injects nothing.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a sampled client never responds (no submission at all).
    pub dropout_prob: f64,
    /// Probability a client's submission is delayed (a straggler).
    pub straggler_prob: f64,
    /// Maximum simulated straggler delay; actual delay ~ U(0, max).
    pub straggler_max_delay_secs: f64,
    /// Server-side round deadline: straggler submissions simulated to arrive
    /// after this many seconds are discarded as timed out.
    pub round_deadline_secs: f64,
    /// Probability a submission's parameters are corrupted to NaN/Inf.
    pub corrupt_prob: f64,
    /// Probability a submission's parameter vector arrives truncated.
    pub truncate_prob: f64,
    /// Probability a client re-sends a stale duplicate of its submission
    /// (parameters frozen at the round-start global model).
    pub duplicate_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            dropout_prob: 0.0,
            straggler_prob: 0.0,
            straggler_max_delay_secs: 1.0,
            round_deadline_secs: 0.5,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// A fault-heavy mix used by the chaos suite and the faults ablation:
    /// 30% dropout, 10% corruption, plus stragglers, truncation and
    /// duplicates at lower rates.
    pub fn chaotic() -> Self {
        FaultConfig {
            dropout_prob: 0.3,
            straggler_prob: 0.2,
            straggler_max_delay_secs: 1.0,
            round_deadline_secs: 0.5,
            corrupt_prob: 0.1,
            truncate_prob: 0.05,
            duplicate_prob: 0.1,
        }
    }

    /// True when every fault probability is zero (injection is a no-op).
    pub fn is_quiet(&self) -> bool {
        self.dropout_prob == 0.0
            && self.straggler_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.truncate_prob == 0.0
            && self.duplicate_prob == 0.0
    }
}

/// How an injected corruption mangles the parameter vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionMode {
    Nan,
    Inf,
}

/// The faults drawn for one (round, client) submission.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SubmissionFaults {
    /// Client drops out: trains nothing, sends nothing.
    pub dropout: bool,
    /// Simulated arrival delay in seconds, when the client straggles.
    pub straggler_delay_secs: Option<f64>,
    /// Parameters corrupted to NaN/Inf before arrival.
    pub corrupt: Option<CorruptionMode>,
    /// Parameter vector truncated to this fraction of its length.
    pub truncate_fraction: Option<f64>,
    /// Client re-sends a stale duplicate after its real submission.
    pub duplicate: bool,
}

impl SubmissionFaults {
    /// True when no fault at all was drawn for this submission.
    pub fn is_clean(&self) -> bool {
        *self == SubmissionFaults::default()
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// Draws are a pure function of `(seed, round, client_id)`: parallel
/// execution, retries, and replays all see the same schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
}

impl FaultPlan {
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan { config, seed }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw the faults for `client_id`'s submission in `round`.
    ///
    /// Each fault type consumes a fixed number of draws from a dedicated
    /// per-(round, client) stream, so the decisions are independent of one
    /// another and of any other submission.
    pub fn draw(&self, round: usize, client_id: usize) -> SubmissionFaults {
        let stream = (round as u64) << 32 ^ client_id as u64;
        let mut rng = SeededRng::new(derive_seed(self.seed, stream));
        // Fixed draw order; every branch consumes its draws unconditionally
        // so one knob never shifts another's stream.
        let u_drop = rng.next_f32() as f64;
        let u_straggle = rng.next_f32() as f64;
        let delay = rng.next_f32() as f64 * self.config.straggler_max_delay_secs;
        let u_corrupt = rng.next_f32() as f64;
        let corrupt_mode =
            if rng.next_f32() < 0.5 { CorruptionMode::Nan } else { CorruptionMode::Inf };
        let u_trunc = rng.next_f32() as f64;
        let trunc_frac = 0.1 + 0.8 * rng.next_f32() as f64;
        let u_dup = rng.next_f32() as f64;

        SubmissionFaults {
            dropout: u_drop < self.config.dropout_prob,
            straggler_delay_secs: (u_straggle < self.config.straggler_prob).then_some(delay),
            corrupt: (u_corrupt < self.config.corrupt_prob).then_some(corrupt_mode),
            truncate_fraction: (u_trunc < self.config.truncate_prob).then_some(trunc_frac),
            duplicate: u_dup < self.config.duplicate_prob,
        }
    }

    /// Corrupt `update`'s parameters in place per `mode`: a deterministic
    /// ~1% stride of entries (always including the first) is poisoned.
    pub fn corrupt_params(update: &mut ModelUpdate, mode: CorruptionMode) {
        let poison = match mode {
            CorruptionMode::Nan => f32::NAN,
            CorruptionMode::Inf => f32::INFINITY,
        };
        let stride = (update.params.len() / 100).max(1);
        let mut i = 0;
        while i < update.params.len() {
            update.params[i] = poison;
            i += stride;
        }
    }
}

/// One fault incident in one round — either injected by the [`FaultPlan`]
/// (ground truth of what the chaos layer did) or observed by the server's
/// sanitizer (how the round loop degraded). Recorded in
/// [`RoundTelemetry::faults`](crate::telemetry::RoundTelemetry::faults).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The client whose submission the incident concerns.
    pub client_id: usize,
    pub kind: FaultKind,
}

impl FaultEvent {
    pub fn new(client_id: usize, kind: FaultKind) -> Self {
        FaultEvent { client_id, kind }
    }
}

/// What happened. `Dropout`/`Straggler*`/`Corrupted`/`Truncated`/
/// `DuplicateSubmission` are injection-side ground truth; `Rejected*`,
/// `DuplicateDiscarded` and `DecoderStripped` are the server sanitizer's
/// observed actions (they fire for organically malformed submissions too,
/// e.g. an attack that NaN-poisons an update).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Client never responded; no submission this round.
    Dropout,
    /// Submission simulated to arrive after the round deadline; discarded.
    StragglerTimeout { delay_secs: f64 },
    /// Submission was slow but within the deadline; kept.
    StragglerLate { delay_secs: f64 },
    /// Injected NaN/Inf corruption of the parameter vector.
    Corrupted { mode: CorruptionMode },
    /// Injected truncation of the parameter vector.
    Truncated { kept: usize },
    /// Injected stale duplicate submission (arrives after the original).
    DuplicateSubmission,
    /// Sanitizer rejected a submission with non-finite parameters.
    RejectedNonFinite,
    /// Sanitizer rejected a submission whose parameter vector has the wrong
    /// length.
    RejectedWrongLength { got: usize, expected: usize },
    /// Sanitizer discarded an earlier copy of a duplicated client id
    /// (last write wins).
    DuplicateDiscarded,
    /// Sanitizer stripped a non-finite CVAE decoder but kept the update.
    DecoderStripped,
    /// A networked client's frame failed to decode (bad magic, unknown kind,
    /// truncated or structurally invalid payload); the submission is lost.
    FrameMalformed { detail: String },
    /// A networked client declared a frame larger than the transport's
    /// configured cap; rejected before allocation, the submission is lost.
    FrameOversized { declared: u64, cap: u64 },
}

impl FaultKind {
    /// True for incidents that remove a submission from the round (the
    /// client cannot appear in the survivor roster afterwards... unless a
    /// later duplicate of the same client survives).
    pub fn discards_submission(&self) -> bool {
        matches!(
            self,
            FaultKind::Dropout
                | FaultKind::StragglerTimeout { .. }
                | FaultKind::RejectedNonFinite
                | FaultKind::RejectedWrongLength { .. }
                | FaultKind::DuplicateDiscarded
                | FaultKind::FrameMalformed { .. }
                | FaultKind::FrameOversized { .. }
        )
    }
}

/// Server-side sanitization of one round's arrived submissions.
///
/// In arrival order: validates every update against the expected parameter
/// length and finiteness (rejects emit [`FaultKind::RejectedNonFinite`] /
/// [`FaultKind::RejectedWrongLength`]), strips non-finite decoders
/// ([`FaultKind::DecoderStripped`]), then deduplicates by client id keeping
/// the **last** valid arrival ([`FaultKind::DuplicateDiscarded`] for each
/// displaced copy). Survivors are returned sorted by client id.
pub fn sanitize_round(
    arrived: Vec<ModelUpdate>,
    expected_len: usize,
    events: &mut Vec<FaultEvent>,
) -> Vec<ModelUpdate> {
    let mut survivors: Vec<ModelUpdate> = Vec::with_capacity(arrived.len());
    for mut update in arrived {
        match update.validate(expected_len) {
            Err(UpdateRejection::NonFinite) => {
                events.push(FaultEvent::new(update.client_id, FaultKind::RejectedNonFinite));
                continue;
            }
            Err(UpdateRejection::WrongLength { got, expected }) => {
                events.push(FaultEvent::new(
                    update.client_id,
                    FaultKind::RejectedWrongLength { got, expected },
                ));
                continue;
            }
            Ok(()) => {}
        }
        if update.strip_non_finite_decoder() {
            events.push(FaultEvent::new(update.client_id, FaultKind::DecoderStripped));
        }
        // Last write wins: a later arrival for the same client displaces the
        // earlier one, so no client id is ever aggregated twice.
        if let Some(prev) = survivors.iter().position(|u| u.client_id == update.client_id) {
            events.push(FaultEvent::new(update.client_id, FaultKind::DuplicateDiscarded));
            survivors[prev] = update;
        } else {
            survivors.push(update);
        }
    }
    survivors.sort_by_key(|u| u.client_id);
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(id: usize, params: Vec<f32>) -> ModelUpdate {
        ModelUpdate { client_id: id, params, num_samples: 1, decoder: None, class_coverage: None }
    }

    #[test]
    fn draws_are_deterministic_and_order_free() {
        let plan = FaultPlan::new(FaultConfig::chaotic(), 7);
        let a = plan.draw(3, 12);
        // Interleave unrelated draws; (3, 12) must not change.
        let _ = plan.draw(0, 0);
        let _ = plan.draw(9, 12);
        assert_eq!(a, plan.draw(3, 12));
        assert_eq!(plan.draw(3, 12), FaultPlan::new(FaultConfig::chaotic(), 7).draw(3, 12));
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let cfg = FaultConfig::chaotic();
        let a = FaultPlan::new(cfg, 1);
        let b = FaultPlan::new(cfg, 2);
        let differs = (0..50).any(|c| a.draw(0, c) != b.draw(0, c));
        assert!(differs, "seeds 1 and 2 produced identical 50-client schedules");
    }

    #[test]
    fn quiet_config_never_draws_a_fault() {
        let plan = FaultPlan::new(FaultConfig::default(), 99);
        assert!(FaultConfig::default().is_quiet());
        for round in 0..5 {
            for client in 0..20 {
                assert!(plan.draw(round, client).is_clean());
            }
        }
    }

    #[test]
    fn chaotic_config_hits_roughly_its_probabilities() {
        let plan = FaultPlan::new(FaultConfig::chaotic(), 5);
        let n = 2000;
        let drops = (0..n).filter(|&c| plan.draw(0, c).dropout).count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.05, "dropout rate {frac}");
    }

    #[test]
    fn corruption_poisons_params() {
        let mut u = update(0, vec![1.0; 250]);
        FaultPlan::corrupt_params(&mut u, CorruptionMode::Nan);
        assert!(u.is_non_finite());
        assert!(u.params[0].is_nan());
        let mut v = update(0, vec![1.0; 3]);
        FaultPlan::corrupt_params(&mut v, CorruptionMode::Inf);
        assert!(v.params.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn sanitizer_rejects_non_finite_and_wrong_length() {
        let mut events = Vec::new();
        let arrived = vec![
            update(0, vec![1.0, 2.0]),
            update(1, vec![f32::NAN, 0.0]),
            update(2, vec![1.0]), // truncated
            update(3, vec![0.5, f32::INFINITY]),
        ];
        let survivors = sanitize_round(arrived, 2, &mut events);
        let ids: Vec<usize> = survivors.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![0]);
        assert_eq!(
            events,
            vec![
                FaultEvent::new(1, FaultKind::RejectedNonFinite),
                FaultEvent::new(2, FaultKind::RejectedWrongLength { got: 1, expected: 2 }),
                FaultEvent::new(3, FaultKind::RejectedNonFinite),
            ]
        );
        assert!(events.iter().all(|e| e.kind.discards_submission()));
    }

    #[test]
    fn dedup_keeps_last_valid_arrival() {
        let mut events = Vec::new();
        let arrived = vec![
            update(5, vec![1.0, 1.0]),
            update(4, vec![2.0, 2.0]),
            update(5, vec![9.0, 9.0]), // later duplicate wins
        ];
        let survivors = sanitize_round(arrived, 2, &mut events);
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0].client_id, 4);
        assert_eq!(survivors[1].client_id, 5);
        assert_eq!(survivors[1].params, vec![9.0, 9.0]);
        assert_eq!(events, vec![FaultEvent::new(5, FaultKind::DuplicateDiscarded)]);
    }

    #[test]
    fn invalid_duplicate_does_not_displace_valid_original() {
        let mut events = Vec::new();
        let arrived = vec![update(7, vec![1.0, 1.0]), update(7, vec![f32::NAN, 0.0])];
        let survivors = sanitize_round(arrived, 2, &mut events);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].params, vec![1.0, 1.0]);
        assert_eq!(events, vec![FaultEvent::new(7, FaultKind::RejectedNonFinite)]);
    }

    #[test]
    fn non_finite_decoder_is_stripped_not_fatal() {
        let mut events = Vec::new();
        let mut u = update(2, vec![1.0, 2.0]);
        u.decoder = Some(vec![0.0, f32::NAN]);
        let survivors = sanitize_round(vec![u], 2, &mut events);
        assert_eq!(survivors.len(), 1);
        assert!(survivors[0].decoder.is_none());
        assert_eq!(events, vec![FaultEvent::new(2, FaultKind::DecoderStripped)]);
        assert!(!events[0].kind.discards_submission());
    }

    #[test]
    fn fault_events_round_trip_through_json() {
        let events = vec![
            FaultEvent::new(0, FaultKind::Dropout),
            FaultEvent::new(1, FaultKind::StragglerTimeout { delay_secs: 0.75 }),
            FaultEvent::new(2, FaultKind::StragglerLate { delay_secs: 0.25 }),
            FaultEvent::new(3, FaultKind::Corrupted { mode: CorruptionMode::Nan }),
            FaultEvent::new(4, FaultKind::Truncated { kept: 10 }),
            FaultEvent::new(5, FaultKind::DuplicateSubmission),
            FaultEvent::new(6, FaultKind::RejectedWrongLength { got: 1, expected: 2 }),
            FaultEvent::new(7, FaultKind::DuplicateDiscarded),
            FaultEvent::new(8, FaultKind::FrameMalformed { detail: "bad magic".to_string() }),
            FaultEvent::new(9, FaultKind::FrameOversized { declared: 1 << 40, cap: 1 << 26 }),
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<FaultEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
