//! Per-round experiment records.

use crate::comm::CommStats;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Everything the harness records about one federated round — the raw
/// material for Fig. 4/5 (accuracy series), Table IV (mean ± std over the
/// tail) and Table V (communication and time overheads).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 0-based round index.
    pub round: usize,
    /// Global-model accuracy on the server-side test set after aggregation.
    pub accuracy: f32,
    /// Clients sampled this round.
    pub sampled: Vec<usize>,
    /// Clients whose updates the strategy included in the aggregate.
    pub selected: Vec<usize>,
    /// Ground-truth malicious clients among the sampled (from the attack
    /// interceptor), for detection-quality analysis.
    pub malicious_sampled: Vec<usize>,
    /// Wall-clock seconds the round took (local training + aggregation).
    pub wall_secs: f64,
    /// Bytes moved through the server this round.
    pub comm: CommStats,
}

impl RoundRecord {
    /// A copy with the wall-clock time zeroed: the view the chaos suite
    /// compares across replays, since every other field is a deterministic
    /// function of the seeds while `wall_secs` never is.
    pub fn normalized(&self) -> RoundRecord {
        RoundRecord { wall_secs: 0.0, ..self.clone() }
    }

    /// True-positive count: malicious clients the strategy excluded.
    pub fn malicious_excluded(&self) -> usize {
        let selected: HashSet<usize> = self.selected.iter().copied().collect();
        self.malicious_sampled.iter().filter(|c| !selected.contains(c)).count()
    }

    /// False-positive count: benign clients the strategy excluded.
    pub fn benign_excluded(&self) -> usize {
        let selected: HashSet<usize> = self.selected.iter().copied().collect();
        let malicious: HashSet<usize> = self.malicious_sampled.iter().copied().collect();
        self.sampled.iter().filter(|c| !malicious.contains(c) && !selected.contains(c)).count()
    }
}

/// Accuracy series from a run history.
pub fn accuracy_series(history: &[RoundRecord]) -> Vec<f32> {
    history.iter().map(|r| r.accuracy).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sampled: Vec<usize>, selected: Vec<usize>, malicious: Vec<usize>) -> RoundRecord {
        RoundRecord {
            round: 0,
            accuracy: 0.9,
            sampled,
            selected,
            malicious_sampled: malicious,
            wall_secs: 0.1,
            comm: CommStats::default(),
        }
    }

    #[test]
    fn exclusion_counting() {
        let r = record(vec![0, 1, 2, 3], vec![0, 1], vec![2, 3]);
        assert_eq!(r.malicious_excluded(), 2);
        assert_eq!(r.benign_excluded(), 0);
    }

    #[test]
    fn benign_exclusions_counted() {
        let r = record(vec![0, 1, 2], vec![2], vec![2]);
        // Clients 0 and 1 are benign but excluded; 2 is malicious but kept.
        assert_eq!(r.malicious_excluded(), 0);
        assert_eq!(r.benign_excluded(), 2);
    }

    #[test]
    fn series_extraction() {
        let rs = vec![record(vec![], vec![], vec![])];
        assert_eq!(accuracy_series(&rs), vec![0.9]);
    }

    #[test]
    fn normalized_zeroes_only_wall_clock() {
        let r = record(vec![1, 2], vec![1], vec![2]);
        let n = r.normalized();
        assert_eq!(n.wall_secs, 0.0);
        assert_eq!(n.accuracy, r.accuracy);
        assert_eq!(n.sampled, r.sampled);
        assert_eq!(n.selected, r.selected);
        // Two records differing only in wall time normalize equal.
        let mut slow = r.clone();
        slow.wall_secs = 99.0;
        assert_ne!(slow, r);
        assert_eq!(slow.normalized(), r.normalized());
    }

    #[test]
    fn round_record_round_trips_through_json() {
        let r = record(vec![1], vec![1], vec![]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RoundRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
