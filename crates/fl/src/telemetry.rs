//! Structured per-round telemetry and the composable observer pipeline.
//!
//! Every [`crate::Federation::run_round`] call emits exactly one
//! [`RoundTelemetry`] event carrying per-stage wall times, the strategy's
//! per-client audit scores and selection threshold, communication stats, and
//! the selection/exclusion rosters. Consumers subscribe by implementing
//! [`RoundObserver`] and registering through
//! `Federation::builder(..).observer(..)` (or
//! `Federation::add_observer`); any number of observers can be attached and
//! each sees the same event stream.
//!
//! Three sinks cover the common cases:
//! * [`MemoryCollector`] — in-process capture for tests and summaries;
//! * [`JsonlSink`] — one JSON object per line, the replayable trail under
//!   `results/telemetry/` that the bench binaries leave behind;
//! * [`StderrProgress`] — a human-readable per-round progress line.

use crate::comm::CommStats;
use crate::fault::FaultEvent;
use crate::transport::{SessionEvent, TransportKind};
use fg_obs::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version stamped into every emitted [`RoundTelemetry`] event.
///
/// History: v1 (implicit, unstamped) — the pre-observability schema; v2 —
/// adds `schema_version` and `metrics`. Readers are forward-compatible:
/// unknown fields are ignored by the deserializer and fields added after v1
/// carry `#[serde(default)]`, so old trails parse (with `schema_version` 0)
/// and new trails survive old readers.
pub const SCHEMA_VERSION: u32 = 2;

/// Wall-clock seconds spent in each stage of one federated round.
///
/// The seven stages partition [`RoundTelemetry::wall_secs`]: `sampling` +
/// `local_training` + `sanitize` + `synthesis` + `audit` + `aggregation` +
/// `evaluation` accounts for the round up to bookkeeping noise. For
/// strategies without a synthesis/audit phase (FedAvg, Krum, ...) those two
/// stages are zero and the whole `aggregate()` call is attributed to
/// `aggregation`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Client sampling (Alg. 1 line 17).
    pub sampling_secs: f64,
    /// Parallel local training across the sampled clients, including attack
    /// interception.
    pub local_training_secs: f64,
    /// Fault injection plus server-side sanitization (validation, decoder
    /// stripping, duplicate resolution) of the round's submissions.
    pub sanitize_secs: f64,
    /// Server-side decoder synthesis of `D_syn` (FedGuard only).
    pub synthesis_secs: f64,
    /// Per-client audit/scoring (FedGuard's synthetic-set evaluation,
    /// Spectral's reconstruction errors).
    pub audit_secs: f64,
    /// Inner aggregation of the kept updates, plus strategy overhead not
    /// covered by synthesis/audit.
    pub aggregation_secs: f64,
    /// Server-side evaluation of the new global model on the test set.
    pub evaluation_secs: f64,
}

impl StageTimings {
    /// Total time across all named stages.
    pub fn total(&self) -> f64 {
        self.sampling_secs
            + self.local_training_secs
            + self.sanitize_secs
            + self.synthesis_secs
            + self.audit_secs
            + self.aggregation_secs
            + self.evaluation_secs
    }

    /// The stages as `(name, seconds)` pairs, in pipeline order.
    pub fn named(&self) -> [(&'static str, f64); 7] {
        [
            ("sampling", self.sampling_secs),
            ("local_training", self.local_training_secs),
            ("sanitize", self.sanitize_secs),
            ("synthesis", self.synthesis_secs),
            ("audit", self.audit_secs),
            ("aggregation", self.aggregation_secs),
            ("evaluation", self.evaluation_secs),
        ]
    }

    /// Element-wise accumulation (for averaging across rounds).
    pub fn add(&mut self, other: &StageTimings) {
        self.sampling_secs += other.sampling_secs;
        self.local_training_secs += other.local_training_secs;
        self.sanitize_secs += other.sanitize_secs;
        self.synthesis_secs += other.synthesis_secs;
        self.audit_secs += other.audit_secs;
        self.aggregation_secs += other.aggregation_secs;
        self.evaluation_secs += other.evaluation_secs;
    }

    /// Element-wise scaling (for averaging across rounds).
    pub fn scaled(&self, factor: f64) -> StageTimings {
        StageTimings {
            sampling_secs: self.sampling_secs * factor,
            local_training_secs: self.local_training_secs * factor,
            sanitize_secs: self.sanitize_secs * factor,
            synthesis_secs: self.synthesis_secs * factor,
            audit_secs: self.audit_secs * factor,
            aggregation_secs: self.aggregation_secs * factor,
            evaluation_secs: self.evaluation_secs * factor,
        }
    }
}

/// One federated round, fully described: the structured event emitted to
/// every [`RoundObserver`] at the end of [`crate::Federation::run_round`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundTelemetry {
    /// Schema version of the emitting writer ([`SCHEMA_VERSION`]); 0 when
    /// read back from a pre-versioning (v1) trail.
    #[serde(default)]
    pub schema_version: u32,
    /// Round index (0-based, strictly increasing within a run).
    pub round: usize,
    /// Name of the aggregation strategy that produced the round.
    pub strategy: String,
    /// Test-set accuracy of the global model after the round.
    pub accuracy: f32,
    /// Per-stage wall times.
    pub stages: StageTimings,
    /// End-to-end wall time of the round.
    pub wall_secs: f64,
    /// Per-client `(client_id, score)` diagnostics from the strategy
    /// (FedGuard: synthetic-set accuracy; Spectral: reconstruction error;
    /// Krum: Krum score). Empty for strategies without per-client scores.
    pub scores: Vec<(usize, f32)>,
    /// The strategy's selection threshold for this round, if it applied one
    /// (FedGuard: round-mean audit accuracy; Spectral: mean error).
    pub threshold: Option<f32>,
    /// Clients sampled into the round, ascending.
    pub sampled: Vec<usize>,
    /// Clients whose valid submissions reached the aggregation stage after
    /// fault injection and sanitization, ascending. Without faults this
    /// equals `sampled`; always `selected ⊆ survivors ⊆ sampled`.
    pub survivors: Vec<usize>,
    /// Clients whose updates the strategy kept.
    pub selected: Vec<usize>,
    /// Sampled clients the strategy excluded (`sampled` minus `selected`).
    pub excluded: Vec<usize>,
    /// Every fault incident of the round — injected (dropout, straggler,
    /// corruption, ...) and observed (sanitizer rejections, dedup).
    pub faults: Vec<FaultEvent>,
    /// False when fewer than the resilience policy's quorum survived and the
    /// aggregation strategy was skipped (global model carried forward).
    pub quorum_met: bool,
    /// Ground-truth malicious clients among the sampled (from the attack
    /// interceptor; empty for honest runs).
    pub malicious_sampled: Vec<usize>,
    /// Byte-accurate communication totals for the round.
    pub comm: CommStats,
    /// Which deployment carried the round's exchange (in-process simulation
    /// or TCP). v2 addition; old trails read back as `Local`.
    #[serde(default)]
    pub transport: TransportKind,
    /// Client-session lifecycle events (joins, heartbeats, drops, leaves)
    /// observed by the transport during the round. Always empty for the
    /// in-process transport. v2 addition; old trails read back empty.
    #[serde(default)]
    pub sessions: Vec<SessionEvent>,
    /// Cumulative process-wide metrics at the end of the round (GEMM FLOPs,
    /// workspace pool traffic, pool job counts, ...), captured only while
    /// `fg_obs` tracing is enabled — empty otherwise, keeping events
    /// comparable across runs.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

impl RoundTelemetry {
    /// Number of sampled clients the strategy excluded.
    pub fn excluded_count(&self) -> usize {
        self.excluded.len()
    }

    /// Number of sampled clients the strategy kept.
    pub fn selected_count(&self) -> usize {
        self.selected.len()
    }

    /// Number of sampled clients whose submission never reached aggregation
    /// (dropouts, timeouts, sanitizer rejections).
    pub fn lost_count(&self) -> usize {
        self.sampled.len() - self.survivors.len()
    }
}

/// A subscriber to the round event stream.
///
/// Observers receive every event in round order. `on_run_complete` fires
/// once when `Federation::run` finishes (sinks flush there); observers
/// driven round-by-round via `run_round` can be flushed by dropping them.
pub trait RoundObserver: Send {
    fn on_round(&mut self, event: &RoundTelemetry);

    fn on_run_complete(&mut self) {}
}

/// In-memory collector. Cloning shares the underlying buffer, so a clone can
/// be handed to the federation while the original is inspected afterwards.
#[derive(Clone, Default)]
pub struct MemoryCollector {
    events: Arc<parking_lot::Mutex<Vec<RoundTelemetry>>>,
}

impl MemoryCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events captured so far.
    pub fn events(&self) -> Vec<RoundTelemetry> {
        self.events.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Mean per-stage wall times across the captured rounds.
    pub fn mean_stages(&self) -> StageTimings {
        let events = self.events.lock();
        if events.is_empty() {
            return StageTimings::default();
        }
        let mut acc = StageTimings::default();
        for e in events.iter() {
            acc.add(&e.stages);
        }
        acc.scaled(1.0 / events.len() as f64)
    }
}

impl RoundObserver for MemoryCollector {
    fn on_round(&mut self, event: &RoundTelemetry) {
        self.events.lock().push(event.clone());
    }
}

/// JSON-lines file sink: one `RoundTelemetry` object per line.
///
/// Parent directories are created on construction; the file is truncated.
/// Events are buffered and flushed on `on_run_complete` and on drop.
pub struct JsonlSink {
    writer: BufWriter<fs::File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Open (create/truncate) a sink at `path`, creating parent directories.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = fs::File::create(&path)?;
        Ok(JsonlSink { writer: BufWriter::new(file), path })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl RoundObserver for JsonlSink {
    fn on_round(&mut self, event: &RoundTelemetry) {
        let line = serde_json::to_string(event).expect("telemetry event serializes");
        // Telemetry must never abort a run; drop the line on I/O error.
        let _ = writeln!(self.writer, "{line}");
    }

    fn on_run_complete(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Read back a JSONL telemetry trail written by [`JsonlSink`].
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<RoundTelemetry>> {
    let reader = BufReader::new(fs::File::open(path.as_ref())?);
    let mut events = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad telemetry line: {e}"))
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Human-readable progress sink writing one line per round to stderr:
/// which clients the defense excluded and, once ground truth has been seen
/// (the event's `malicious_sampled` roster is non-empty on attack runs),
/// the running defense precision/recall.
#[derive(Clone, Debug, Default)]
pub struct StderrProgress {
    /// Optional run label prefixed to every line.
    label: Option<&'static str>,
    /// Running exclusion-decision confusion against `malicious_sampled`.
    confusion: crate::forensics::DefenseConfusion,
    /// Set once any round carried a ground-truth malicious roster.
    saw_ground_truth: bool,
}

impl StderrProgress {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn labeled(label: &'static str) -> Self {
        StderrProgress { label: Some(label), ..Self::default() }
    }
}

impl RoundObserver for StderrProgress {
    fn on_round(&mut self, event: &RoundTelemetry) {
        let malicious: std::collections::BTreeSet<usize> =
            event.malicious_sampled.iter().copied().collect();
        self.saw_ground_truth |= !malicious.is_empty();
        let excluded: std::collections::BTreeSet<usize> = event.excluded.iter().copied().collect();
        for &id in &event.sampled {
            self.confusion.note(malicious.contains(&id), excluded.contains(&id));
        }
        let prefix = self.label.map(|l| format!("{l} ")).unwrap_or_default();
        let thr = event.threshold.map_or_else(|| "-".to_string(), |t| format!("{t:.3}"));
        let excl = if event.excluded.is_empty() {
            "-".to_string()
        } else {
            let ids: Vec<String> = event.excluded.iter().map(|id| id.to_string()).collect();
            format!("[{}]", ids.join(","))
        };
        let defense = if self.saw_ground_truth {
            format!(" | P {:.2} R {:.2}", self.confusion.precision(), self.confusion.recall())
        } else {
            String::new()
        };
        eprintln!(
            "{prefix}[{} r{:03}] acc {:.4} | kept {}/{} excl {excl} thr {thr}{defense} | train {:.2}s agg {:.2}s | {:.2}s total",
            event.strategy,
            event.round,
            event.accuracy,
            event.selected_count(),
            event.sampled.len(),
            event.stages.local_training_secs,
            event.stages.synthesis_secs + event.stages.audit_secs + event.stages.aggregation_secs,
            event.wall_secs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fault::{FaultEvent, FaultKind};

    fn sample_event(round: usize) -> RoundTelemetry {
        RoundTelemetry {
            schema_version: SCHEMA_VERSION,
            round,
            strategy: "FedGuard".to_string(),
            accuracy: 0.75,
            stages: StageTimings {
                sampling_secs: 1e-6,
                local_training_secs: 0.5,
                sanitize_secs: 0.003,
                synthesis_secs: 0.1,
                audit_secs: 0.2,
                aggregation_secs: 0.05,
                evaluation_secs: 0.02,
            },
            wall_secs: 0.88,
            scores: vec![(0, 0.8), (3, 0.1)],
            threshold: Some(0.45),
            sampled: vec![0, 3, 5],
            survivors: vec![0, 3],
            selected: vec![0],
            excluded: vec![3, 5],
            faults: vec![
                FaultEvent::new(5, FaultKind::Dropout),
                FaultEvent::new(3, FaultKind::StragglerLate { delay_secs: 0.2 }),
            ],
            quorum_met: true,
            malicious_sampled: vec![3],
            comm: CommStats { upload_bytes: 1024, download_bytes: 2048 },
            transport: TransportKind::Local,
            sessions: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn stage_timings_total_and_names() {
        let e = sample_event(0);
        assert!((e.stages.total() - 0.873001).abs() < 1e-9);
        let names: Vec<&str> = e.stages.named().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "sampling",
                "local_training",
                "sanitize",
                "synthesis",
                "audit",
                "aggregation",
                "evaluation"
            ]
        );
    }

    #[test]
    fn roster_counts_are_consistent() {
        let e = sample_event(0);
        assert_eq!(e.lost_count(), 1);
        assert_eq!(e.selected_count(), 1);
        assert_eq!(e.excluded_count(), 2);
    }

    #[test]
    fn memory_collector_shares_buffer_across_clones() {
        let collector = MemoryCollector::new();
        let mut handle = collector.clone();
        handle.on_round(&sample_event(0));
        handle.on_round(&sample_event(1));
        assert_eq!(collector.len(), 2);
        assert_eq!(collector.events()[1].round, 1);
        let mean = collector.mean_stages();
        assert!((mean.local_training_secs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_sink_round_trips() {
        let path = std::env::temp_dir().join("fg_telemetry_test").join("trail.jsonl");
        let events: Vec<RoundTelemetry> = (0..3).map(sample_event).collect();
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for e in &events {
                sink.on_round(e);
            }
            sink.on_run_complete();
        }
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_jsonl_rejects_corrupt_lines() {
        let path = std::env::temp_dir().join("fg_telemetry_test").join("corrupt.jsonl");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{not json}\n").unwrap();
        assert!(read_jsonl(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
