//! Federation and local-training configuration.

use fg_nn::models::{ClassifierSpec, CvaeSpec};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a client's local classifier training (Alg. 1 line 26).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Local epochs per round (the paper uses 5).
    pub epochs: usize,
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// FedProx proximal coefficient μ (Sahu et al., the paper's §VI-C
    /// alternative operator family). 0 = plain local SGD, the paper's setup.
    pub prox_mu: f32,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        LocalTrainConfig { epochs: 5, batch_size: 32, lr: 0.05, momentum: 0.9, prox_mu: 0.0 }
    }
}

/// Hyper-parameters of a client's one-time CVAE training (Alg. 1 line 25;
/// the paper trains for 30 epochs, once, since partitions are static).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CvaeTrainConfig {
    pub spec: CvaeSpec,
    pub epochs: usize,
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl CvaeTrainConfig {
    /// The paper's Table III configuration: 30 epochs of Adam.
    pub fn paper() -> Self {
        CvaeTrainConfig { spec: CvaeSpec::table_iii(), epochs: 30, batch_size: 64, lr: 1e-3 }
    }

    /// Reduced configuration for CPU-budget presets.
    pub fn reduced(hidden: usize, latent: usize, epochs: usize) -> Self {
        CvaeTrainConfig {
            spec: CvaeSpec::reduced(hidden, latent),
            epochs,
            batch_size: 32,
            lr: 2e-3,
        }
    }
}

/// How the round loop degrades when submissions go missing or are rejected
/// (dropouts, straggler timeouts, sanitizer rejections — see
/// [`crate::fault`]).
///
/// The sanitizer always runs; this policy decides what happens *after* it:
/// if fewer than `min_quorum` valid submissions survive, the aggregation
/// strategy is not consulted and the global model is carried forward
/// unchanged — unless `damped_partial_step` is set and at least one
/// submission survived, in which case the server takes a partial step toward
/// the survivors' unweighted mean, scaled by `survivors / min_quorum` on top
/// of the server learning rate (a confidence-weighted step: the thinner the
/// round, the smaller the move).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Minimum surviving submissions required to run the aggregation
    /// strategy. The effective quorum is always at least 1: a strategy is
    /// never invoked on an empty round.
    pub min_quorum: usize,
    /// Below quorum with ≥1 survivor: take a damped partial step instead of
    /// freezing the model (off by default — pure carry-forward).
    pub damped_partial_step: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy { min_quorum: 1, damped_partial_step: false }
    }
}

impl ResiliencePolicy {
    /// Require `min_quorum` survivors, pure carry-forward below it.
    pub fn quorum(min_quorum: usize) -> Self {
        ResiliencePolicy { min_quorum, damped_partial_step: false }
    }

    /// The quorum actually enforced (never zero).
    pub fn effective_quorum(&self) -> usize {
        self.min_quorum.max(1)
    }
}

/// Server-side memory model for the aggregation stage.
///
/// `Batch` materializes all m surviving updates before the strategy runs —
/// O(m·d) server RAM, kept as the oracle every other mode must match
/// bit-for-bit. `Streaming` folds each update into a single O(d)
/// accumulator as it arrives off the transport (strategies that cannot
/// stream — Krum, FedGuard's audit — fall back to `Batch` silently).
/// `Hierarchical` aggregates fixed client shards first and then the shard
/// results: deterministic at any thread count and arrival order, but *not*
/// bit-identical to `Batch` (a different, two-level fold tree), with peak
/// residency O(d·⌈m/shard⌉).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum AggregationMemory {
    /// Materialize every update, then aggregate — the oracle.
    #[default]
    Batch,
    /// Fold updates one at a time into an O(d) accumulator.
    Streaming,
    /// Two-level tree: aggregate `shard`-sized client groups, then the
    /// group results, weighted by group sample counts.
    Hierarchical {
        /// Clients per leaf shard (floored to 1).
        shard: usize,
    },
}

impl AggregationMemory {
    /// Apply the `FG_STREAM_AGG` environment override: `0`/`false`/`off`
    /// force the batch oracle, `1`/`true`/`on` force streaming, anything
    /// else (or unset) keeps the configured mode.
    pub fn resolved(self) -> AggregationMemory {
        match std::env::var("FG_STREAM_AGG") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "0" | "false" | "off" => AggregationMemory::Batch,
                "1" | "true" | "on" => AggregationMemory::Streaming,
                _ => self,
            },
            Err(_) => self,
        }
    }
}

/// Top-level federation parameters (the `Federation` procedure of Alg. 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// Total number of clients `N`.
    pub n_clients: usize,
    /// Clients sampled per round `m`.
    pub clients_per_round: usize,
    /// Number of federated rounds `R`.
    pub rounds: usize,
    /// Classifier architecture.
    pub classifier: ClassifierSpec,
    /// Local training hyper-parameters.
    pub local: LocalTrainConfig,
    /// Server learning rate: the global model moves
    /// `(1-η)·ψ₀ + η·aggregate` per round. `1.0` is the standard full step;
    /// the paper's Fig. 5 studies `0.3`.
    pub server_lr: f32,
    /// Evaluation batch size for the server-side test set.
    pub eval_batch: usize,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Server-side aggregation memory model (`FG_STREAM_AGG` overrides at
    /// run time). Defaults to the O(m·d) batch oracle.
    #[serde(default)]
    pub agg_memory: AggregationMemory,
}

impl FederationConfig {
    /// The paper's §IV-A setup: N = 100, m = 50, Table II CNN, 5 local
    /// epochs, 50 rounds.
    pub fn paper() -> Self {
        FederationConfig {
            n_clients: 100,
            clients_per_round: 50,
            rounds: 50,
            classifier: ClassifierSpec::TableIICnn,
            local: LocalTrainConfig {
                epochs: 5,
                batch_size: 32,
                lr: 0.01,
                momentum: 0.9,
                prox_mu: 0.0,
            },
            server_lr: 1.0,
            eval_batch: 64,
            seed: 0,
            agg_memory: AggregationMemory::Batch,
        }
    }

    /// Sanity checks; panics on inconsistent configs.
    pub fn validate(&self) {
        assert!(self.n_clients > 0, "need at least one client");
        assert!(
            self.clients_per_round > 0 && self.clients_per_round <= self.n_clients,
            "clients_per_round must be in 1..=n_clients"
        );
        assert!(self.rounds > 0, "need at least one round");
        assert!(self.server_lr > 0.0 && self.server_lr <= 1.0, "server_lr must be in (0, 1]");
        assert!(self.local.epochs > 0 && self.local.batch_size > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_section_iv() {
        let c = FederationConfig::paper();
        c.validate();
        assert_eq!(c.n_clients, 100);
        assert_eq!(c.clients_per_round, 50);
        assert_eq!(c.local.epochs, 5);
        assert_eq!(c.classifier, ClassifierSpec::TableIICnn);
    }

    #[test]
    #[should_panic]
    fn zero_clients_rejected() {
        let mut c = FederationConfig::paper();
        c.n_clients = 0;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn oversampling_rejected() {
        let mut c = FederationConfig::paper();
        c.clients_per_round = 101;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn zero_server_lr_rejected() {
        let mut c = FederationConfig::paper();
        c.server_lr = 0.0;
        c.validate();
    }

    #[test]
    fn resilience_policy_defaults_and_quorum_floor() {
        let p = ResiliencePolicy::default();
        assert_eq!(p.min_quorum, 1);
        assert!(!p.damped_partial_step);
        // A zero quorum would let a strategy see an empty round; floored.
        assert_eq!(ResiliencePolicy::quorum(0).effective_quorum(), 1);
        assert_eq!(ResiliencePolicy::quorum(5).effective_quorum(), 5);
    }

    #[test]
    fn agg_memory_defaults_to_batch_and_old_configs_still_parse() {
        assert_eq!(AggregationMemory::default(), AggregationMemory::Batch);
        // A pre-knob config blob (no agg_memory key) must keep parsing.
        let serde::Value::Obj(fields) = serde_json::to_value(&FederationConfig::paper()) else {
            panic!("config serializes to an object");
        };
        let pruned: Vec<_> = fields.into_iter().filter(|(k, _)| k != "agg_memory").collect();
        let parsed: FederationConfig = serde_json::from_value(&serde::Value::Obj(pruned)).unwrap();
        assert_eq!(parsed.agg_memory, AggregationMemory::Batch);
        // The shard payload round-trips.
        let mut cfg = FederationConfig::paper();
        cfg.agg_memory = AggregationMemory::Hierarchical { shard: 8 };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FederationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.agg_memory, AggregationMemory::Hierarchical { shard: 8 });
    }

    #[test]
    fn paper_cvae_config() {
        let c = CvaeTrainConfig::paper();
        assert_eq!(c.epochs, 30);
        assert_eq!(c.spec, CvaeSpec::table_iii());
    }
}
