//! Defense forensics: a per-client, per-round exclusion ledger.
//!
//! The aggregation pipeline decides *which* updates enter the global model;
//! this module records *why* each sampled client's update did or did not.
//! Every completed round folds into the ledger as one [`RoundForensics`]
//! record: the audit score and threshold, an exclusion verdict attributed
//! to a cause taxonomy ([`ExclusionCause`]), a cumulative per-client
//! suspicion EWMA, and — the interceptor being the ground-truth oracle for
//! which sampled clients were malicious — running defense
//! precision/recall/FPR ([`DefenseConfusion`]).
//!
//! ## Determinism
//!
//! The ledger is a pure fold over [`RoundTelemetry`] fields that are part
//! of the bit-determinism contract (scores, threshold, rosters, fault
//! events, quorum verdict) — never over wall-clock, stage timings or the
//! metrics snapshot. Verdicts are emitted in ascending client-id order and
//! the suspicion EWMA is plain `f32` arithmetic in that same order, so the
//! serialized ledger is byte-identical across `LocalTransport` vs TCP,
//! thread counts, and audit modes. `tests/forensics_determinism.rs` pins
//! this.
//!
//! ## Cause taxonomy
//!
//! | cause | meaning |
//! |---|---|
//! | `BelowThreshold` | survived sanitization, judged by the strategy, not selected |
//! | `NonFinite` | sanitizer rejected the update for NaN/Inf parameters |
//! | `FaultSanitized` | a transit/sanitizer fault consumed the update |
//! | `QuorumSkipped` | round failed quorum; survivors were skipped wholesale |
//! | `RosterDropped` | the update never reached the sanitizer (dropout, timeout, session loss) |

use crate::fault::FaultKind;
use crate::telemetry::{RoundObserver, RoundTelemetry, SCHEMA_VERSION};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a sampled client's update did not make it into the aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionCause {
    /// Survived sanitization and was judged, but the strategy left it out
    /// of the selected roster (under FedGuard: audit score < threshold).
    BelowThreshold,
    /// The sanitizer rejected the update for non-finite parameters.
    NonFinite,
    /// A transit or sanitizer fault consumed the update (truncation, wrong
    /// length, stale duplicate, malformed or oversized frame).
    FaultSanitized,
    /// The round failed quorum: every survivor was skipped wholesale, no
    /// one was individually judged.
    QuorumSkipped,
    /// The update never reached the sanitizer: dropout, straggler timeout
    /// or session loss.
    RosterDropped,
}

/// Running confusion counts over every `(round, sampled client)` exclusion
/// decision, treating "excluded" as the positive class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseConfusion {
    /// Malicious and excluded.
    pub true_positives: u64,
    /// Benign but excluded.
    pub false_positives: u64,
    /// Benign and kept.
    pub true_negatives: u64,
    /// Malicious but kept.
    pub false_negatives: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl DefenseConfusion {
    pub fn note(&mut self, malicious: bool, excluded: bool) {
        match (malicious, excluded) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_negatives += 1,
        }
    }

    /// Of everything excluded, how much was actually malicious. 0 when
    /// nothing was excluded yet.
    pub fn precision(&self) -> f64 {
        ratio(self.true_positives, self.true_positives + self.false_positives)
    }

    /// Of everything malicious, how much was excluded. 0 when no malicious
    /// client was sampled yet.
    pub fn recall(&self) -> f64 {
        ratio(self.true_positives, self.true_positives + self.false_negatives)
    }

    /// Of everything benign, how much was wrongly excluded.
    pub fn fpr(&self) -> f64 {
        ratio(self.false_positives, self.false_positives + self.true_negatives)
    }

    /// Decisions recorded so far.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }
}

/// One sampled client's verdict in one round.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientVerdict {
    pub client_id: usize,
    /// The strategy's score for this client, when it produced one.
    #[serde(default)]
    pub score: Option<f32>,
    /// Not part of the aggregate this round.
    pub excluded: bool,
    /// Attribution, present iff `excluded`.
    #[serde(default)]
    pub cause: Option<ExclusionCause>,
    /// Per-client EWMA of the exclusion indicator after this round.
    pub suspicion: f32,
    /// Ground truth: the interceptor marked this client malicious.
    pub malicious: bool,
}

/// One round of the ledger — the unit serialized to the forensics JSONL.
/// Versioned alongside [`RoundTelemetry`] under the same schema-v2
/// `#[serde(default)]` compatibility rules: readers tolerate missing
/// defaulted fields and ignore unknown ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundForensics {
    /// Schema version of the emitting writer ([`SCHEMA_VERSION`]); 0 when
    /// absent in the input.
    #[serde(default)]
    pub schema_version: u32,
    pub round: usize,
    /// The round's audit threshold, when the strategy published one.
    #[serde(default)]
    pub threshold: Option<f32>,
    pub quorum_met: bool,
    /// One verdict per sampled client, ascending client id.
    pub verdicts: Vec<ClientVerdict>,
    /// Running confusion totals up to and including this round.
    #[serde(default)]
    pub confusion: DefenseConfusion,
    /// Running rates derived from `confusion`, duplicated for grep-ability.
    #[serde(default)]
    pub precision: f64,
    #[serde(default)]
    pub recall: f64,
    #[serde(default)]
    pub fpr: f64,
}

impl RoundForensics {
    /// Client ids excluded this round, ascending.
    pub fn excluded_ids(&self) -> Vec<usize> {
        self.verdicts.iter().filter(|v| v.excluded).map(|v| v.client_id).collect()
    }
}

/// Default EWMA coefficient for the per-client suspicion series: one
/// exclusion lifts a clean client to 0.25; four in a row to ~0.68.
pub const DEFAULT_SUSPICION_ALPHA: f32 = 0.25;

/// The ledger state machine: folds completed rounds into per-client
/// suspicion and running confusion, keeping every emitted record.
#[derive(Clone, Debug)]
pub struct ForensicsLedger {
    alpha: f32,
    suspicion: BTreeMap<usize, f32>,
    confusion: DefenseConfusion,
    rounds: Vec<RoundForensics>,
}

impl Default for ForensicsLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ForensicsLedger {
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_SUSPICION_ALPHA)
    }

    pub fn with_alpha(alpha: f32) -> Self {
        ForensicsLedger {
            alpha,
            suspicion: BTreeMap::new(),
            confusion: DefenseConfusion::default(),
            rounds: Vec::new(),
        }
    }

    /// Attribute an exclusion. Precedence within the fault events of one
    /// client: a non-finite rejection names the cause outright (the
    /// injected corruption that produced it is secondary); any other
    /// consuming fault is `FaultSanitized`; a client with no consuming
    /// fault event that still never made the survivor roster was lost with
    /// its transport session.
    fn cause_for(id: usize, event: &RoundTelemetry, survivors: &BTreeSet<usize>) -> ExclusionCause {
        if survivors.contains(&id) {
            return if event.quorum_met {
                ExclusionCause::BelowThreshold
            } else {
                ExclusionCause::QuorumSkipped
            };
        }
        let kinds: Vec<&FaultKind> =
            event.faults.iter().filter(|f| f.client_id == id).map(|f| &f.kind).collect();
        if kinds.iter().any(|k| matches!(k, FaultKind::RejectedNonFinite)) {
            ExclusionCause::NonFinite
        } else if kinds.iter().any(|k| {
            matches!(
                k,
                FaultKind::Corrupted { .. }
                    | FaultKind::Truncated { .. }
                    | FaultKind::RejectedWrongLength { .. }
                    | FaultKind::DuplicateSubmission
                    | FaultKind::DuplicateDiscarded
                    | FaultKind::FrameMalformed { .. }
                    | FaultKind::FrameOversized { .. }
            )
        }) {
            ExclusionCause::FaultSanitized
        } else {
            ExclusionCause::RosterDropped
        }
    }

    /// Fold one completed round and return its ledger record. Pure in the
    /// deterministic telemetry fields plus prior ledger state.
    pub fn observe(&mut self, event: &RoundTelemetry) -> RoundForensics {
        let selected: BTreeSet<usize> = event.selected.iter().copied().collect();
        let survivors: BTreeSet<usize> = event.survivors.iter().copied().collect();
        let malicious: BTreeSet<usize> = event.malicious_sampled.iter().copied().collect();
        let mut sampled: Vec<usize> = event.sampled.clone();
        sampled.sort_unstable();

        let mut verdicts = Vec::with_capacity(sampled.len());
        for id in sampled {
            let excluded = !selected.contains(&id);
            let cause = excluded.then(|| Self::cause_for(id, event, &survivors));
            let score = event.scores.iter().find(|&&(c, _)| c == id).map(|&(_, s)| s);
            let s = self.suspicion.entry(id).or_insert(0.0);
            *s = (1.0 - self.alpha) * *s + self.alpha * if excluded { 1.0 } else { 0.0 };
            let is_malicious = malicious.contains(&id);
            self.confusion.note(is_malicious, excluded);
            verdicts.push(ClientVerdict {
                client_id: id,
                score,
                excluded,
                cause,
                suspicion: *s,
                malicious: is_malicious,
            });
        }

        let record = RoundForensics {
            schema_version: SCHEMA_VERSION,
            round: event.round,
            threshold: event.threshold,
            quorum_met: event.quorum_met,
            verdicts,
            confusion: self.confusion,
            precision: self.confusion.precision(),
            recall: self.confusion.recall(),
            fpr: self.confusion.fpr(),
        };
        self.rounds.push(record.clone());
        record
    }

    pub fn rounds(&self) -> &[RoundForensics] {
        &self.rounds
    }

    pub fn confusion(&self) -> DefenseConfusion {
        self.confusion
    }

    /// Current suspicion EWMA for a client (None if never sampled).
    pub fn suspicion(&self, client_id: usize) -> Option<f32> {
        self.suspicion.get(&client_id).copied()
    }

    /// The whole ledger as a JSON array (what `/forensics` serves).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.rounds).expect("ledger serializes")
    }
}

struct CollectorInner {
    ledger: ForensicsLedger,
    sink: Option<BufWriter<File>>,
    path: Option<PathBuf>,
}

/// Shared, cloneable [`RoundObserver`] around a [`ForensicsLedger`];
/// optionally mirrors each record to a JSONL file as rounds complete.
/// Clones share state, so the runner can keep one handle attached to the
/// federation and hand another to the admin plane.
#[derive(Clone)]
pub struct ForensicsCollector {
    inner: Arc<Mutex<CollectorInner>>,
}

impl Default for ForensicsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ForensicsCollector {
    pub fn new() -> Self {
        ForensicsCollector {
            inner: Arc::new(Mutex::new(CollectorInner {
                ledger: ForensicsLedger::new(),
                sink: None,
                path: None,
            })),
        }
    }

    /// Collector that also appends one JSON line per round to `path`
    /// (truncating any previous file; parent directories are created).
    pub fn with_jsonl(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(path)?;
        Ok(ForensicsCollector {
            inner: Arc::new(Mutex::new(CollectorInner {
                ledger: ForensicsLedger::new(),
                sink: Some(BufWriter::new(file)),
                path: Some(path.to_path_buf()),
            })),
        })
    }

    pub fn rounds(&self) -> Vec<RoundForensics> {
        self.inner.lock().ledger.rounds().to_vec()
    }

    pub fn confusion(&self) -> DefenseConfusion {
        self.inner.lock().ledger.confusion()
    }

    /// The ledger as a JSON array (what `/forensics` serves).
    pub fn to_json(&self) -> String {
        self.inner.lock().ledger.to_json()
    }

    /// The JSONL path, when this collector writes one.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.lock().path.clone()
    }
}

impl RoundObserver for ForensicsCollector {
    fn on_round(&mut self, event: &RoundTelemetry) {
        let mut inner = self.inner.lock();
        let record = inner.ledger.observe(event);
        if let Some(sink) = inner.sink.as_mut() {
            let line = serde_json::to_string(&record).expect("forensics record serializes");
            let _ = writeln!(sink, "{line}");
        }
    }

    fn on_run_complete(&mut self) {
        if let Some(sink) = self.inner.lock().sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

/// Read a forensics JSONL file back into records (tolerates the usual
/// schema-compat rules; fails on structurally corrupt lines).
pub fn read_forensics_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<RoundForensics>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommStats;
    use crate::fault::{FaultEvent, FaultKind};
    use crate::telemetry::StageTimings;

    fn event(round: usize) -> RoundTelemetry {
        RoundTelemetry {
            schema_version: SCHEMA_VERSION,
            round,
            strategy: "fedguard".to_string(),
            accuracy: 0.5,
            stages: StageTimings::default(),
            wall_secs: 1.0,
            scores: vec![],
            threshold: None,
            sampled: vec![],
            survivors: vec![],
            selected: vec![],
            excluded: vec![],
            faults: vec![],
            quorum_met: true,
            malicious_sampled: vec![],
            comm: CommStats::default(),
            transport: Default::default(),
            sessions: vec![],
            metrics: Default::default(),
        }
    }

    #[test]
    fn causes_cover_the_taxonomy() {
        let mut ev = event(0);
        ev.sampled = vec![1, 2, 3, 4, 5];
        ev.survivors = vec![1, 2];
        ev.selected = vec![1];
        ev.excluded = vec![2, 3, 4, 5];
        ev.scores = vec![(1, 0.9), (2, 0.1)];
        ev.threshold = Some(0.5);
        ev.faults = vec![
            FaultEvent::new(3, FaultKind::Corrupted { mode: crate::fault::CorruptionMode::Nan }),
            FaultEvent::new(3, FaultKind::RejectedNonFinite),
            FaultEvent::new(4, FaultKind::RejectedWrongLength { got: 3, expected: 9 }),
            FaultEvent::new(5, FaultKind::Dropout),
        ];
        let mut ledger = ForensicsLedger::new();
        let rec = ledger.observe(&ev);
        let cause = |id: usize| rec.verdicts.iter().find(|v| v.client_id == id).unwrap().cause;
        assert_eq!(cause(1), None);
        assert_eq!(cause(2), Some(ExclusionCause::BelowThreshold));
        assert_eq!(
            cause(3),
            Some(ExclusionCause::NonFinite),
            "non-finite outranks the injected corruption"
        );
        assert_eq!(cause(4), Some(ExclusionCause::FaultSanitized));
        assert_eq!(cause(5), Some(ExclusionCause::RosterDropped));
        assert_eq!(rec.excluded_ids(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn quorum_failure_attributes_survivors_as_skipped() {
        let mut ev = event(0);
        ev.sampled = vec![1, 2, 3];
        ev.survivors = vec![1, 2];
        ev.selected = vec![];
        ev.excluded = vec![1, 2, 3];
        ev.quorum_met = false;
        ev.faults = vec![FaultEvent::new(3, FaultKind::Dropout)];
        let rec = ForensicsLedger::new().observe(&ev);
        let cause = |id: usize| rec.verdicts.iter().find(|v| v.client_id == id).unwrap().cause;
        assert_eq!(cause(1), Some(ExclusionCause::QuorumSkipped));
        assert_eq!(cause(2), Some(ExclusionCause::QuorumSkipped));
        assert_eq!(cause(3), Some(ExclusionCause::RosterDropped));
    }

    #[test]
    fn suspicion_ewma_and_confusion_accumulate() {
        let mut ledger = ForensicsLedger::new();
        // Round 0: client 7 (malicious) excluded, client 1 (benign) kept.
        let mut ev = event(0);
        ev.sampled = vec![1, 7];
        ev.survivors = vec![1, 7];
        ev.selected = vec![1];
        ev.excluded = vec![7];
        ev.malicious_sampled = vec![7];
        let r0 = ledger.observe(&ev);
        let v7 = r0.verdicts.iter().find(|v| v.client_id == 7).unwrap();
        assert!(v7.malicious && v7.excluded);
        assert_eq!(v7.suspicion, DEFAULT_SUSPICION_ALPHA);
        assert_eq!(r0.confusion.true_positives, 1);
        assert_eq!(r0.confusion.true_negatives, 1);
        assert_eq!(r0.precision, 1.0);
        assert_eq!(r0.recall, 1.0);
        assert_eq!(r0.fpr, 0.0);

        // Round 1: client 7 kept this time, client 1 excluded (false alarm).
        let mut ev = event(1);
        ev.sampled = vec![1, 7];
        ev.survivors = vec![1, 7];
        ev.selected = vec![7];
        ev.excluded = vec![1];
        ev.malicious_sampled = vec![7];
        let r1 = ledger.observe(&ev);
        let v7 = r1.verdicts.iter().find(|v| v.client_id == 7).unwrap();
        let a = DEFAULT_SUSPICION_ALPHA;
        assert_eq!(v7.suspicion, (1.0 - a) * a);
        assert_eq!(r1.confusion.false_positives, 1);
        assert_eq!(r1.confusion.false_negatives, 1);
        assert_eq!(r1.precision, 0.5);
        assert_eq!(r1.recall, 0.5);
        assert_eq!(r1.fpr, 0.5);
        assert_eq!(ledger.suspicion(1), Some((1.0 - a) * 0.0 + a));
    }

    #[test]
    fn collector_writes_readable_jsonl() {
        let dir = std::env::temp_dir().join("fg_forensics_test");
        let path = dir.join("ledger.jsonl");
        let mut collector = ForensicsCollector::with_jsonl(&path).unwrap();
        let mut ev = event(0);
        ev.sampled = vec![0, 1];
        ev.survivors = vec![0, 1];
        ev.selected = vec![0];
        ev.excluded = vec![1];
        collector.on_round(&ev);
        collector.on_run_complete();
        let back = read_forensics_jsonl(&path).unwrap();
        assert_eq!(back, collector.rounds());
        assert_eq!(back[0].schema_version, SCHEMA_VERSION);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_tolerates_missing_defaulted_and_unknown_fields() {
        // A minimal v2 record without the defaulted fields…
        let old = r#"{"round":3,"quorum_met":true,"verdicts":[{"client_id":9,"excluded":true,"suspicion":0.25,"malicious":false}]}"#;
        let rec: RoundForensics = serde_json::from_str(old).unwrap();
        assert_eq!(rec.schema_version, 0);
        assert_eq!(rec.round, 3);
        assert_eq!(rec.threshold, None);
        assert_eq!(rec.verdicts[0].cause, None);
        assert_eq!(rec.confusion, DefenseConfusion::default());
        // …and a future record with an unknown field.
        let future = r#"{"round":4,"quorum_met":true,"verdicts":[],"novel_field":[1,2,3]}"#;
        let rec: RoundForensics = serde_json::from_str(future).unwrap();
        assert_eq!(rec.round, 4);
    }
}
