//! The TCP deployment: `TcpTransport` (server side) and `TcpClientChannel`
//! (client side), speaking the [`crate::wire`] protocol over `std::net`.
//!
//! ## Session lifecycle
//!
//! A client connects, sends `Join`, and receives `Welcome` (carrying the
//! serialized experiment configuration, so one config — the server's —
//! drives every process). Each round the server sends `RoundStart` to every
//! *sampled* session; active clients train and `Upload`, scheduled dropouts
//! receive `participate = false` and answer `Decline` without training
//! (preserving decoder-cache parity with the in-process oracle). While idle
//! between rounds a client emits `Heartbeat`s; the server records them as
//! [`SessionEvent`]s when it next reads that session. `Shutdown`/`Leave`
//! close the run.
//!
//! ## Fault mapping
//!
//! Wire trouble degrades exactly like the PR-2 chaos layer, so the round
//! loop's sanitize/quorum/carry-forward machinery carries over unchanged:
//! a disconnect or read timeout is a [`FaultKind::Dropout`], a frame that
//! fails to decode is a [`FaultKind::FrameMalformed`], and a frame whose
//! declared length exceeds the cap is a [`FaultKind::FrameOversized`] —
//! all reported through [`RoundExchange::faults`].
//!
//! ## Determinism and byte accounting
//!
//! The transport adds no randomness: sessions are processed in client-id
//! order, parameters travel as raw f32 bits, and training/interception run
//! client-side from the same seeds the oracle uses — a seeded loopback run
//! is bit-identical to the in-process run. Per-round [`WireStats`] report
//! actual frames/bytes; their `model_bytes_*` fields match
//! [`CommStats`](crate::comm::CommStats) accounting exactly on fault-free
//! rounds (injected transit faults are simulated server-side after receipt,
//! so they never touch the wire).

use crate::client::Client;
use crate::compress::{
    compress_global, compress_update, decompress_update, reference_global, Compression,
};
use crate::fault::{FaultEvent, FaultKind};
use crate::transport::{
    ClientChannel, Directive, RoundExchange, RoundOffer, SessionEvent, SessionEventKind, Transport,
    TransportKind,
};
use crate::update::ModelUpdate;
use crate::wire::{
    encode, encode_round_start, encode_round_start_compressed, encode_upload,
    encode_upload_compressed, read_frame, Message, WireConfig, WireError, HEADER_BYTES,
    PROTOCOL_VERSION,
};
use fg_obs::metrics::Counter;
use fg_obs::span::span;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

static NET_FRAMES_TX: Counter = Counter::new("fl.net.frames_tx");
static NET_FRAMES_RX: Counter = Counter::new("fl.net.frames_rx");
static NET_BYTES_TX: Counter = Counter::new("fl.net.bytes_tx");
static NET_BYTES_RX: Counter = Counter::new("fl.net.bytes_rx");
static NET_MODEL_BYTES_TX: Counter = Counter::new("fl.net.model_bytes_tx");
static NET_MODEL_BYTES_RX: Counter = Counter::new("fl.net.model_bytes_rx");

/// Timeouts and codec limits for one endpoint.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Server: how long to wait for one client's round response (must cover
    /// a full local training pass — a busy client cannot heartbeat). Client:
    /// overall patience for the next directive before giving the server up.
    pub read_timeout: Duration,
    /// Per-frame write deadline on either side.
    pub write_timeout: Duration,
    /// Server: how long [`TcpTransport::wait_for_clients`] waits for the
    /// expected session count. Client: connect-retry window (the server may
    /// not be listening yet).
    pub join_timeout: Duration,
    /// Client: emit a `Heartbeat` after this much idle waiting.
    pub heartbeat_interval: Duration,
    /// Frame codec limits (the length cap).
    pub wire: WireConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(30),
            join_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_secs(2),
            wire: WireConfig::default(),
        }
    }
}

/// Actual wire traffic of one round (or of one client session, cumulatively):
/// every frame in both directions, split into model-parameter payload bytes —
/// the quantity [`CommStats`](crate::comm::CommStats) accounts — and total
/// frame bytes including protocol overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    pub round: usize,
    pub frames_tx: u64,
    pub frames_rx: u64,
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    /// Model-parameter bytes sent (server: `RoundStart` globals; this is the
    /// networked realization of `CommStats::download_bytes`, the broadcast
    /// the clients download).
    pub model_bytes_tx: u64,
    /// Model-parameter bytes received (server: `Upload` payloads; the
    /// networked realization of `CommStats::upload_bytes`, the updates the
    /// clients upload).
    pub model_bytes_rx: u64,
    /// Heartbeat frames observed among the received frames.
    pub heartbeats: u64,
    /// Fixed frame-header bytes sent ([`HEADER_BYTES`] per frame);
    /// `bytes_tx == header_bytes_tx + payload_bytes_tx` always holds.
    #[serde(default)]
    pub header_bytes_tx: u64,
    /// Header bytes received.
    #[serde(default)]
    pub header_bytes_rx: u64,
    /// Payload bytes sent (everything after the 9-byte header — model
    /// payloads, ids, lengths, blobs). Under a lossy compression mode this
    /// is where the wire savings show up, while `model_bytes_tx` keeps
    /// reporting the logical 4 B/f32 accounting.
    #[serde(default)]
    pub payload_bytes_tx: u64,
    /// Payload bytes received.
    #[serde(default)]
    pub payload_bytes_rx: u64,
}

impl WireStats {
    pub fn add(&mut self, other: &WireStats) {
        self.frames_tx += other.frames_tx;
        self.frames_rx += other.frames_rx;
        self.bytes_tx += other.bytes_tx;
        self.bytes_rx += other.bytes_rx;
        self.model_bytes_tx += other.model_bytes_tx;
        self.model_bytes_rx += other.model_bytes_rx;
        self.heartbeats += other.heartbeats;
        self.header_bytes_tx += other.header_bytes_tx;
        self.header_bytes_rx += other.header_bytes_rx;
        self.payload_bytes_tx += other.payload_bytes_tx;
        self.payload_bytes_rx += other.payload_bytes_rx;
    }
}

fn tx_raw(
    stream: &mut TcpStream,
    frame: &[u8],
    model_bytes: u64,
    stats: &mut WireStats,
) -> Result<(), WireError> {
    let _span = span("net.frame.tx");
    stream.write_all(frame)?;
    stream.flush()?;
    stats.frames_tx += 1;
    stats.bytes_tx += frame.len() as u64;
    stats.header_bytes_tx += HEADER_BYTES as u64;
    stats.payload_bytes_tx += (frame.len() - HEADER_BYTES) as u64;
    stats.model_bytes_tx += model_bytes;
    NET_FRAMES_TX.incr();
    NET_BYTES_TX.add(frame.len() as u64);
    NET_MODEL_BYTES_TX.add(model_bytes);
    Ok(())
}

fn rx_frame(
    stream: &mut TcpStream,
    wire: &WireConfig,
    stats: &mut WireStats,
) -> Result<Message, WireError> {
    let _span = span("net.frame.rx");
    let (msg, bytes) = read_frame(stream, wire)?;
    stats.frames_rx += 1;
    stats.bytes_rx += bytes;
    stats.header_bytes_rx += HEADER_BYTES as u64;
    stats.payload_bytes_rx += bytes - HEADER_BYTES as u64;
    stats.model_bytes_rx += msg.model_bytes();
    NET_FRAMES_RX.incr();
    NET_BYTES_RX.add(bytes);
    NET_MODEL_BYTES_RX.add(msg.model_bytes());
    if matches!(msg, Message::Heartbeat { .. }) {
        stats.heartbeats += 1;
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// The networked [`Transport`]: client processes connect over TCP, join, and
/// are driven through the rounds by the same offers the in-process oracle
/// sees. Accepts happen via non-blocking polls (at construction, inside
/// [`wait_for_clients`](TcpTransport::wait_for_clients), and at each round
/// start) — no background threads, so the worker pool stays free for the
/// server's own synthesis/audit work.
pub struct TcpTransport {
    listener: TcpListener,
    cfg: NetConfig,
    expected: usize,
    welcome_param_len: u64,
    welcome_blob: String,
    compression: Compression,
    sessions: BTreeMap<usize, TcpStream>,
    /// Session events observed outside a round (setup joins, finish leaves);
    /// drained into the next exchange / the finish result.
    pending_events: Vec<SessionEvent>,
    wire_log: Arc<Mutex<Vec<WireStats>>>,
    /// Optional admin plane drained from the same nonblocking poll points
    /// as the join socket — operational requests are answered at every
    /// round boundary without a dedicated thread.
    admin: Option<Arc<Mutex<crate::admin::AdminPlane>>>,
}

impl TcpTransport {
    /// Bind `addr` and start accepting sessions for `expected` clients.
    /// `param_len` and `blob` (typically the serialized `ExperimentConfig`)
    /// are shipped to every client in `Welcome`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        expected: usize,
        param_len: u64,
        blob: String,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            listener,
            cfg,
            expected,
            welcome_param_len: param_len,
            welcome_blob: blob,
            compression: Compression::None,
            sessions: BTreeMap::new(),
            pending_events: Vec::new(),
            wire_log: Arc::new(Mutex::new(Vec::new())),
            admin: None,
        })
    }

    /// Set the wire-compression mode announced to every client in `Welcome`
    /// (the server's resolved mode is authoritative for the session). Must
    /// be called before any client joins.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        assert!(self.sessions.is_empty(), "set compression before clients join");
        self.compression = compression;
        self
    }

    /// The negotiated wire-compression mode.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// Attach an [`crate::admin::AdminPlane`]: its socket is polled from the
    /// same accept loop as client joins (round boundaries and the
    /// wait-for-clients spin), and its session gauge tracks this transport.
    /// The caller keeps a clone of the `Arc` to poll during post-run checks.
    pub fn with_admin(mut self, admin: Arc<Mutex<crate::admin::AdminPlane>>) -> Self {
        self.admin = Some(admin);
        self
    }

    /// The bound address (use with port 0 to discover the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Handle to the per-round wire statistics; clone it **before** handing
    /// the transport to a `Federation` (rounds push as they complete).
    pub fn wire_log(&self) -> Arc<Mutex<Vec<WireStats>>> {
        Arc::clone(&self.wire_log)
    }

    /// Currently joined client ids.
    pub fn joined(&self) -> Vec<usize> {
        self.sessions.keys().copied().collect()
    }

    /// Accept and handshake every connection currently pending. A connection
    /// that fails the handshake (bad first frame, wrong protocol version) is
    /// dropped silently — it never had a client id to attribute events to.
    pub fn poll_joins(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Some(id) = self.handshake(stream) {
                        self.pending_events.push(SessionEvent::new(id, SessionEventKind::Join));
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if let Some(admin) = &self.admin {
            let mut admin = admin.lock();
            admin.state().set_sessions(self.sessions.len());
            admin.poll();
        }
    }

    fn handshake(&mut self, mut stream: TcpStream) -> Option<usize> {
        let _span = span("net.handshake");
        stream.set_read_timeout(Some(self.cfg.read_timeout)).ok()?;
        stream.set_write_timeout(Some(self.cfg.write_timeout)).ok()?;
        stream.set_nodelay(true).ok();
        let mut stats = WireStats::default();
        let msg = rx_frame(&mut stream, &self.cfg.wire, &mut stats).ok()?;
        let Message::Join { client_id, protocol } = msg else { return None };
        if protocol != PROTOCOL_VERSION {
            return None;
        }
        let welcome = encode(&Message::Welcome {
            param_len: self.welcome_param_len,
            compression: self.compression,
            blob: self.welcome_blob.clone(),
        });
        tx_raw(&mut stream, &welcome, 0, &mut stats).ok()?;
        let id = client_id as usize;
        self.sessions.insert(id, stream);
        Some(id)
    }

    /// Poll for joins until the expected session count is reached or the
    /// join timeout expires (then errors with the ids still missing).
    pub fn wait_for_clients(&mut self) -> std::io::Result<()> {
        let deadline = Instant::now() + self.cfg.join_timeout;
        loop {
            self.poll_joins();
            if self.sessions.len() >= self.expected {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "only {}/{} clients joined within {:?}",
                        self.sessions.len(),
                        self.expected,
                        self.cfg.join_timeout
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Read one session's round response, skipping heartbeats. Returns the
    /// accepted update (if any); pushes faults/session events as they arise.
    /// `reference` is the round's reference model: a compressed upload's
    /// delta payload is folded back onto it, reconstructing the dense update
    /// bit-identically to what the in-process oracle produces.
    #[allow(clippy::too_many_arguments)]
    fn collect_response(
        stream: &mut TcpStream,
        id: usize,
        round: usize,
        active: bool,
        reference: &[f32],
        wire: &WireConfig,
        stats: &mut WireStats,
        faults: &mut Vec<FaultEvent>,
        sessions: &mut Vec<SessionEvent>,
    ) -> (Option<ModelUpdate>, bool) {
        // Returns (update, session_still_alive).
        loop {
            match rx_frame(stream, wire, stats) {
                Ok(Message::Heartbeat { .. }) => {
                    sessions.push(SessionEvent::new(id, SessionEventKind::Heartbeat));
                }
                Ok(Message::Upload { round: r, update }) if r as usize == round => {
                    if update.client_id != id {
                        faults.push(FaultEvent::new(
                            id,
                            FaultKind::FrameMalformed {
                                detail: format!(
                                    "upload claims client {} on session {id}",
                                    update.client_id
                                ),
                            },
                        ));
                        return (None, true);
                    }
                    if !active {
                        // A scheduled dropout that trained anyway would break
                        // oracle parity; refuse the submission.
                        faults.push(FaultEvent::new(
                            id,
                            FaultKind::FrameMalformed {
                                detail: "upload from non-participating client".to_string(),
                            },
                        ));
                        return (None, true);
                    }
                    return (Some(update), true);
                }
                Ok(Message::UploadCompressed { round: r, update }) if r as usize == round => {
                    if update.client_id != id {
                        faults.push(FaultEvent::new(
                            id,
                            FaultKind::FrameMalformed {
                                detail: format!(
                                    "upload claims client {} on session {id}",
                                    update.client_id
                                ),
                            },
                        ));
                        return (None, true);
                    }
                    if !active {
                        faults.push(FaultEvent::new(
                            id,
                            FaultKind::FrameMalformed {
                                detail: "upload from non-participating client".to_string(),
                            },
                        ));
                        return (None, true);
                    }
                    return (Some(decompress_update(&update, reference)), true);
                }
                Ok(Message::Decline { round: r }) if r as usize == round => {
                    if active {
                        // An active client refusing to train is, from the
                        // round's perspective, a dropout.
                        faults.push(FaultEvent::new(id, FaultKind::Dropout));
                    }
                    return (None, true);
                }
                Ok(Message::Leave { .. }) => {
                    sessions.push(SessionEvent::new(id, SessionEventKind::Leave));
                    if active {
                        faults.push(FaultEvent::new(id, FaultKind::Dropout));
                    }
                    return (None, false);
                }
                Ok(other) => {
                    faults.push(FaultEvent::new(
                        id,
                        FaultKind::FrameMalformed {
                            detail: format!("unexpected {} frame in round {round}", other.name()),
                        },
                    ));
                    return (None, true);
                }
                Err(e) => {
                    if active {
                        faults.push(FaultEvent::new(id, e.to_fault_kind()));
                    }
                    sessions.push(SessionEvent::new(id, SessionEventKind::Drop));
                    return (None, false);
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn exchange_round(&mut self, offer: &RoundOffer<'_>) -> RoundExchange {
        let _span = span("net.exchange_round");
        self.poll_joins();
        let mut stats = WireStats { round: offer.round, ..WireStats::default() };
        let mut exchange = RoundExchange::default();
        exchange.sessions.append(&mut self.pending_events);
        let active: HashSet<usize> = offer.active.iter().copied().collect();

        // Fan the work order out to every sampled session. Both frame
        // variants are encoded once; the global model is never cloned.
        // Under a compressed downlink the global is compressed once and the
        // reference model (what every client will actually receive, i.e. the
        // decoded broadcast) is reconstructed once for the whole round.
        let downlink_blob = (self.compression.downlink() != Compression::None)
            .then(|| compress_global(self.compression, offer.global));
        let reference = reference_global(self.compression, offer.global);
        let reference: &[f32] = reference.as_deref().unwrap_or(offer.global);
        let (frame_active, frame_idle) = match &downlink_blob {
            Some(blob) => (
                encode_round_start_compressed(offer.round as u64, true, blob),
                encode_round_start_compressed(offer.round as u64, false, blob),
            ),
            None => (
                encode_round_start(offer.round as u64, true, offer.global),
                encode_round_start(offer.round as u64, false, offer.global),
            ),
        };
        let model_bytes = offer.global.len() as u64 * 4;
        let mut notified: Vec<usize> = Vec::with_capacity(offer.sampled.len());
        for &id in offer.sampled {
            let participate = active.contains(&id);
            let Some(stream) = self.sessions.get_mut(&id) else {
                // Never joined (or already gone). The round loop has already
                // recorded scheduled dropouts; only an *active* client going
                // missing is transport-observed loss.
                if participate {
                    exchange.faults.push(FaultEvent::new(id, FaultKind::Dropout));
                }
                continue;
            };
            let frame = if participate { &frame_active } else { &frame_idle };
            match tx_raw(stream, frame, model_bytes, &mut stats) {
                Ok(()) => notified.push(id),
                Err(_) => {
                    if participate {
                        exchange.faults.push(FaultEvent::new(id, FaultKind::Dropout));
                    }
                    exchange.sessions.push(SessionEvent::new(id, SessionEventKind::Drop));
                    self.sessions.remove(&id);
                }
            }
        }

        // Collect responses in client-id order — the canonical arrival order
        // the oracle produces. Uploads from other sessions simply wait in
        // their kernel buffers until their turn.
        for id in notified {
            let Some(stream) = self.sessions.get_mut(&id) else { continue };
            let (update, alive) = Self::collect_response(
                stream,
                id,
                offer.round,
                active.contains(&id),
                reference,
                &self.cfg.wire,
                &mut stats,
                &mut exchange.faults,
                &mut exchange.sessions,
            );
            if let Some(update) = update {
                exchange.updates.push(update);
            }
            if !alive {
                self.sessions.remove(&id);
            }
        }
        exchange.updates.sort_by_key(|u| u.client_id);
        self.wire_log.lock().push(stats);
        exchange
    }

    fn finish(&mut self) -> Vec<SessionEvent> {
        let _span = span("net.finish");
        let mut events = std::mem::take(&mut self.pending_events);
        let mut stats = WireStats { round: usize::MAX, ..WireStats::default() };
        let shutdown = encode(&Message::Shutdown);
        let sessions = std::mem::take(&mut self.sessions);
        for (id, mut stream) in sessions {
            if tx_raw(&mut stream, &shutdown, 0, &mut stats).is_err() {
                events.push(SessionEvent::new(id, SessionEventKind::Drop));
                continue;
            }
            // Drain until the orderly Leave (skipping piled-up heartbeats).
            loop {
                match rx_frame(&mut stream, &self.cfg.wire, &mut stats) {
                    Ok(Message::Heartbeat { .. }) => {
                        events.push(SessionEvent::new(id, SessionEventKind::Heartbeat));
                    }
                    Ok(Message::Leave { .. }) => {
                        events.push(SessionEvent::new(id, SessionEventKind::Leave));
                        break;
                    }
                    Ok(_) | Err(_) => {
                        events.push(SessionEvent::new(id, SessionEventKind::Drop));
                        break;
                    }
                }
            }
        }
        if stats.frames_tx > 0 || stats.frames_rx > 0 {
            self.wire_log.lock().push(stats);
        }
        if let Some(admin) = &self.admin {
            let mut admin = admin.lock();
            admin.state().set_sessions(0);
            admin.poll();
        }
        events
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A remote client's session with the server: the TCP [`ClientChannel`].
pub struct TcpClientChannel {
    stream: TcpStream,
    client_id: usize,
    cfg: NetConfig,
    welcome_param_len: u64,
    welcome_blob: String,
    /// Wire-compression mode negotiated in `Welcome`; the server's resolved
    /// mode is authoritative.
    compression: Compression,
    /// The exact global this client received in the last round directive —
    /// the reference its next upload's delta is encoded against. Kept only
    /// when a compressed uplink needs it.
    reference: Vec<f32>,
    stats: WireStats,
}

impl TcpClientChannel {
    /// Connect to `addr` (retrying until the join timeout — the server may
    /// not be listening yet) and complete the `Join`/`Welcome` handshake.
    pub fn connect(
        addr: impl ToSocketAddrs + Clone,
        client_id: usize,
        cfg: NetConfig,
    ) -> Result<Self, WireError> {
        let deadline = Instant::now() + cfg.join_timeout;
        let mut stream = loop {
            match TcpStream::connect(addr.clone()) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(WireError::Io(e.kind()));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        stream.set_nodelay(true).ok();
        let mut stats = WireStats::default();
        let join =
            encode(&Message::Join { client_id: client_id as u64, protocol: PROTOCOL_VERSION });
        tx_raw(&mut stream, &join, 0, &mut stats)?;
        match rx_frame(&mut stream, &cfg.wire, &mut stats)? {
            Message::Welcome { param_len, compression, blob } => Ok(TcpClientChannel {
                stream,
                client_id,
                cfg,
                welcome_param_len: param_len,
                welcome_blob: blob,
                compression,
                reference: Vec::new(),
                stats,
            }),
            _ => Err(WireError::Malformed("expected Welcome after Join")),
        }
    }

    /// The wire-compression mode negotiated in `Welcome`.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// The global parameter count announced by the server.
    pub fn param_len(&self) -> u64 {
        self.welcome_param_len
    }

    /// The server's opaque welcome payload (the serialized experiment
    /// configuration in the shipped bins).
    pub fn welcome_blob(&self) -> &str {
        &self.welcome_blob
    }

    /// Cumulative wire traffic of this session so far.
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    fn send(&mut self, frame: &[u8], model_bytes: u64) -> Result<(), WireError> {
        tx_raw(&mut self.stream, frame, model_bytes, &mut self.stats)
    }
}

impl ClientChannel for TcpClientChannel {
    fn request_round(&mut self) -> Result<Directive, WireError> {
        // Idle loop: wait in heartbeat-sized slices so the server sees
        // liveness, up to the overall read deadline. (A timeout can only
        // fire between frames here — the server writes each directive as one
        // uninterrupted frame, so a mid-frame stall means a dead peer and
        // the resulting desync error is the right outcome.)
        self.stream.set_read_timeout(Some(self.cfg.heartbeat_interval))?;
        let deadline = Instant::now() + self.cfg.read_timeout;
        let result = loop {
            match rx_frame(&mut self.stream, &self.cfg.wire, &mut self.stats) {
                Ok(Message::RoundStart { round, participate, global }) => {
                    if self.compression != Compression::None {
                        // The dense broadcast *is* the reference (top-k
                        // mode's downlink stays dense).
                        self.reference = global.clone();
                    }
                    break Ok(Directive::Round { round: round as usize, participate, global });
                }
                Ok(Message::RoundStartCompressed { round, participate, blob }) => {
                    // The decoded broadcast is both the model to train on
                    // and the reference for this round's delta encoding —
                    // exactly what the server reconstructs on its side.
                    crate::compress::decompress_blob_into(&blob, &mut self.reference);
                    break Ok(Directive::Round {
                        round: round as usize,
                        participate,
                        global: self.reference.clone(),
                    });
                }
                Ok(Message::Shutdown) => break Ok(Directive::Shutdown),
                Ok(_) => break Err(WireError::Malformed("unexpected frame while awaiting round")),
                Err(ref e) if e.is_timeout() => {
                    if Instant::now() >= deadline {
                        break Err(WireError::Io(std::io::ErrorKind::TimedOut));
                    }
                    let hb = encode(&Message::Heartbeat { client_id: self.client_id as u64 });
                    if let Err(e) = self.send(&hb, 0) {
                        break Err(e);
                    }
                }
                Err(e) => break Err(e),
            }
        };
        self.stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        result
    }

    fn upload_update(&mut self, round: usize, update: &ModelUpdate) -> Result<(), WireError> {
        let frame = if self.compression == Compression::None {
            encode_upload(round as u64, update)
        } else {
            let compressed = compress_update(self.compression, update, &self.reference);
            encode_upload_compressed(round as u64, &compressed)
        };
        self.send(&frame, update.wire_bytes())
    }

    fn decline_round(&mut self, round: usize) -> Result<(), WireError> {
        let frame = encode(&Message::Decline { round: round as u64 });
        self.send(&frame, 0)
    }

    fn leave(&mut self) -> Result<(), WireError> {
        let frame = encode(&Message::Leave { client_id: self.client_id as u64 });
        self.send(&frame, 0)
    }
}

/// Outcome of one remote client's full run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientRunReport {
    /// Rounds this client trained and uploaded for.
    pub rounds_participated: usize,
    /// Rounds this client was told to sit out (scheduled dropout).
    pub rounds_declined: usize,
}

/// Drive one client through a full federated run: request directives, train
/// and upload (applying `interceptor` exactly where the oracle's
/// `LocalTransport` applies it), decline scheduled dropouts, leave on
/// shutdown. This is the loop `fed_client` runs.
pub fn run_federated_client(
    channel: &mut dyn ClientChannel,
    client: &mut Client,
    interceptor: &dyn crate::client::UpdateInterceptor,
) -> Result<ClientRunReport, WireError> {
    let mut report = ClientRunReport::default();
    loop {
        match channel.request_round()? {
            Directive::Round { round, participate: true, global } => {
                let mut update = {
                    let _span = span("client.train");
                    client.train_round(&global, round)
                };
                interceptor.intercept(&mut update, round);
                channel.upload_update(round, &update)?;
                report.rounds_participated += 1;
            }
            Directive::Round { round, participate: false, .. } => {
                channel.decline_round(round)?;
                report.rounds_declined += 1;
            }
            Directive::Shutdown => {
                channel.leave()?;
                return Ok(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NoAttack;
    use crate::config::LocalTrainConfig;
    use fg_data::synth::generate_dataset;
    use fg_nn::models::ClassifierSpec;
    use fg_tensor::rng::SeededRng;

    fn fast_cfg() -> NetConfig {
        NetConfig {
            read_timeout: Duration::from_secs(20),
            write_timeout: Duration::from_secs(10),
            join_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_secs(5),
            wire: WireConfig::default(),
        }
    }

    fn toy_client(id: usize) -> Client {
        Client::new(
            id,
            generate_dataset(3, 40 + id as u64),
            ClassifierSpec::Mlp { hidden: 8 },
            LocalTrainConfig { epochs: 1, batch_size: 8, lr: 0.05, momentum: 0.0, prox_mu: 0.0 },
            None,
            SeededRng::new(7).fork(id as u64).seed(),
        )
    }

    fn bind_server(expected: usize) -> (TcpTransport, SocketAddr) {
        let t = TcpTransport::bind("127.0.0.1:0", expected, 13, "cfg-blob".to_string(), fast_cfg())
            .expect("bind loopback");
        let addr = t.local_addr().unwrap();
        (t, addr)
    }

    #[test]
    fn loopback_round_trip_with_two_clients() {
        let (mut server, addr) = bind_server(2);
        let workers: Vec<_> = (0..2)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut ch = TcpClientChannel::connect(addr, id, fast_cfg()).expect("connect");
                    assert_eq!(ch.param_len(), 13);
                    assert_eq!(ch.welcome_blob(), "cfg-blob");
                    let mut client = toy_client(id);
                    run_federated_client(&mut ch, &mut client, &NoAttack).expect("client run")
                })
            })
            .collect();

        server.wait_for_clients().expect("both clients join");
        assert_eq!(server.joined(), vec![0, 1]);
        let wire_log = server.wire_log();

        let psi = fg_nn::models::Classifier::new(
            &ClassifierSpec::Mlp { hidden: 8 },
            &mut SeededRng::new(0),
        )
        .get_params()
        .len();
        let global = vec![0.25f32; psi];

        let sampled = vec![0usize, 1];
        let active = vec![0usize]; // client 1 is a scheduled dropout
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &active };
        let exchange = server.exchange_round(&offer);
        assert_eq!(exchange.updates.len(), 1);
        assert_eq!(exchange.updates[0].client_id, 0);
        assert_eq!(exchange.updates[0].params.len(), psi);
        assert!(exchange.faults.is_empty(), "{:?}", exchange.faults);
        // Both clients joined during setup.
        let joins = exchange.sessions.iter().filter(|e| e.kind == SessionEventKind::Join).count();
        assert_eq!(joins, 2);

        // Round 2: everyone trains.
        let active = vec![0usize, 1];
        let offer = RoundOffer { round: 1, global: &global, sampled: &sampled, active: &active };
        let exchange = server.exchange_round(&offer);
        let ids: Vec<usize> = exchange.updates.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![0, 1]);

        let finish_events = server.finish();
        let leaves = finish_events.iter().filter(|e| e.kind == SessionEventKind::Leave).count();
        assert_eq!(leaves, 2);

        let reports: Vec<ClientRunReport> =
            workers.into_iter().map(|w| w.join().expect("client thread")).collect();
        assert_eq!(reports[0], ClientRunReport { rounds_participated: 2, rounds_declined: 0 });
        assert_eq!(reports[1], ClientRunReport { rounds_participated: 1, rounds_declined: 1 });

        // Wire accounting: round 0 sent the global to both sampled clients
        // (dropout included — that is how the paper counts uploads) and
        // received exactly one model update.
        let log = wire_log.lock();
        let r0 = log.iter().find(|s| s.round == 0).expect("round 0 stats");
        assert_eq!(r0.model_bytes_tx, psi as u64 * 4 * 2);
        assert_eq!(r0.model_bytes_rx, psi as u64 * 4);
        let r1 = log.iter().find(|s| s.round == 1).expect("round 1 stats");
        assert_eq!(r1.model_bytes_rx, psi as u64 * 4 * 2);
    }

    #[test]
    fn malformed_frame_becomes_a_fault_not_a_panic() {
        let (mut server, addr) = bind_server(1);
        let evil = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let join = encode(&Message::Join { client_id: 0, protocol: PROTOCOL_VERSION });
            s.write_all(&join).unwrap();
            let wire_cfg = fast_cfg().wire;
            let _welcome = read_frame(&mut s, &wire_cfg).unwrap();
            // Await the round start, then answer with garbage bytes dressed
            // as a huge frame.
            let _round_start = read_frame(&mut s, &wire_cfg).unwrap();
            let mut bad = Vec::new();
            bad.extend_from_slice(&crate::wire::MAGIC.to_le_bytes());
            bad.push(4); // Upload kind
            bad.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
            s.write_all(&bad).unwrap();
            // Server should cut us off; swallow whatever happens next.
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = read_frame(&mut s, &wire_cfg);
        });

        server.wait_for_clients().unwrap();
        let global = vec![0.0f32; 4];
        let sampled = vec![0usize];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &sampled };
        let exchange = server.exchange_round(&offer);
        assert!(exchange.updates.is_empty());
        assert!(
            exchange
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::FrameOversized { declared, .. } if declared == u32::MAX as u64)),
            "{:?}",
            exchange.faults
        );
        // The offending session was dropped.
        assert!(exchange.sessions.iter().any(|e| e.kind == SessionEventKind::Drop));
        assert!(server.joined().is_empty());
        server.finish();
        evil.join().unwrap();
    }

    #[test]
    fn disconnect_mid_round_maps_to_dropout() {
        let (mut server, addr) = bind_server(1);
        let quitter = std::thread::spawn(move || {
            let mut ch = TcpClientChannel::connect(addr, 3, fast_cfg()).unwrap();
            // Receive the round start, then vanish without a word.
            let d = ch.request_round().unwrap();
            assert!(matches!(d, Directive::Round { participate: true, .. }));
            drop(ch);
        });
        server.wait_for_clients().unwrap();
        let global = vec![1.0f32; 8];
        let sampled = vec![3usize];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &sampled };
        let exchange = server.exchange_round(&offer);
        assert!(exchange.updates.is_empty());
        assert_eq!(
            exchange.faults,
            vec![FaultEvent::new(3, FaultKind::Dropout)],
            "disconnect should read as a dropout"
        );
        assert!(exchange.sessions.iter().any(|e| e.kind == SessionEventKind::Drop));
        quitter.join().unwrap();
        assert!(server.finish().is_empty());
    }

    #[test]
    fn never_joined_active_client_is_a_dropout() {
        let (mut server, _addr) = bind_server(0);
        let global = vec![0.0f32; 2];
        let sampled = vec![5usize, 6];
        let active = vec![5usize];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &active };
        let exchange = server.exchange_round(&offer);
        // Active-but-absent 5 is a transport dropout; scheduled-dropout 6 is
        // already accounted by the round loop and must not double-report.
        assert_eq!(exchange.faults, vec![FaultEvent::new(5, FaultKind::Dropout)]);
    }
}
