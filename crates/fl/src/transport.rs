//! The server↔client exchange as a pluggable `Transport`.
//!
//! [`Federation::run_round`](crate::Federation::run_round) no longer touches
//! clients directly: it hands the round's work order (a [`RoundOffer`]) to a
//! [`Transport`] and gets back the trained submissions (a [`RoundExchange`]).
//! Everything else — sampling, the seeded fault schedule, transit-fault
//! injection, sanitization, aggregation — stays on the server side of the
//! trait, identical across deployments. That split is what makes the
//! in-process path the *oracle*: [`LocalTransport`] and
//! [`TcpTransport`](crate::net::TcpTransport) receive the same offers and
//! must return the same updates, so a seeded loopback run is bit-identical
//! to the single-process run (asserted in `tests/net_equivalence.rs`).
//!
//! Two implementations ship:
//! * [`LocalTransport`] — the classic simulation: clients live in this
//!   process and train on the rayon-shim worker pool.
//! * [`TcpTransport`](crate::net::TcpTransport) — clients are separate
//!   processes speaking the [`crate::wire`] protocol over TCP.
//!
//! The client side of the wire is the [`ClientChannel`] trait: a remote
//! client's round loop (`request_round` → train → `upload_update`) against
//! whatever carries the frames.

use crate::client::{Client, NoAttack, UpdateInterceptor};
use crate::compress::{
    compress_global, compress_update, decompress_blob_into, decompress_update, sparse_update,
    CompressedUpdate, Compression, SparseUpdate,
};
use crate::fault::FaultEvent;
use crate::update::ModelUpdate;
use crate::wire::{
    self, encode_round_start, encode_round_start_compressed, encode_upload_compressed, Message,
    WireConfig, WireError,
};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::sync::Arc;

/// Which deployment carried a round's exchange; recorded in
/// [`RoundTelemetry`](crate::telemetry::RoundTelemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportKind {
    /// In-process clients on the worker pool (the simulation oracle).
    #[default]
    Local,
    /// Separate client processes over TCP ([`crate::net`]).
    Tcp,
}

impl TransportKind {
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Local => "local",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// A client-session lifecycle incident observed by the transport during one
/// round (or during setup, attributed to the first round). The local
/// transport never emits any; the TCP transport records joins, idle-period
/// heartbeats, orderly leaves and mid-round connection drops.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionEvent {
    pub client_id: usize,
    pub kind: SessionEventKind,
}

impl SessionEvent {
    pub fn new(client_id: usize, kind: SessionEventKind) -> Self {
        SessionEvent { client_id, kind }
    }
}

/// What happened to the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEventKind {
    /// The client connected and completed the join handshake.
    Join,
    /// A liveness heartbeat arrived while the server awaited a submission.
    Heartbeat,
    /// The connection died (EOF, reset, timeout); the session is gone.
    Drop,
    /// The client closed its session in an orderly fashion.
    Leave,
}

/// One round's work order, assembled by the server's round loop.
///
/// `sampled` is every client drawn into the round; `active` is the subset
/// the seeded fault plan did **not** schedule to drop out — only they train.
/// Both are sorted ascending. The distinction matters on the wire: a TCP
/// server still notifies scheduled dropouts (with `participate = false`) so
/// the paper's upload accounting (`m × ψ` including dropouts) holds, but the
/// client must not train, keeping its decoder cache bit-identical to the
/// in-process run.
pub struct RoundOffer<'a> {
    pub round: usize,
    pub global: &'a [f32],
    pub sampled: &'a [usize],
    pub active: &'a [usize],
}

/// What came back from the clients.
///
/// `updates` holds one trained (and possibly attack-intercepted) submission
/// per active client that actually delivered, **sorted by client id** — the
/// canonical arrival order both transports produce, so downstream fault
/// injection and sanitization see identical sequences. `faults` carries
/// transport-observed losses (e.g. a TCP disconnect mid-round → `Dropout`,
/// a malformed frame → `FrameMalformed`); the local transport never loses a
/// submission. `sessions` carries the round's session-lifecycle events.
#[derive(Debug, Default)]
pub struct RoundExchange {
    pub updates: Vec<ModelUpdate>,
    pub faults: Vec<FaultEvent>,
    pub sessions: Vec<SessionEvent>,
}

/// The non-update remainder of a streamed exchange: everything a
/// [`RoundExchange`] carries besides the updates themselves, returned by
/// [`Transport::exchange_round_streamed`] after the last submission has been
/// pushed into the sink.
#[derive(Debug, Default)]
pub struct ExchangeTail {
    pub faults: Vec<FaultEvent>,
    pub sessions: Vec<SessionEvent>,
}

/// One submission leaving a streamed exchange. Most arrive dense; a top-k
/// compressed submission on the in-process path stays sparse all the way to
/// the aggregation fold (the decoded deltas against the round's reference
/// model), so no full f32 vector is materialized for it. A transport that
/// reconstructs densely (TCP today) simply never emits `Sparse` — the fold
/// result is bit-identical either way (see
/// [`StreamingAggregator::push_sparse`](crate::strategy::StreamingAggregator::push_sparse)).
#[derive(Clone, Debug, PartialEq)]
pub enum IncomingUpdate {
    Dense(ModelUpdate),
    Sparse(SparseUpdate),
}

impl IncomingUpdate {
    /// The submitting client.
    pub fn client_id(&self) -> usize {
        match self {
            IncomingUpdate::Dense(u) => u.client_id,
            IncomingUpdate::Sparse(s) => s.client_id,
        }
    }
}

/// Server-side transport: delivers the global model to the round's clients
/// and collects their submissions. Implementations must return updates
/// sorted by client id and must not reorder, drop, or synthesize
/// submissions beyond what they report as faults.
pub trait Transport: Send {
    /// Which deployment this is (stamped into telemetry).
    fn kind(&self) -> TransportKind;

    /// Run one round's exchange.
    fn exchange_round(&mut self, offer: &RoundOffer<'_>) -> RoundExchange;

    /// Streaming variant of [`exchange_round`](Transport::exchange_round):
    /// hand each submission to `sink` as it becomes available — in ascending
    /// client-id order for implementations that control arrival order — so
    /// the server can fold updates into an O(d) accumulator instead of
    /// holding all m in memory. Same delivery contract as `exchange_round`
    /// (each active client at most once, losses reported as faults).
    ///
    /// The default implementation adapts `exchange_round` by replaying its
    /// batch through the sink: correct for any transport, but it still
    /// materializes O(m·d) inside the exchange. [`LocalTransport`] overrides
    /// it to train-and-sink one client at a time.
    fn exchange_round_streamed(
        &mut self,
        offer: &RoundOffer<'_>,
        sink: &mut dyn FnMut(IncomingUpdate),
    ) -> ExchangeTail {
        let RoundExchange { updates, faults, sessions } = self.exchange_round(offer);
        for update in updates {
            sink(IncomingUpdate::Dense(update));
        }
        ExchangeTail { faults, sessions }
    }

    /// The run is over: release clients (a TCP transport sends `Shutdown`
    /// and drains `Leave`s). Returns the final session events.
    fn finish(&mut self) -> Vec<SessionEvent> {
        Vec::new()
    }

    /// Downcast hook so callers holding a `Box<dyn Transport>` can reach
    /// implementation-specific state (e.g. [`LocalTransport::client_mut`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Transport for Box<dyn Transport> {
    fn kind(&self) -> TransportKind {
        (**self).kind()
    }

    fn exchange_round(&mut self, offer: &RoundOffer<'_>) -> RoundExchange {
        (**self).exchange_round(offer)
    }

    fn exchange_round_streamed(
        &mut self,
        offer: &RoundOffer<'_>,
        sink: &mut dyn FnMut(IncomingUpdate),
    ) -> ExchangeTail {
        (**self).exchange_round_streamed(offer, sink)
    }

    fn finish(&mut self) -> Vec<SessionEvent> {
        (**self).finish()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        (**self).as_any_mut()
    }
}

/// The in-process deployment: clients live in this process, train in
/// parallel on the worker pool, and the attack interceptor runs right after
/// each client's training — exactly the classic simulation loop.
///
/// With a wire-compression mode set, the oracle routes every model payload
/// through the **real wire frames** — encode → [`wire::decode`] on both the
/// downlink broadcast and each uplink submission — so a compressed
/// in-process run exercises byte-for-byte the codec path a TCP deployment
/// runs, and stays bit-identical to it.
pub struct LocalTransport {
    clients: Vec<Mutex<Client>>,
    interceptor: Arc<dyn UpdateInterceptor>,
    compression: Compression,
}

impl LocalTransport {
    pub fn new(clients: Vec<Client>, interceptor: Arc<dyn UpdateInterceptor>) -> Self {
        LocalTransport {
            clients: clients.into_iter().map(Mutex::new).collect(),
            interceptor,
            compression: Compression::None,
        }
    }

    /// In-process clients with no attack.
    pub fn honest(clients: Vec<Client>) -> Self {
        Self::new(clients, Arc::new(NoAttack))
    }

    /// Set the wire-compression mode. Every round's broadcast and every
    /// submission then travel through real encode→decode wire frames.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// The active wire-compression mode.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Mutable access to a client (e.g. to install a poisoned dataset or a
    /// [`DataStream`](crate::client::DataStream)).
    pub fn client_mut(&mut self, id: usize) -> &mut Client {
        self.clients[id].get_mut()
    }

    /// The reference model for a compressed round: the broadcast frame is
    /// actually encoded and decoded (kind 10 when the mode compresses the
    /// downlink, the dense kind 3 otherwise — top-k rides a dense downlink),
    /// and what comes out is what every client trains on *and* the base its
    /// delta is encoded against — exactly the TCP client's view. `None`
    /// when no compression is configured (the dense path stays untouched).
    fn wire_reference(&self, offer: &RoundOffer<'_>) -> Option<Vec<f32>> {
        if self.compression == Compression::None {
            return None;
        }
        let frame = match self.compression.downlink() {
            Compression::None => encode_round_start(offer.round as u64, true, offer.global),
            _ => {
                let blob = compress_global(self.compression, offer.global);
                encode_round_start_compressed(offer.round as u64, true, &blob)
            }
        };
        let (msg, _) = wire::decode(&frame, &WireConfig::default())
            .expect("oracle-encoded round-start frame decodes");
        match msg {
            Message::RoundStart { global, .. } => Some(global),
            Message::RoundStartCompressed { blob, .. } => {
                let mut global = Vec::new();
                decompress_blob_into(&blob, &mut global);
                Some(global)
            }
            _ => unreachable!("round-start frame decodes to a round-start message"),
        }
    }

    /// Push one trained submission through the real uplink wire frame:
    /// compress against `reference`, encode the kind-9 frame, decode it
    /// back. Returns the compressed update exactly as a TCP server's
    /// `collect_response` would hold it.
    fn wire_roundtrip_update(
        mode: Compression,
        round: usize,
        update: &ModelUpdate,
        reference: &[f32],
    ) -> CompressedUpdate {
        let compressed = compress_update(mode, update, reference);
        let frame = encode_upload_compressed(round as u64, &compressed);
        let (msg, _) = wire::decode(&frame, &WireConfig::default())
            .expect("oracle-encoded upload frame decodes");
        match msg {
            Message::UploadCompressed { update, .. } => update,
            _ => unreachable!("upload frame decodes to an upload message"),
        }
    }
}

impl Transport for LocalTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Local
    }

    fn exchange_round(&mut self, offer: &RoundOffer<'_>) -> RoundExchange {
        // Parallel local training + attack interception. Each client trains
        // from its own forked RNG stream, so the result is bit-identical at
        // any thread count; the sort restores the canonical order. When a
        // compression mode is active, clients train on the wire-decoded
        // reference and every submission round-trips the real uplink frame.
        let mode = self.compression;
        let reference = self.wire_reference(offer);
        let trained_on: &[f32] = reference.as_deref().unwrap_or(offer.global);
        let clients = &self.clients;
        let interceptor = &self.interceptor;
        let mut updates: Vec<ModelUpdate> = offer
            .active
            .par_iter()
            .map(|&id| {
                let _span = fg_obs::span::span("client.train");
                let mut client = clients[id].lock();
                let mut update = client.train_round(trained_on, offer.round);
                interceptor.intercept(&mut update, offer.round);
                match &reference {
                    Some(reference) => {
                        let cu = Self::wire_roundtrip_update(mode, offer.round, &update, reference);
                        decompress_update(&cu, reference)
                    }
                    None => update,
                }
            })
            .collect();
        updates.sort_by_key(|u| u.client_id);
        RoundExchange { updates, faults: Vec::new(), sessions: Vec::new() }
    }

    fn exchange_round_streamed(
        &mut self,
        offer: &RoundOffer<'_>,
        sink: &mut dyn FnMut(IncomingUpdate),
    ) -> ExchangeTail {
        // Train-and-sink one client at a time, in ascending id order (the
        // canonical order the batch path's sort produces), so only a single
        // update is ever materialized — O(d) residency. The cross-client
        // fan-out is given up for that; each client's training still runs
        // its kernels on the worker pool, and every update is bit-identical
        // to the batch path's (per-client forked RNG streams). A top-k
        // submission stays sparse through the sink, preserving O(d) — the
        // decoded (idx, val) deltas go straight to the aggregation fold.
        let mode = self.compression;
        let reference = self.wire_reference(offer);
        let trained_on: &[f32] = reference.as_deref().unwrap_or(offer.global);
        let mut ids = offer.active.to_vec();
        ids.sort_unstable();
        for id in ids {
            let _span = fg_obs::span::span("client.train");
            let mut update = self.clients[id].lock().train_round(trained_on, offer.round);
            self.interceptor.intercept(&mut update, offer.round);
            match &reference {
                Some(reference) => {
                    let cu = Self::wire_roundtrip_update(mode, offer.round, &update, reference);
                    match sparse_update(&cu) {
                        Some(s) => sink(IncomingUpdate::Sparse(s)),
                        None => sink(IncomingUpdate::Dense(decompress_update(&cu, reference))),
                    }
                }
                None => sink(IncomingUpdate::Dense(update)),
            }
        }
        ExchangeTail::default()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// What the server told a connected client to do next.
#[derive(Clone, Debug, PartialEq)]
pub enum Directive {
    /// Train for `round` from `global` and upload — unless `participate` is
    /// false (the seeded fault plan scheduled this client to drop out), in
    /// which case decline without training.
    Round { round: usize, participate: bool, global: Vec<f32> },
    /// The run is over; send `Leave` and close.
    Shutdown,
}

/// Client-side handle on the server: the counterpart of [`Transport`], used
/// by a remote client's round loop (`crate::net::run_federated_client`).
pub trait ClientChannel {
    /// Block (with the channel's read deadline, sending heartbeats while
    /// idle) until the server issues the next [`Directive`].
    fn request_round(&mut self) -> Result<Directive, WireError>;

    /// Deliver the trained submission for `round`.
    fn upload_update(&mut self, round: usize, update: &ModelUpdate) -> Result<(), WireError>;

    /// Tell the server there will be no submission for `round`.
    fn decline_round(&mut self, round: usize) -> Result<(), WireError>;

    /// Close the session in an orderly fashion.
    fn leave(&mut self) -> Result<(), WireError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LocalTrainConfig;
    use fg_data::synth::generate_dataset;
    use fg_nn::models::{Classifier, ClassifierSpec};
    use fg_tensor::rng::SeededRng;

    fn toy_clients(n: usize) -> Vec<Client> {
        (0..n)
            .map(|id| {
                Client::new(
                    id,
                    generate_dataset(4, 10 + id as u64),
                    ClassifierSpec::Mlp { hidden: 12 },
                    LocalTrainConfig {
                        epochs: 1,
                        batch_size: 8,
                        lr: 0.05,
                        momentum: 0.0,
                        prox_mu: 0.0,
                    },
                    None,
                    SeededRng::new(99).fork(id as u64).seed(),
                )
            })
            .collect()
    }

    fn toy_global() -> Vec<f32> {
        Classifier::new(&ClassifierSpec::Mlp { hidden: 12 }, &mut SeededRng::new(0)).get_params()
    }

    #[test]
    fn local_transport_trains_active_clients_in_id_order() {
        let mut t = LocalTransport::honest(toy_clients(5));
        assert_eq!(t.kind(), TransportKind::Local);
        let global = toy_global();
        let sampled = vec![0, 2, 3, 4];
        let active = vec![4, 0, 3]; // deliberately unsorted; 2 "dropped out"
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &active };
        let exchange = t.exchange_round(&offer);
        let ids: Vec<usize> = exchange.updates.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![0, 3, 4]);
        assert!(exchange.faults.is_empty());
        assert!(exchange.sessions.is_empty());
        assert!(t.finish().is_empty());
    }

    #[test]
    fn local_transport_is_deterministic() {
        let global = toy_global();
        let sampled = vec![0, 1, 2];
        let offer = RoundOffer { round: 1, global: &global, sampled: &sampled, active: &sampled };
        let a = LocalTransport::honest(toy_clients(3)).exchange_round(&offer);
        let b = LocalTransport::honest(toy_clients(3)).exchange_round(&offer);
        assert_eq!(a.updates, b.updates);
    }

    #[test]
    fn streamed_exchange_matches_batch_exchange_bitwise() {
        let global = toy_global();
        let sampled = vec![0, 1, 3, 4];
        let active = vec![4, 0, 3]; // unsorted on purpose
        let offer = RoundOffer { round: 2, global: &global, sampled: &sampled, active: &active };
        let batch = LocalTransport::honest(toy_clients(5)).exchange_round(&offer);
        let mut streamed = Vec::new();
        let tail = LocalTransport::honest(toy_clients(5))
            .exchange_round_streamed(&offer, &mut |u| streamed.push(dense(u)));
        assert_eq!(batch.updates, streamed, "streamed updates diverged from batch");
        assert!(tail.faults.is_empty() && tail.sessions.is_empty());
        // The default (adapter) implementation replays the batch through the
        // sink — same contract for transports without a native override.
        struct Replay(LocalTransport);
        impl Transport for Replay {
            fn kind(&self) -> TransportKind {
                TransportKind::Local
            }
            fn exchange_round(&mut self, offer: &RoundOffer<'_>) -> RoundExchange {
                self.0.exchange_round(offer)
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut replayed = Vec::new();
        let tail = Replay(LocalTransport::honest(toy_clients(5)))
            .exchange_round_streamed(&offer, &mut |u| replayed.push(dense(u)));
        assert_eq!(batch.updates, replayed, "default adapter diverged from batch");
        assert!(tail.faults.is_empty());
    }

    /// Unwrap a streamed submission that is expected to be dense.
    fn dense(u: IncomingUpdate) -> ModelUpdate {
        match u {
            IncomingUpdate::Dense(u) => u,
            IncomingUpdate::Sparse(s) => {
                panic!("unexpected sparse submission from client {}", s.client_id)
            }
        }
    }

    #[test]
    fn compressed_exchange_round_trips_the_real_wire_frames() {
        let global = toy_global();
        let sampled = vec![0, 1, 2];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &sampled };
        let plain = LocalTransport::honest(toy_clients(3)).exchange_round(&offer);
        for mode in
            [Compression::Bf16, Compression::Int8 { block: 64 }, Compression::TopK { frac: 0.25 }]
        {
            let mut t = LocalTransport::honest(toy_clients(3)).with_compression(mode);
            assert_eq!(t.compression(), mode);
            let exchange = t.exchange_round(&offer);
            let ids: Vec<usize> = exchange.updates.iter().map(|u| u.client_id).collect();
            assert_eq!(ids, sampled, "{}: id order", mode.name());
            for (lossy, dense) in exchange.updates.iter().zip(&plain.updates) {
                assert_eq!(lossy.params.len(), dense.params.len());
                assert_eq!(lossy.num_samples, dense.num_samples);
                assert!(lossy.params.iter().all(|x| x.is_finite()), "{}: finite", mode.name());
                // Lossy, but close: the codec quantizes a one-round delta.
                let drift = lossy
                    .params
                    .iter()
                    .zip(&dense.params)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                assert!(drift < 0.05, "{}: max drift {drift} too large", mode.name());
            }
        }
    }

    #[test]
    fn compressed_streamed_exchange_matches_compressed_batch_bitwise() {
        let global = toy_global();
        let sampled = vec![0, 1, 2, 3];
        let offer = RoundOffer { round: 1, global: &global, sampled: &sampled, active: &sampled };
        for mode in [Compression::Bf16, Compression::Int8 { block: 4096 }] {
            let batch = LocalTransport::honest(toy_clients(4))
                .with_compression(mode)
                .exchange_round(&offer);
            let mut streamed = Vec::new();
            LocalTransport::honest(toy_clients(4))
                .with_compression(mode)
                .exchange_round_streamed(&offer, &mut |u| streamed.push(dense(u)));
            assert_eq!(batch.updates, streamed, "{}: streamed vs batch", mode.name());
        }
    }

    #[test]
    fn topk_streamed_exchange_stays_sparse_and_reconstructs_bitwise() {
        let mode = Compression::TopK { frac: 0.2 };
        let global = toy_global();
        let sampled = vec![0, 1, 2];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &sampled };
        let batch =
            LocalTransport::honest(toy_clients(3)).with_compression(mode).exchange_round(&offer);
        // The streamed path must deliver every top-k submission sparse; its
        // dense reconstruction (reference + deltas at idx) must match the
        // batch path's decompressed update bit-for-bit.
        let mut sparse = Vec::new();
        LocalTransport::honest(toy_clients(3)).with_compression(mode).exchange_round_streamed(
            &offer,
            &mut |u| match u {
                IncomingUpdate::Sparse(s) => sparse.push(s),
                IncomingUpdate::Dense(u) => {
                    panic!("top-k streamed dense for client {}", u.client_id)
                }
            },
        );
        assert_eq!(sparse.len(), batch.updates.len());
        for (s, dense) in sparse.iter().zip(&batch.updates) {
            assert_eq!(s.client_id, dense.client_id);
            assert_eq!(s.raw_len, dense.params.len());
            // Top-k rides a dense downlink, so the reference is the global.
            let mut rebuilt = global.clone();
            for (&i, &v) in s.idx.iter().zip(&s.val) {
                rebuilt[i as usize] = global[i as usize] + v;
            }
            let same = rebuilt.iter().zip(&dense.params).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "sparse reconstruction diverged for client {}", s.client_id);
        }
    }

    #[test]
    fn interceptor_runs_inside_the_exchange() {
        struct Mark;
        impl UpdateInterceptor for Mark {
            fn intercept(&self, update: &mut ModelUpdate, _round: usize) {
                if update.client_id == 1 {
                    update.params.iter_mut().for_each(|x| *x = 7.0);
                }
            }
            fn malicious_clients(&self) -> Vec<usize> {
                vec![1]
            }
        }
        let mut t = LocalTransport::new(toy_clients(2), Arc::new(Mark));
        let global = toy_global();
        let sampled = vec![0, 1];
        let offer = RoundOffer { round: 0, global: &global, sampled: &sampled, active: &sampled };
        let exchange = t.exchange_round(&offer);
        assert!(exchange.updates[1].params.iter().all(|&x| x == 7.0));
        assert!(exchange.updates[0].params.iter().any(|&x| x != 7.0));
    }

    #[test]
    fn client_mut_reaches_through_the_trait_object() {
        let mut boxed: Box<dyn Transport> = Box::new(LocalTransport::honest(toy_clients(2)));
        let local =
            boxed.as_any_mut().downcast_mut::<LocalTransport>().expect("local transport downcasts");
        assert_eq!(local.client_mut(1).id(), 1);
        assert_eq!(local.n_clients(), 2);
    }

    #[test]
    fn session_events_serialize_under_the_v2_schema() {
        let events = vec![
            SessionEvent::new(0, SessionEventKind::Join),
            SessionEvent::new(1, SessionEventKind::Heartbeat),
            SessionEvent::new(2, SessionEventKind::Drop),
            SessionEvent::new(0, SessionEventKind::Leave),
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<SessionEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        assert_eq!(TransportKind::default(), TransportKind::Local);
        let kind: TransportKind = serde_json::from_str("\"Tcp\"").unwrap();
        assert_eq!(kind, TransportKind::Tcp);
        assert_eq!(kind.name(), "tcp");
    }
}
