//! The federated client (Alg. 1, `Client` function).

use crate::config::{CvaeTrainConfig, FederationConfig, LocalTrainConfig};
use crate::update::ModelUpdate;
use fg_data::Dataset;
use fg_nn::models::{Classifier, ClassifierSpec, Cvae};
use fg_nn::optim::{Adam, Sgd};
use fg_tensor::rng::SeededRng;

/// Hook through which poisoning attacks corrupt a client's submission before
/// it reaches the server. The federation applies the interceptor to every
/// sampled client each round; benign clients are left untouched by the
/// implementations in `fg-attacks`.
pub trait UpdateInterceptor: Send + Sync {
    /// Mutate `update` in place. `round` is the current federated round.
    fn intercept(&self, update: &mut ModelUpdate, round: usize);

    /// Client ids this interceptor corrupts (for reporting/ground truth).
    fn malicious_clients(&self) -> Vec<usize>;
}

/// A no-op interceptor: every client behaves honestly.
pub struct NoAttack;

impl UpdateInterceptor for NoAttack {
    fn intercept(&self, _update: &mut ModelUpdate, _round: usize) {}

    fn malicious_clients(&self) -> Vec<usize> {
        Vec::new()
    }
}

/// A stream of per-round datasets — the paper's "dynamic datasets" future
/// work (§VI-C): instead of a static partition, the client sees a fresh
/// chunk each round, and its CVAE must be retrained periodically to keep the
/// decoder representative.
pub struct DataStream {
    /// Data chunk visible at round `r` is `chunks[r % chunks.len()]`.
    pub chunks: Vec<Dataset>,
    /// Retrain the CVAE every `cvae_refresh_every` rounds (1 = every round).
    /// `usize::MAX` reproduces the paper's train-once behaviour on a stream.
    pub cvae_refresh_every: usize,
}

impl DataStream {
    pub fn new(chunks: Vec<Dataset>, cvae_refresh_every: usize) -> Self {
        assert!(!chunks.is_empty(), "stream needs at least one chunk");
        assert!(cvae_refresh_every > 0, "refresh period must be positive");
        DataStream { chunks, cvae_refresh_every }
    }

    fn chunk(&self, round: usize) -> &Dataset {
        &self.chunks[round % self.chunks.len()]
    }
}

/// A federated client: private data partition plus local training state.
///
/// Each round the client receives the global parameters `ψ₀`, trains the
/// classifier for `local.epochs` epochs on its partition, and returns the
/// trained `ψ`. When a CVAE configuration is present the client also trains
/// its CVAE — once, since partitions are static (paper footnote 5) — and
/// attaches the cached decoder `θ` to every update. With a [`DataStream`]
/// installed, the visible data changes per round and the CVAE is refreshed
/// on the stream's cadence instead.
pub struct Client {
    id: usize,
    data: Dataset,
    classifier_spec: ClassifierSpec,
    local: LocalTrainConfig,
    cvae: Option<CvaeTrainConfig>,
    cached_decoder: Option<Vec<f32>>,
    seed: u64,
    stream: Option<DataStream>,
    last_cvae_round: Option<usize>,
}

impl Client {
    /// Crate-internal positional constructor. Public construction goes
    /// through [`Client::for_federation`], which derives the seed the same
    /// way `Federation`'s builder does — the only construction path that
    /// keeps out-of-process clients bit-identical to in-process ones.
    pub(crate) fn new(
        id: usize,
        data: Dataset,
        classifier_spec: ClassifierSpec,
        local: LocalTrainConfig,
        cvae: Option<CvaeTrainConfig>,
        seed: u64,
    ) -> Self {
        Client {
            id,
            data,
            classifier_spec,
            local,
            cvae,
            cached_decoder: None,
            seed,
            stream: None,
            last_cvae_round: None,
        }
    }

    /// Construct client `id` exactly as a federation built for `config`
    /// would: same classifier spec, same local-training config, and —
    /// critically — the same derived seed (`fork(id)` of the federation's
    /// master RNG). An out-of-process `fed_client` built through here is
    /// bit-identical to its in-process twin, which is what makes the
    /// loopback-equivalence oracle hold.
    pub fn for_federation(
        config: &FederationConfig,
        id: usize,
        data: Dataset,
        cvae: Option<CvaeTrainConfig>,
    ) -> Self {
        Client::new(
            id,
            data,
            config.classifier,
            config.local,
            cvae,
            SeededRng::new(config.seed).fork(id as u64).seed(),
        )
    }

    /// Install a data stream (§VI-C "dynamic datasets"). The static `data`
    /// is replaced by the stream's chunk each round.
    pub fn set_stream(&mut self, stream: DataStream) {
        self.stream = Some(stream);
        self.cached_decoder = None;
        self.last_cvae_round = None;
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Replace this client's dataset (used by data-poisoning setups to
    /// install a label-flipped partition).
    pub fn set_data(&mut self, data: Dataset) {
        self.data = data;
        self.cached_decoder = None; // decoder must be retrained on new data
    }

    /// Whether this client ships a CVAE decoder.
    pub fn trains_cvae(&self) -> bool {
        self.cvae.is_some()
    }

    /// One federated round of local work (Alg. 1 lines 22-27): train the
    /// classifier from the global parameters and return `(θ*, ψ*)`.
    pub fn train_round(&mut self, global_params: &[f32], round: usize) -> ModelUpdate {
        // Streaming clients see a fresh chunk each round; invalidate the
        // cached decoder when a refresh is due.
        if let Some(stream) = &self.stream {
            self.data = stream.chunk(round).clone();
            let due = match self.last_cvae_round {
                None => true,
                Some(last) => round.saturating_sub(last) >= stream.cvae_refresh_every,
            };
            if due {
                self.cached_decoder = None;
            }
        }
        let params = self.train_classifier(global_params, round);
        let (decoder, class_coverage) = if let Some(cfg) = &self.cvae {
            let n_classes = cfg.spec.n_classes;
            let coverage = self.data.class_histogram(n_classes).iter().map(|&c| c as u32).collect();
            (Some(self.decoder_params(round)), Some(coverage))
        } else {
            (None, None)
        };
        ModelUpdate {
            client_id: self.id,
            params,
            num_samples: self.data.len(),
            decoder,
            class_coverage,
        }
    }

    fn train_classifier(&mut self, global_params: &[f32], round: usize) -> Vec<f32> {
        let mut clf = Classifier::from_params(&self.classifier_spec, global_params);
        if self.data.is_empty() {
            return clf.get_params();
        }
        let mut sgd = Sgd::with_momentum(self.local.lr, self.local.momentum);
        let mut rng = SeededRng::new(self.seed).fork(round as u64);
        let mut data = self.data.clone();
        for _ in 0..self.local.epochs {
            data.shuffle(&mut rng);
            for (x, y) in data.batches(self.local.batch_size) {
                if self.local.prox_mu > 0.0 {
                    clf.train_batch_prox(&x, &y, &mut sgd, global_params, self.local.prox_mu);
                } else {
                    clf.train_batch(&x, &y, &mut sgd);
                }
            }
        }
        clf.get_params()
    }

    /// The client's CVAE decoder `θ`, training the CVAE on first use.
    pub fn decoder_params(&mut self, round: usize) -> Vec<f32> {
        if let Some(theta) = &self.cached_decoder {
            return theta.clone();
        }
        let cfg = self.cvae.as_ref().expect("decoder requested but no CVAE configured");
        let mut rng = SeededRng::new(self.seed).fork(0xC0DE ^ round as u64);
        let mut cvae = Cvae::new(&cfg.spec, &mut rng);
        if !self.data.is_empty() {
            let mut adam = Adam::new(cfg.lr);
            let mut data = self.data.clone();
            for _ in 0..cfg.epochs {
                data.shuffle(&mut rng);
                for (x, y) in data.batches(cfg.batch_size) {
                    cvae.train_batch(&x, &y, &mut adam, &mut rng);
                }
            }
        }
        let theta = cvae.decoder_params();
        self.cached_decoder = Some(theta.clone());
        self.last_cvae_round = Some(round);
        theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_data::synth::generate_dataset;
    use fg_nn::models::CvaeSpec;

    fn toy_client(with_cvae: bool) -> Client {
        let data = generate_dataset(5, 1); // 50 samples
        let cvae = with_cvae.then(|| CvaeTrainConfig {
            spec: CvaeSpec::reduced(16, 4),
            epochs: 1,
            batch_size: 16,
            lr: 1e-3,
        });
        Client::new(
            0,
            data,
            ClassifierSpec::Mlp { hidden: 16 },
            LocalTrainConfig { epochs: 1, batch_size: 16, lr: 0.05, momentum: 0.9, prox_mu: 0.0 },
            cvae,
            42,
        )
    }

    #[test]
    fn train_round_returns_changed_params() {
        let mut c = toy_client(false);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let update = c.train_round(&global, 0);
        assert_eq!(update.params.len(), global.len());
        assert_ne!(update.params, global);
        assert_eq!(update.num_samples, 50);
        assert!(update.decoder.is_none());
    }

    #[test]
    fn cvae_client_attaches_decoder_and_caches_it() {
        let mut c = toy_client(true);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let u1 = c.train_round(&global, 0);
        let d1 = u1.decoder.expect("decoder attached");
        assert_eq!(d1.len(), CvaeSpec::reduced(16, 4).decoder_params());
        // Second round: decoder identical (trained once, cached).
        let u2 = c.train_round(&global, 1);
        assert_eq!(u2.decoder.unwrap(), d1);
    }

    #[test]
    fn cvae_client_ships_its_class_coverage() {
        let mut c = toy_client(true);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let update = c.train_round(&global, 0);
        let coverage = update.class_coverage.expect("coverage attached with decoder");
        assert_eq!(coverage.len(), 10);
        // Balanced toy dataset: 5 samples per class.
        assert!(coverage.iter().all(|&c| c == 5), "{coverage:?}");
    }

    #[test]
    fn plain_client_ships_no_coverage() {
        let mut c = toy_client(false);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        assert!(c.train_round(&global, 0).class_coverage.is_none());
    }

    #[test]
    fn set_data_invalidates_decoder_cache() {
        let mut c = toy_client(true);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let d1 = c.train_round(&global, 0).decoder.unwrap();
        c.set_data(generate_dataset(5, 2));
        let d2 = c.train_round(&global, 1).decoder.unwrap();
        assert_ne!(d1, d2);
    }

    #[test]
    fn empty_client_returns_global_unchanged() {
        let mut c = Client::new(
            3,
            Dataset::empty(),
            ClassifierSpec::Mlp { hidden: 16 },
            LocalTrainConfig::default(),
            None,
            7,
        );
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let update = c.train_round(&global, 0);
        assert_eq!(update.params, global);
        assert_eq!(update.num_samples, 0);
    }

    #[test]
    fn streaming_client_sees_per_round_chunks() {
        let mut c = toy_client(false);
        let chunk0 = generate_dataset(2, 100);
        let chunk1 = generate_dataset(3, 101);
        c.set_stream(DataStream::new(vec![chunk0.clone(), chunk1.clone()], usize::MAX));
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        assert_eq!(c.train_round(&global, 0).num_samples, chunk0.len());
        assert_eq!(c.train_round(&global, 1).num_samples, chunk1.len());
        // Stream wraps around.
        assert_eq!(c.train_round(&global, 2).num_samples, chunk0.len());
    }

    #[test]
    fn stream_refresh_retrains_decoder_on_cadence() {
        let mut c = toy_client(true);
        let chunks = vec![generate_dataset(3, 200), generate_dataset(3, 201)];
        c.set_stream(DataStream::new(chunks, 2));
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let d0 = c.train_round(&global, 0).decoder.unwrap();
        // Round 1: refresh not yet due -> cached decoder reused.
        let d1 = c.train_round(&global, 1).decoder.unwrap();
        assert_eq!(d0, d1);
        // Round 2: refresh due -> retrained on the current chunk.
        let d2 = c.train_round(&global, 2).decoder.unwrap();
        assert_ne!(d0, d2);
    }

    #[test]
    fn train_once_stream_never_refreshes() {
        let mut c = toy_client(true);
        let chunks = vec![generate_dataset(3, 300), generate_dataset(3, 301)];
        c.set_stream(DataStream::new(chunks, usize::MAX));
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        let d0 = c.train_round(&global, 0).decoder.unwrap();
        let d5 = c.train_round(&global, 5).decoder.unwrap();
        assert_eq!(d0, d5);
    }

    #[test]
    #[should_panic]
    fn empty_stream_rejected() {
        DataStream::new(vec![], 1);
    }

    #[test]
    fn training_is_deterministic_per_seed_and_round() {
        let mut c1 = toy_client(false);
        let mut c2 = toy_client(false);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let global = Classifier::new(&spec, &mut SeededRng::new(0)).get_params();
        assert_eq!(c1.train_round(&global, 3).params, c2.train_round(&global, 3).params);
        assert_ne!(c1.train_round(&global, 3).params, c1.train_round(&global, 4).params);
    }
}
