//! The message a client sends to the server each round.

use serde::{Deserialize, Serialize};

/// A client's per-round submission: its trained classifier parameters `ψ_j`,
/// and — when the federation runs a CVAE-based defense — its CVAE decoder
/// parameters `θ_j` (Alg. 1, line 18 ships the pair `(θ*, ψ*)`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Stable client identifier (index into the federation).
    pub client_id: usize,
    /// Flat classifier parameter vector `ψ_j`.
    pub params: Vec<f32>,
    /// Number of local training samples (FedAvg weighting).
    pub num_samples: usize,
    /// Flat CVAE decoder vector `θ_j`, present when the client trains a CVAE.
    pub decoder: Option<Vec<f32>>,
    /// Per-class sample counts of the client's training data, shipped with
    /// the decoder. §VI-B proposes this so the server can condition each
    /// decoder only on classes it was actually trained on (important under
    /// strong heterogeneity). `None` when no CVAE is configured.
    pub class_coverage: Option<Vec<u32>>,
}

/// Why the server's sanitizer refused a submission
/// (see [`ModelUpdate::validate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateRejection {
    /// The parameter vector contains NaN or infinite entries.
    NonFinite,
    /// The parameter vector does not match the global model's length
    /// (truncated or padded in transit).
    WrongLength { got: usize, expected: usize },
}

impl std::fmt::Display for UpdateRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateRejection::NonFinite => write!(f, "non-finite parameters"),
            UpdateRejection::WrongLength { got, expected } => {
                write!(f, "wrong parameter count: got {got}, expected {expected}")
            }
        }
    }
}

impl ModelUpdate {
    /// Bytes this update occupies on the simulated wire (f32 = 4 bytes).
    pub fn wire_bytes(&self) -> u64 {
        let decoder = self.decoder.as_ref().map_or(0, |d| d.len());
        (self.params.len() + decoder) as u64 * 4
    }

    /// True if the parameter vector contains NaN or infinite entries.
    pub fn is_non_finite(&self) -> bool {
        self.params.iter().any(|x| !x.is_finite())
    }

    /// Server-side admission check: the parameter vector must have the
    /// global model's length (checked first — a truncated vector is
    /// malformed regardless of its values) and contain only finite entries.
    pub fn validate(&self, expected_len: usize) -> Result<(), UpdateRejection> {
        if self.params.len() != expected_len {
            return Err(UpdateRejection::WrongLength {
                got: self.params.len(),
                expected: expected_len,
            });
        }
        if self.is_non_finite() {
            return Err(UpdateRejection::NonFinite);
        }
        Ok(())
    }

    /// Drop the CVAE decoder (and its coverage) if it contains non-finite
    /// entries; the classifier update itself stays usable. Returns true if a
    /// decoder was stripped.
    pub fn strip_non_finite_decoder(&mut self) -> bool {
        let bad = self.decoder.as_ref().is_some_and(|d| d.iter().any(|x| !x.is_finite()));
        if bad {
            self.decoder = None;
            self.class_coverage = None;
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_decoder() {
        let u = ModelUpdate {
            client_id: 0,
            params: vec![0.0; 10],
            num_samples: 5,
            decoder: None,
            class_coverage: None,
        };
        assert_eq!(u.wire_bytes(), 40);
        let u2 = ModelUpdate { decoder: Some(vec![0.0; 5]), ..u };
        assert_eq!(u2.wire_bytes(), 60);
    }

    #[test]
    fn non_finite_detection() {
        let mut u = ModelUpdate {
            client_id: 0,
            params: vec![1.0, 2.0],
            num_samples: 1,
            decoder: None,
            class_coverage: None,
        };
        assert!(!u.is_non_finite());
        u.params[0] = f32::NAN;
        assert!(u.is_non_finite());
    }

    fn plain(params: Vec<f32>) -> ModelUpdate {
        ModelUpdate { client_id: 0, params, num_samples: 1, decoder: None, class_coverage: None }
    }

    #[test]
    fn validate_accepts_well_formed_updates() {
        assert_eq!(plain(vec![1.0, -2.0, 0.0]).validate(3), Ok(()));
    }

    #[test]
    fn validate_checks_length_before_values() {
        // A truncated vector that also carries a NaN reports the length
        // problem: the shape mismatch is the more fundamental defect.
        let u = plain(vec![f32::NAN]);
        assert_eq!(u.validate(3), Err(UpdateRejection::WrongLength { got: 1, expected: 3 }));
        let v = plain(vec![1.0, f32::NEG_INFINITY, 0.0]);
        assert_eq!(v.validate(3), Err(UpdateRejection::NonFinite));
    }

    #[test]
    fn decoder_stripping_keeps_params_and_drops_coverage() {
        let mut u = plain(vec![1.0, 2.0]);
        u.decoder = Some(vec![0.5, f32::INFINITY]);
        u.class_coverage = Some(vec![3, 4]);
        assert!(u.strip_non_finite_decoder());
        assert!(u.decoder.is_none());
        assert!(u.class_coverage.is_none());
        assert_eq!(u.params, vec![1.0, 2.0]);
        // A finite decoder is left alone.
        let mut v = plain(vec![1.0]);
        v.decoder = Some(vec![0.5]);
        assert!(!v.strip_non_finite_decoder());
        assert_eq!(v.decoder, Some(vec![0.5]));
    }

    #[test]
    fn rejection_reasons_render_for_logs() {
        assert_eq!(UpdateRejection::NonFinite.to_string(), "non-finite parameters");
        assert!(UpdateRejection::WrongLength { got: 1, expected: 9 }
            .to_string()
            .contains("got 1, expected 9"));
    }
}
