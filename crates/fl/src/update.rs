//! The message a client sends to the server each round.

use serde::{Deserialize, Serialize};

/// A client's per-round submission: its trained classifier parameters `ψ_j`,
/// and — when the federation runs a CVAE-based defense — its CVAE decoder
/// parameters `θ_j` (Alg. 1, line 18 ships the pair `(θ*, ψ*)`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Stable client identifier (index into the federation).
    pub client_id: usize,
    /// Flat classifier parameter vector `ψ_j`.
    pub params: Vec<f32>,
    /// Number of local training samples (FedAvg weighting).
    pub num_samples: usize,
    /// Flat CVAE decoder vector `θ_j`, present when the client trains a CVAE.
    pub decoder: Option<Vec<f32>>,
    /// Per-class sample counts of the client's training data, shipped with
    /// the decoder. §VI-B proposes this so the server can condition each
    /// decoder only on classes it was actually trained on (important under
    /// strong heterogeneity). `None` when no CVAE is configured.
    pub class_coverage: Option<Vec<u32>>,
}

impl ModelUpdate {
    /// Bytes this update occupies on the simulated wire (f32 = 4 bytes).
    pub fn wire_bytes(&self) -> u64 {
        let decoder = self.decoder.as_ref().map_or(0, |d| d.len());
        (self.params.len() + decoder) as u64 * 4
    }

    /// True if the parameter vector contains NaN or infinite entries.
    pub fn is_non_finite(&self) -> bool {
        self.params.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_decoder() {
        let u = ModelUpdate {
            client_id: 0,
            params: vec![0.0; 10],
            num_samples: 5,
            decoder: None,
            class_coverage: None,
        };
        assert_eq!(u.wire_bytes(), 40);
        let u2 = ModelUpdate { decoder: Some(vec![0.0; 5]), ..u };
        assert_eq!(u2.wire_bytes(), 60);
    }

    #[test]
    fn non_finite_detection() {
        let mut u = ModelUpdate {
            client_id: 0,
            params: vec![1.0, 2.0],
            num_samples: 1,
            decoder: None,
            class_coverage: None,
        };
        assert!(!u.is_non_finite());
        u.params[0] = f32::NAN;
        assert!(u.is_non_finite());
    }
}
