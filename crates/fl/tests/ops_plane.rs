//! The `/metrics` scrape contract: after driving the real instrumented
//! paths — a federation round (aggregation peak gauge), the wire codecs
//! (encode/decode counters), and a span-ring overflow (`obs.spans.dropped`)
//! — every metric in the registry snapshot appears in the Prometheus
//! rendering exactly once, with exactly one sample line per counter/gauge.
//!
//! Kept in one test function: the span-overflow part briefly enables
//! tracing, which would race any parallel test in this process that
//! asserts tracing is off.

use fg_data::partition::{dirichlet_partition, partition_datasets};
use fg_data::synth::generate_dataset;
use fg_fl::{
    AggregationContext, AggregationMemory, AggregationOutcome, AggregationStrategy, Compression,
    Federation, FederationConfig, LocalTrainConfig, ModelUpdate,
};
use fg_nn::models::ClassifierSpec;
use fg_obs::prometheus::{render, sanitize_metric_name};
use fg_tensor::rng::SeededRng;
use fg_tensor::vecops;

struct MeanStrategy;

impl AggregationStrategy for MeanStrategy {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        _ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome {
        let refs: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        AggregationOutcome::new(
            vecops::mean_vector(&refs),
            updates.iter().map(|u| u.client_id).collect(),
        )
    }
}

fn run_tiny_federation() {
    let data = generate_dataset(20, 42);
    let (test, train) = data.split_at(40);
    let mut rng = SeededRng::new(43);
    let parts = dirichlet_partition(&train, 4, 10.0, 10, &mut rng);
    let datasets = partition_datasets(&train, &parts);
    let config = FederationConfig {
        n_clients: 4,
        clients_per_round: 2,
        rounds: 1,
        classifier: ClassifierSpec::Mlp { hidden: 8 },
        local: LocalTrainConfig { epochs: 1, batch_size: 16, lr: 0.1, momentum: 0.9, prox_mu: 0.0 },
        server_lr: 1.0,
        eval_batch: 64,
        seed: 42,
        agg_memory: AggregationMemory::Batch,
    };
    let mut fed = Federation::builder(config)
        .datasets(datasets)
        .test_set(test)
        .strategy(MeanStrategy)
        .build();
    fed.run();
}

/// Count non-comment sample lines belonging to `sanitized` (exact-name
/// match on the part before the first space or `{`).
fn sample_lines(scrape: &str, sanitized: &str) -> usize {
    scrape
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            let metric = l.split([' ', '{']).next().unwrap_or("");
            metric == sanitized
        })
        .count()
}

#[test]
fn every_registered_metric_appears_exactly_once_in_a_scrape() {
    // 1. Aggregation gauge: one real round sets `fl.agg.peak_bytes`.
    run_tiny_federation();

    // 2. Codec counters: one encode/decode pair bumps `fl.codec.*_ns`.
    let global: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
    let blob = fg_fl::compress::compress_global(Compression::Bf16, &global);
    let _ = fg_fl::compress::reference_global(Compression::Bf16, &global);
    assert!(blob.encoded_bytes() < global.len() as u64 * 4);

    // 3. Span-ring overflow: completing more spans than the ring holds
    //    without draining increments `obs.spans.dropped`.
    fg_obs::set_enabled(true);
    let _ = fg_obs::span::take_spans();
    for _ in 0..(fg_obs::span::RING_CAP + 4) {
        let s = fg_obs::span::span("ops_plane.overflow_probe");
        drop(s);
    }
    fg_obs::set_enabled(false);
    let _ = fg_obs::span::take_spans();

    let snap = fg_obs::metrics::snapshot();
    let scrape = render(&snap);

    // The workloads above must have landed in the registry.
    for required in ["fl.agg.peak_bytes", "fl.codec.enc_ns", "fl.codec.dec_ns", "obs.spans.dropped"]
    {
        assert!(
            snap.counters.iter().any(|(n, _)| n == required)
                || snap.gauges.iter().any(|(n, _)| n == required),
            "{required} missing from the registry snapshot"
        );
    }
    assert!(
        snap.counters.iter().any(|(n, v)| n == "obs.spans.dropped" && *v >= 4),
        "ring overflow did not count dropped spans"
    );

    // Exactly one `# TYPE` line and one sample line per counter and gauge…
    for (name, kind) in snap
        .counters
        .iter()
        .map(|(n, _)| (n, "counter"))
        .chain(snap.gauges.iter().map(|(n, _)| (n, "gauge")))
    {
        let sanitized = sanitize_metric_name(name);
        let type_line = format!("# TYPE {sanitized} {kind}");
        assert_eq!(
            scrape.matches(&type_line).count(),
            1,
            "{name}: expected exactly one {type_line:?}"
        );
        assert_eq!(sample_lines(&scrape, &sanitized), 1, "{name}: expected one sample line");
    }
    // …and per histogram: one TYPE line, its buckets plus `+Inf`, one sum
    // and one count.
    for h in &snap.histograms {
        let sanitized = sanitize_metric_name(&h.name);
        assert_eq!(
            scrape.matches(&format!("# TYPE {sanitized} histogram")).count(),
            1,
            "{}",
            h.name
        );
        assert_eq!(
            sample_lines(&scrape, &format!("{sanitized}_bucket")),
            h.buckets.len() + 1,
            "{}: one line per non-empty bucket plus +Inf",
            h.name
        );
        assert_eq!(sample_lines(&scrape, &format!("{sanitized}_sum")), 1, "{}", h.name);
        assert_eq!(sample_lines(&scrape, &format!("{sanitized}_count")), 1, "{}", h.name);
    }
}
