//! Property-based fuzzing of the wire codec: `decode` must be **total** —
//! defined (never panicking, never unboundedly allocating) over arbitrary
//! byte strings, truncations and mutations — and `encode`/`decode` must be
//! an exact round trip, bit-preserving for every f32 payload.

use fg_fl::compress::compress_vec;
use fg_fl::wire::{decode, encode, HEADER_BYTES, MAGIC};
use fg_fl::{CompressedUpdate, Compression, Message, ModelUpdate, WireConfig, WireError};
use proptest::prelude::*;

fn f32s(bits: &[u32]) -> Vec<f32> {
    // Raw bit patterns: exercises NaNs, infinities and denormals.
    bits.iter().map(|&b| f32::from_bits(b)).collect()
}

/// Derive a lossy codec from fuzz inputs (compressed frames carry exactly
/// one of the three blob layouts; `None` never reaches a blob).
fn fuzz_codec(b: u64) -> Compression {
    match b % 3 {
        0 => Compression::Bf16,
        1 => Compression::Int8 { block: (b % 1000) as usize + 1 },
        _ => Compression::TopK { frac: ((b % 99) as f64 + 1.0) / 100.0 },
    }
}

/// Build one of the ten message kinds from raw fuzz inputs (the shimmed
/// proptest has no `prop_oneof`, so the selector is an explicit argument).
/// Compressed payloads go through the canonical [`compress_vec`] encoder,
/// so every generated blob is internally consistent (bitmap popcount,
/// block counts) while its f32 source still ranges over NaN/Inf/denormals.
fn build_message(sel: u64, a: u64, b: u64, bits: &[u32], cov: &[u32]) -> Message {
    match sel % 10 {
        0 => Message::Join { client_id: a, protocol: b as u32 },
        1 => Message::Welcome {
            param_len: a,
            compression: match b % 4 {
                0 => Compression::None,
                _ => fuzz_codec(b),
            },
            blob: format!("cfg-{b:016x}"),
        },
        2 => Message::RoundStart { round: a, participate: b.is_multiple_of(2), global: f32s(bits) },
        3 => Message::Upload {
            round: a,
            update: ModelUpdate {
                client_id: (a % 1000) as usize,
                params: f32s(bits),
                num_samples: (b % 10_000) as usize + 1,
                decoder: b
                    .is_multiple_of(3)
                    .then(|| cov.iter().map(|&x| f32::from_bits(x.rotate_left(7))).collect()),
                class_coverage: b.is_multiple_of(5).then(|| cov.to_vec()),
            },
        },
        4 => Message::Decline { round: a },
        5 => Message::Heartbeat { client_id: a },
        6 => Message::Leave { client_id: a },
        7 => Message::Shutdown,
        8 => {
            let codec = fuzz_codec(b);
            Message::UploadCompressed {
                round: a,
                update: CompressedUpdate {
                    client_id: (a % 1000) as usize,
                    num_samples: (b % 10_000) as usize + 1,
                    params: compress_vec(codec, &f32s(bits)),
                    decoder: b.is_multiple_of(3).then(|| {
                        let data: Vec<f32> =
                            cov.iter().map(|&x| f32::from_bits(x.rotate_left(7))).collect();
                        compress_vec(codec.decoder_codec(), &data)
                    }),
                    class_coverage: b.is_multiple_of(5).then(|| cov.to_vec()),
                },
            }
        }
        _ => Message::RoundStartCompressed {
            round: a,
            participate: b.is_multiple_of(2),
            blob: compress_vec(fuzz_codec(b), &f32s(bits)),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes under an arbitrary (small) cap: decode returns a
    /// value or a typed error — it never panics.
    #[test]
    fn decode_is_total_over_arbitrary_bytes(
        raw in collection::vec(0u16..256, 0..256),
        cap in 16u32..4096,
    ) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = decode(&bytes, &WireConfig { max_frame_bytes: cap });
    }

    /// Any message encodes to a frame that decodes back to itself,
    /// consuming exactly the frame length — f32 payloads bit-identical,
    /// NaNs included.
    #[test]
    fn encode_decode_round_trips_bitwise(
        sel in 0u64..10,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        bits in collection::vec(0u32..u32::MAX, 0..64),
        cov in collection::vec(0u32..u32::MAX, 0..10),
    ) {
        let msg = build_message(sel, a, b, &bits, &cov);
        let frame = encode(&msg);
        let (back, used) = match decode(&frame, &WireConfig::default()) {
            Ok(ok) => ok,
            Err(e) => { prop_assert!(false, "own frame failed to decode: {e:?}"); unreachable!() }
        };
        prop_assert_eq!(used, frame.len());
        // Compare re-encoded frames, not messages: NaN != NaN under f32
        // PartialEq, but the wire must still preserve the exact bits.
        prop_assert_eq!(encode(&back), frame, "re-encoding must reproduce the frame");
    }

    /// Every strict prefix of a valid frame is an error — cleanly reported
    /// as `Truncated`, never a panic, never a bogus success.
    #[test]
    fn truncated_prefixes_never_decode(
        sel in 0u64..10,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        bits in collection::vec(0u32..u32::MAX, 0..64),
        frac in 0.0f64..1.0,
    ) {
        let frame = encode(&build_message(sel, a, b, &bits, &[]));
        let cut = ((frame.len() as f64) * frac) as usize; // always < frame.len()
        match decode(&frame[..cut], &WireConfig::default()) {
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > cut, "needed {needed} must exceed the {cut}-byte prefix");
            }
            Ok(_) => prop_assert!(false, "prefix of {cut}/{} bytes decoded", frame.len()),
            Err(other) => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }

    /// Random single-byte corruption of a valid frame: decode still
    /// returns. (It may legitimately succeed — e.g. a flipped payload bit —
    /// but it must stay total and in-bounds.)
    #[test]
    fn mutated_frames_never_panic(
        sel in 0u64..10,
        a in 0u64..u64::MAX,
        bits in collection::vec(0u32..u32::MAX, 0..48),
        pos_seed in 0u64..u64::MAX,
        byte in 0u16..256,
    ) {
        let mut frame = encode(&build_message(sel, a, a ^ 0x5A5A, &bits, &[]));
        let pos = (pos_seed % frame.len() as u64) as usize;
        frame[pos] = byte as u8;
        if let Ok((_, used)) = decode(&frame, &WireConfig::default()) {
            prop_assert!(used <= frame.len());
        }
    }

    /// A header declaring a payload larger than the cap is rejected as
    /// `Oversized` *before* any payload allocation, whatever bytes follow.
    #[test]
    fn oversized_declarations_rejected_before_allocation(
        declared in 4097u32..u32::MAX,
        kind in 0u16..256,
    ) {
        let mut frame = Vec::with_capacity(HEADER_BYTES);
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(kind as u8);
        frame.extend_from_slice(&declared.to_le_bytes());
        let cfg = WireConfig { max_frame_bytes: 4096 };
        match decode(&frame, &cfg) {
            Err(WireError::Oversized { declared: d, cap }) => {
                prop_assert_eq!(d, declared as u64);
                prop_assert_eq!(cap, 4096u64);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }
}
