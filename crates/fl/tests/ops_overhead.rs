//! The operational plane must be invisible in round wall-clock: folding a
//! round into the forensics ledger, updating health, and draining an idle
//! admin socket together cost well under 1% of even the fastest real round.
//!
//! Mirrors the `trace_overhead` gate style: median-of-reps microbenchmark
//! against a deliberately loose absolute threshold, so the test catches a
//! regression (an allocation storm, a blocking accept, quadratic ledger
//! state) without flaking on a loaded CI machine. The smoke preset's
//! fastest rounds run ≈200 ms; 1% of that is 2 ms. The per-round ops cost
//! is expected in the tens of microseconds.

use fg_fl::{AdminPlane, CommStats, OpsState, RoundObserver, RoundTelemetry, StageTimings};
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median seconds per iteration of `f` over `reps` timed repetitions.
fn time_per_iter(iters: u32, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t0.elapsed().as_secs_f64() / iters as f64);
    }
    median(samples)
}

/// A paper-scale round: 50 sampled clients, scores for every survivor, a
/// handful of exclusions and one fault event.
fn synthetic_round(round: usize) -> RoundTelemetry {
    let sampled: Vec<usize> = (0..50).collect();
    RoundTelemetry {
        schema_version: 2,
        round,
        strategy: "fedguard".to_string(),
        accuracy: 0.9,
        stages: StageTimings::default(),
        wall_secs: 0.2,
        scores: sampled.iter().map(|&c| (c, 0.5 + c as f32 * 1e-3)).collect(),
        threshold: Some(0.51),
        sampled: sampled.clone(),
        survivors: sampled.clone(),
        selected: sampled.iter().copied().filter(|c| c % 5 != 0).collect(),
        excluded: sampled.iter().copied().filter(|c| c % 5 == 0).collect(),
        faults: vec![],
        quorum_met: true,
        malicious_sampled: sampled.iter().copied().filter(|c| c % 10 == 0).collect(),
        comm: CommStats::default(),
        transport: Default::default(),
        sessions: vec![],
        metrics: Default::default(),
    }
}

#[test]
fn ledger_and_admin_plane_cost_under_one_percent_of_a_round() {
    let ops = OpsState::new(1_000_000);
    let plane = AdminPlane::bind("127.0.0.1:0", ops.clone()).expect("bind admin");
    let plane = std::sync::Arc::new(parking_lot::Mutex::new(plane));
    let mut observer = ops.observer();

    let mut round = 0usize;
    let per_round = time_per_iter(500, 5, || {
        let event = synthetic_round(round);
        round += 1;
        observer.on_round(&event);
        plane.lock().poll();
    });

    assert!(
        per_round < 2e-3,
        "ops plane costs {:.1}µs per round, over 1% of a 200ms round",
        per_round * 1e6
    );
}
