//! Forward/backward compatibility of the `RoundTelemetry` JSONL schema.
//!
//! v1 trails predate `schema_version` and `metrics`; trails from early-v2
//! writers additionally predate `transport` and `sessions`. Readers must
//! accept all of them (defaulting the missing fields) and must ignore fields
//! emitted by writers newer than themselves.

use fg_fl::comm::CommStats;
use fg_fl::telemetry::{read_jsonl, RoundTelemetry, StageTimings, SCHEMA_VERSION};
use fg_fl::transport::{SessionEvent, SessionEventKind, TransportKind};
use fg_obs::metrics::MetricsSnapshot;
use serde::{Serialize, Value};

fn sample_event(round: usize) -> RoundTelemetry {
    RoundTelemetry {
        schema_version: SCHEMA_VERSION,
        round,
        strategy: "FedGuard".to_string(),
        accuracy: 0.75,
        stages: StageTimings {
            sampling_secs: 1e-6,
            local_training_secs: 0.5,
            sanitize_secs: 0.003,
            synthesis_secs: 0.1,
            audit_secs: 0.2,
            aggregation_secs: 0.05,
            evaluation_secs: 0.02,
        },
        wall_secs: 0.88,
        scores: vec![(0, 0.8), (3, 0.1)],
        threshold: Some(0.45),
        sampled: vec![0, 3, 5],
        survivors: vec![0, 3],
        selected: vec![0],
        excluded: vec![3, 5],
        faults: Vec::new(),
        quorum_met: true,
        malicious_sampled: vec![3],
        comm: CommStats { upload_bytes: 1024, download_bytes: 2048 },
        transport: TransportKind::Local,
        sessions: Vec::new(),
        metrics: MetricsSnapshot::default(),
    }
}

/// Serialize an event and strip the given top-level keys, producing the JSON
/// an older writer would have emitted.
fn without_keys(event: &RoundTelemetry, keys: &[&str]) -> String {
    let value = event.to_value();
    let Value::Obj(fields) = value else { panic!("event serializes to an object") };
    let pruned: Vec<(String, Value)> =
        fields.into_iter().filter(|(k, _)| !keys.contains(&k.as_str())).collect();
    serde_json::to_string(&Value::Obj(pruned)).unwrap()
}

#[test]
fn v1_trail_without_versioned_fields_still_parses() {
    let event = sample_event(4);
    let v1_line = without_keys(&event, &["schema_version", "metrics", "transport", "sessions"]);
    assert!(!v1_line.contains("schema_version"));

    let back: RoundTelemetry = serde_json::from_str(&v1_line).unwrap();
    assert_eq!(back.schema_version, 0, "missing version defaults to 0 (pre-versioning)");
    assert_eq!(back.metrics, MetricsSnapshot::default());
    assert_eq!(back.round, 4);
    assert_eq!(back.stages, event.stages);
}

#[test]
fn early_v2_trail_without_transport_fields_still_parses() {
    // Early-v2 writers stamped schema_version/metrics but predate the
    // networked deployment mode's transport/sessions fields.
    let event = sample_event(2);
    let line = without_keys(&event, &["transport", "sessions"]);
    assert!(!line.contains("transport"));

    let back: RoundTelemetry = serde_json::from_str(&line).unwrap();
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    assert_eq!(back.transport, TransportKind::Local, "missing transport defaults to Local");
    assert!(back.sessions.is_empty(), "missing sessions default to empty");
    assert_eq!(back, event);
}

#[test]
fn transport_and_sessions_round_trip() {
    let mut event = sample_event(3);
    event.transport = TransportKind::Tcp;
    event.sessions = vec![
        SessionEvent::new(0, SessionEventKind::Join),
        SessionEvent::new(3, SessionEventKind::Heartbeat),
        SessionEvent::new(5, SessionEventKind::Drop),
        SessionEvent::new(0, SessionEventKind::Leave),
    ];
    let line = serde_json::to_string(&event).unwrap();
    let back: RoundTelemetry = serde_json::from_str(&line).unwrap();
    assert_eq!(back, event);
    assert_eq!(back.transport, TransportKind::Tcp);
    assert_eq!(back.sessions.len(), 4);
}

#[test]
fn unknown_future_fields_are_ignored() {
    let event = sample_event(7);
    let Value::Obj(mut fields) = event.to_value() else { panic!("object") };
    fields.push(("future_field".to_string(), Value::Str("from v3".to_string())));
    fields.push(("future_nested".to_string(), Value::Obj(vec![("x".to_string(), Value::U64(1))])));
    let line = serde_json::to_string(&Value::Obj(fields)).unwrap();

    let back: RoundTelemetry = serde_json::from_str(&line).unwrap();
    assert_eq!(back, event, "unknown fields must not disturb known ones");
}

#[test]
fn read_jsonl_accepts_mixed_version_trail() {
    let new_event = sample_event(0);
    let old_event = sample_event(1);
    let path = std::env::temp_dir().join("fg_schema_compat").join("mixed.jsonl");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mixed = format!(
        "{}\n{}\n",
        serde_json::to_string(&new_event).unwrap(),
        without_keys(&old_event, &["schema_version", "metrics", "transport", "sessions"]),
    );
    std::fs::write(&path, mixed).unwrap();

    let back = read_jsonl(&path).unwrap();
    assert_eq!(back.len(), 2);
    assert_eq!(back[0].schema_version, SCHEMA_VERSION);
    assert_eq!(back[1].schema_version, 0);
    assert_eq!(back[1].round, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn current_writer_stamps_schema_version() {
    let line = serde_json::to_string(&sample_event(0)).unwrap();
    let value: Value = serde_json::from_str(&line).unwrap();
    let Value::Obj(fields) = value else { panic!("object") };
    let version = serde::obj_get(&fields, "schema_version").and_then(Value::as_u64);
    assert_eq!(version, Some(SCHEMA_VERSION as u64));
}
