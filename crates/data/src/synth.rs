//! Procedural synthetic digit generator — the MNIST substitute.
//!
//! Each digit class is defined by a set of stroke polylines in a normalized
//! `[0,1]²` canvas. A sample is produced by applying a random affine
//! transform (rotation, anisotropic scale, translation, shear) to the
//! template, rasterizing it with an anti-aliased distance field at a random
//! stroke width, and adding Gaussian pixel noise. The generator is fully
//! deterministic under its seed.
//!
//! Class pairs (5, 7) and (4, 2) — the targets of the paper's label-flip
//! attack — share strokes (5/7 share the top bar, 4/2 share a diagonal),
//! giving the targeted attack the "visually adjacent classes" character it
//! has on MNIST.

use crate::dataset::Dataset;
use fg_tensor::rng::SeededRng;
use rayon::prelude::*;

/// Image side length (28, matching MNIST).
pub const SIDE: usize = 28;
/// Flattened image dimensionality.
pub const DIM: usize = SIDE * SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

type Point = (f32, f32);

/// Stroke templates per class, in normalized canvas coordinates
/// (x right, y down).
fn template(class: usize) -> Vec<Vec<Point>> {
    // A few reusable fragments.
    let circle = |cx: f32, cy: f32, rx: f32, ry: f32, from: f32, to: f32, n: usize| -> Vec<Point> {
        (0..=n)
            .map(|i| {
                let t = from + (to - from) * i as f32 / n as f32;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    };
    use std::f32::consts::PI;
    match class {
        // 0: full oval outline.
        0 => vec![circle(0.5, 0.5, 0.28, 0.38, 0.0, 2.0 * PI, 24)],
        // 1: vertical stroke with a small flag.
        1 => vec![vec![(0.42, 0.22), (0.55, 0.12), (0.55, 0.88)]],
        // 2: top arc, diagonal to bottom-left, bottom bar.
        2 => vec![
            circle(0.5, 0.3, 0.25, 0.18, -PI, 0.0, 10),
            vec![(0.75, 0.3), (0.7, 0.45), (0.3, 0.85)],
            vec![(0.3, 0.85), (0.78, 0.85)],
        ],
        // 3: two right-bulging arcs stacked.
        3 => vec![
            circle(0.45, 0.3, 0.26, 0.18, -PI * 0.9, PI * 0.5, 12),
            circle(0.45, 0.68, 0.28, 0.2, -PI * 0.5, PI * 0.9, 12),
        ],
        // 4: open top: left diagonal down to mid bar, vertical right stroke.
        4 => vec![vec![(0.62, 0.12), (0.25, 0.6), (0.8, 0.6)], vec![(0.62, 0.12), (0.62, 0.88)]],
        // 5: top bar, left vertical, mid bar, lower-right bulge.
        5 => vec![
            vec![(0.75, 0.14), (0.3, 0.14), (0.3, 0.48)],
            circle(0.48, 0.66, 0.26, 0.22, -PI * 0.5, PI * 0.75, 12),
        ],
        // 6: tall left curve closing into a lower loop.
        6 => vec![
            vec![(0.68, 0.14), (0.38, 0.4), (0.32, 0.62)],
            circle(0.5, 0.68, 0.2, 0.18, 0.0, 2.0 * PI, 16),
        ],
        // 7: top bar and a long diagonal (shares the top bar with 5).
        7 => vec![vec![(0.25, 0.14), (0.75, 0.14), (0.42, 0.88)]],
        // 8: two stacked loops.
        8 => vec![
            circle(0.5, 0.32, 0.19, 0.17, 0.0, 2.0 * PI, 16),
            circle(0.5, 0.68, 0.23, 0.19, 0.0, 2.0 * PI, 16),
        ],
        // 9: upper loop with a tail (mirror of 6).
        9 => vec![
            circle(0.5, 0.32, 0.2, 0.18, 0.0, 2.0 * PI, 16),
            vec![(0.7, 0.36), (0.64, 0.62), (0.5, 0.88)],
        ],
        _ => panic!("digit class {class} out of range"),
    }
}

/// Per-sample random rendering parameters.
#[derive(Clone, Copy, Debug)]
struct Jitter {
    rotation: f32,
    scale_x: f32,
    scale_y: f32,
    shear: f32,
    dx: f32,
    dy: f32,
    thickness: f32,
    brightness: f32,
    noise_sigma: f32,
}

impl Jitter {
    fn sample(rng: &mut SeededRng) -> Self {
        Jitter {
            rotation: (rng.next_f32() - 0.5) * 0.42, // ±12°
            scale_x: 0.85 + rng.next_f32() * 0.3,
            scale_y: 0.85 + rng.next_f32() * 0.3,
            shear: (rng.next_f32() - 0.5) * 0.2,
            dx: (rng.next_f32() - 0.5) * 0.12,
            dy: (rng.next_f32() - 0.5) * 0.12,
            thickness: 0.045 + rng.next_f32() * 0.025,
            brightness: 0.85 + rng.next_f32() * 0.15,
            noise_sigma: 0.03 + rng.next_f32() * 0.02,
        }
    }
}

fn apply_affine(p: Point, j: &Jitter) -> Point {
    // Center, shear, scale, rotate, translate, un-center.
    let (mut x, mut y) = (p.0 - 0.5, p.1 - 0.5);
    x += j.shear * y;
    x *= j.scale_x;
    y *= j.scale_y;
    let (s, c) = j.rotation.sin_cos();
    let (rx, ry) = (c * x - s * y, s * x + c * y);
    (rx + 0.5 + j.dx, ry + 0.5 + j.dy)
}

/// Distance from point `p` to segment `a`–`b`.
fn dist_to_segment(p: Point, a: Point, b: Point) -> f32 {
    let (px, py) = (p.0 - a.0, p.1 - a.1);
    let (vx, vy) = (b.0 - a.0, b.1 - a.1);
    let len2 = vx * vx + vy * vy;
    let t = if len2 > 0.0 { ((px * vx + py * vy) / len2).clamp(0.0, 1.0) } else { 0.0 };
    let (dx, dy) = (px - t * vx, py - t * vy);
    (dx * dx + dy * dy).sqrt()
}

/// Render one digit of the given class into a flat 784-pixel buffer in
/// `[0, 1]`, deterministic under `rng`.
pub fn render_digit(class: usize, rng: &mut SeededRng) -> Vec<f32> {
    let jitter = Jitter::sample(rng);
    let strokes: Vec<Vec<Point>> = template(class)
        .into_iter()
        .map(|poly| poly.into_iter().map(|p| apply_affine(p, &jitter)).collect())
        .collect();

    let mut img = vec![0.0f32; DIM];
    let inv = 1.0 / SIDE as f32;
    for py in 0..SIDE {
        for px in 0..SIDE {
            let p = ((px as f32 + 0.5) * inv, (py as f32 + 0.5) * inv);
            let mut d = f32::INFINITY;
            for poly in &strokes {
                for seg in poly.windows(2) {
                    d = d.min(dist_to_segment(p, seg[0], seg[1]));
                }
            }
            // Anti-aliased stroke: full intensity inside the stroke core,
            // smooth falloff over one pixel width.
            let aa = inv;
            let v = if d <= jitter.thickness {
                1.0
            } else if d <= jitter.thickness + aa {
                1.0 - (d - jitter.thickness) / aa
            } else {
                0.0
            };
            img[py * SIDE + px] = v * jitter.brightness;
        }
    }
    // Pixel noise, clamped to [0, 1].
    for v in &mut img {
        *v = (*v + jitter.noise_sigma * rng.next_normal()).clamp(0.0, 1.0);
    }
    img
}

/// Generate a balanced dataset with `per_class` samples of each digit,
/// deterministic under `seed`. Samples are rendered in parallel and then
/// shuffled.
pub fn generate_dataset(per_class: usize, seed: u64) -> Dataset {
    let total = per_class * NUM_CLASSES;
    let images: Vec<Vec<f32>> = (0..total)
        .into_par_iter()
        .map(|i| {
            let class = i / per_class;
            let mut rng = SeededRng::new(fg_tensor::rng::derive_seed(seed, i as u64));
            render_digit(class, &mut rng)
        })
        .collect();
    let mut flat = Vec::with_capacity(total * DIM);
    let mut labels = Vec::with_capacity(total);
    for (i, img) in images.iter().enumerate() {
        flat.extend_from_slice(img);
        labels.push((i / per_class) as u8);
    }
    let mut ds = Dataset::new(flat, labels);
    ds.shuffle(&mut SeededRng::new(fg_tensor::rng::derive_seed(seed, u64::MAX)));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_per_seed() {
        let a = render_digit(3, &mut SeededRng::new(7));
        let b = render_digit(3, &mut SeededRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn render_varies_across_seeds() {
        let a = render_digit(3, &mut SeededRng::new(7));
        let b = render_digit(3, &mut SeededRng::new(8));
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_are_normalized() {
        for class in 0..NUM_CLASSES {
            let img = render_digit(class, &mut SeededRng::new(42 + class as u64));
            assert_eq!(img.len(), DIM);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn digits_have_ink() {
        // Every class must draw something substantial but not fill the canvas.
        for class in 0..NUM_CLASSES {
            let img = render_digit(class, &mut SeededRng::new(1000 + class as u64));
            let ink: f32 = img.iter().sum();
            assert!(ink > 20.0, "class {class} almost empty: {ink}");
            assert!(ink < 500.0, "class {class} almost full: {ink}");
        }
    }

    #[test]
    fn classes_are_mutually_distinguishable_on_average() {
        // Mean images of different classes should differ far more than two
        // mean images of the same class from disjoint sample sets.
        let n = 30;
        let mean_img = |class: usize, salt: u64| -> Vec<f32> {
            let mut acc = vec![0.0f32; DIM];
            for i in 0..n {
                let mut rng = SeededRng::new(salt * 10_000 + i);
                let img = render_digit(class, &mut rng);
                for (a, v) in acc.iter_mut().zip(&img) {
                    *a += v / n as f32;
                }
            }
            acc
        };
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let m3a = mean_img(3, 1);
        let m3b = mean_img(3, 2);
        let m8 = mean_img(8, 3);
        let within = dist(&m3a, &m3b);
        let between = dist(&m3a, &m8);
        assert!(
            between > 2.0 * within,
            "class separation too weak: within={within}, between={between}"
        );
    }

    #[test]
    fn generate_dataset_is_balanced_and_deterministic() {
        let ds1 = generate_dataset(5, 99);
        let ds2 = generate_dataset(5, 99);
        assert_eq!(ds1.images(), ds2.images());
        assert_eq!(ds1.len(), 50);
        let hist = ds1.class_histogram(NUM_CLASSES);
        assert!(hist.iter().all(|&c| c == 5), "{hist:?}");
    }

    #[test]
    #[should_panic]
    fn unknown_class_panics() {
        render_digit(10, &mut SeededRng::new(0));
    }
}
