//! In-memory labeled image dataset.

use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A labeled dataset of flattened grayscale images.
///
/// Images are stored contiguously (`n × 784` f32 values); labels are `u8`
/// class ids. All federated clients and the server's held-out test set use
/// this type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<u8>,
    dim: usize,
}

impl Dataset {
    /// Build from a flat image buffer and labels. Panics if the buffer is
    /// not a whole multiple of the label count.
    pub fn new(images: Vec<f32>, labels: Vec<u8>) -> Self {
        assert!(!labels.is_empty() || images.is_empty(), "labels empty but images present");
        let dim = if labels.is_empty() { 0 } else { images.len() / labels.len() };
        assert_eq!(dim * labels.len(), images.len(), "ragged image buffer");
        Dataset { images, labels, dim }
    }

    /// An empty dataset.
    pub fn empty() -> Self {
        Dataset { images: Vec::new(), labels: Vec::new(), dim: 0 }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Flattened per-image dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Raw image buffer.
    pub fn images(&self) -> &[f32] {
        &self.images
    }

    /// Labels as a slice.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Labels widened to `usize` (the loss functions' target type).
    pub fn labels_usize(&self) -> Vec<usize> {
        self.labels.iter().map(|&l| l as usize).collect()
    }

    /// Mutable labels (used by poisoning transforms).
    pub fn labels_mut(&mut self) -> &mut [u8] {
        &mut self.labels
    }

    /// One image as a slice.
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i * self.dim..(i + 1) * self.dim]
    }

    /// All images as a `(n, dim)` tensor (copies).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.images.clone(), &[self.len(), self.dim.max(1)])
    }

    /// A new dataset containing the given sample indices (copies).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut images = Vec::with_capacity(indices.len() * self.dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            images.extend_from_slice(self.image(i));
            labels.push(self.labels[i]);
        }
        Dataset { images, labels, dim: self.dim }
    }

    /// Split off the first `n` samples into one dataset and the rest into
    /// another.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Shuffle samples in place.
    pub fn shuffle(&mut self, rng: &mut SeededRng) {
        let n = self.len();
        for i in (1..n).rev() {
            let j = rng.next_below(i + 1);
            if i != j {
                self.labels.swap(i, j);
                let (lo, hi) = (i.min(j), i.max(j));
                let (a, b) = self.images.split_at_mut(hi * self.dim);
                a[lo * self.dim..(lo + 1) * self.dim].swap_with_slice(&mut b[..self.dim]);
            }
        }
    }

    /// Iterate over mini-batches as `(images_tensor, labels)` pairs, in
    /// order. The final batch may be smaller.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        assert!(batch > 0, "batch size must be positive");
        let n = self.len();
        (0..n.div_ceil(batch)).map(move |b| {
            let lo = b * batch;
            let hi = (lo + batch).min(n);
            let x = Tensor::from_vec(
                self.images[lo * self.dim..hi * self.dim].to_vec(),
                &[hi - lo, self.dim],
            );
            let y = self.labels[lo..hi].iter().map(|&l| l as usize).collect();
            (x, y)
        })
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self, n_classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; n_classes];
        for &l in &self.labels {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Indices of samples of a given class.
    pub fn indices_of_class(&self, class: u8) -> Vec<usize> {
        self.labels.iter().enumerate().filter_map(|(i, &l)| (l == class).then_some(i)).collect()
    }

    /// Concatenate two datasets of equal dimensionality.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        assert_eq!(self.dim, other.dim, "concat: dim mismatch");
        let mut images = self.images.clone();
        images.extend_from_slice(&other.images);
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset { images, labels, dim: self.dim }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images: Vec<f32> = (0..n * 4).map(|x| x as f32).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        Dataset::new(images, labels)
    }

    #[test]
    fn construction_and_access() {
        let ds = toy(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.image(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_buffer_rejected() {
        Dataset::new(vec![1.0; 7], vec![0, 1]);
    }

    #[test]
    fn subset_copies_right_rows() {
        let ds = toy(5);
        let s = ds.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.image(0), ds.image(4));
        assert_eq!(s.image(1), ds.image(0));
        assert_eq!(s.labels()[0], ds.labels()[4]);
    }

    #[test]
    fn split_preserves_all_samples() {
        let ds = toy(5);
        let (a, b) = ds.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(a.concat(&b), ds);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut ds = toy(20);
        let before = ds.clone();
        ds.shuffle(&mut SeededRng::new(1));
        assert_ne!(ds, before);
        // Every (image, label) pair still present exactly once.
        for i in 0..ds.len() {
            let img = ds.image(i);
            let found = (0..before.len())
                .any(|j| before.image(j) == img && before.labels()[j] == ds.labels()[i]);
            assert!(found);
        }
    }

    #[test]
    fn shuffle_keeps_images_aligned_with_labels() {
        // Encode label into the image so misalignment is detectable.
        let n = 30;
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let l = (i % 3) as u8;
            images.extend_from_slice(&[l as f32, 0.0]);
            labels.push(l);
        }
        let mut ds = Dataset::new(images, labels);
        ds.shuffle(&mut SeededRng::new(2));
        for i in 0..ds.len() {
            assert_eq!(ds.image(i)[0] as u8, ds.labels()[i]);
        }
    }

    #[test]
    fn batches_cover_everything_in_order() {
        let ds = toy(7);
        let batches: Vec<_> = ds.batches(3).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.dims(), &[3, 4]);
        assert_eq!(batches[2].0.dims(), &[1, 4]);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn class_histogram_counts() {
        let ds = toy(9);
        assert_eq!(ds.class_histogram(3), vec![3, 3, 3]);
    }

    #[test]
    fn indices_of_class_filters() {
        let ds = toy(6);
        assert_eq!(ds.indices_of_class(1), vec![1, 4]);
    }

    #[test]
    fn empty_dataset_behaves() {
        let ds = Dataset::empty();
        assert!(ds.is_empty());
        assert_eq!(ds.class_histogram(3), vec![0, 0, 0]);
        let joined = ds.concat(&toy(2));
        assert_eq!(joined.len(), 2);
    }
}
