//! Data-poisoning transforms.
//!
//! The paper's label-flipping attack (§IV-B) is a *data* poisoning: malicious
//! clients swap the labels of visually adjacent digit pairs — 5 ↔ 7 and
//! 4 ↔ 2 — before local training, so both their classifier updates *and*
//! their CVAE decoders embody the flipped mapping.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A label-flipping transform defined by unordered class pairs; each listed
/// pair is swapped in both directions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelFlip {
    pairs: Vec<(u8, u8)>,
}

impl LabelFlip {
    /// Flip the given class pairs.
    pub fn new(pairs: &[(u8, u8)]) -> Self {
        LabelFlip { pairs: pairs.to_vec() }
    }

    /// The paper's configuration: 5 ↔ 7 and 4 ↔ 2.
    pub fn paper() -> Self {
        LabelFlip::new(&[(5, 7), (4, 2)])
    }

    /// The flipped value of a single label.
    pub fn map(&self, label: u8) -> u8 {
        for &(a, b) in &self.pairs {
            if label == a {
                return b;
            }
            if label == b {
                return a;
            }
        }
        label
    }

    /// Apply the flip to a dataset in place.
    pub fn apply(&self, dataset: &mut Dataset) {
        for l in dataset.labels_mut() {
            *l = self.map(*l);
        }
    }

    /// A flipped copy of the dataset.
    pub fn applied(&self, dataset: &Dataset) -> Dataset {
        let mut out = dataset.clone();
        self.apply(&mut out);
        out
    }

    /// Classes touched by this transform.
    pub fn affected_classes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self.pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pairs_swap_both_ways() {
        let f = LabelFlip::paper();
        assert_eq!(f.map(5), 7);
        assert_eq!(f.map(7), 5);
        assert_eq!(f.map(4), 2);
        assert_eq!(f.map(2), 4);
        assert_eq!(f.map(0), 0);
        assert_eq!(f.map(9), 9);
    }

    #[test]
    fn apply_is_an_involution() {
        let f = LabelFlip::paper();
        let ds = Dataset::new(vec![0.0; 40], (0u8..10).collect());
        let once = f.applied(&ds);
        assert_ne!(once.labels(), ds.labels());
        let twice = f.applied(&once);
        assert_eq!(twice.labels(), ds.labels());
    }

    #[test]
    fn images_are_untouched() {
        let f = LabelFlip::paper();
        let ds = Dataset::new((0..40).map(|x| x as f32).collect(), (0u8..10).collect());
        let flipped = f.applied(&ds);
        assert_eq!(flipped.images(), ds.images());
    }

    #[test]
    fn affected_classes_sorted_unique() {
        assert_eq!(LabelFlip::paper().affected_classes(), vec![2, 4, 5, 7]);
    }
}
