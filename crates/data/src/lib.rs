//! # fg-data
//!
//! The data pipeline of the FedGuard reproduction.
//!
//! The paper evaluates on MNIST; this offline environment has no MNIST files,
//! so [`synth`] provides a deterministic procedural substitute: 28×28
//! grayscale digits rasterized from per-class stroke templates with
//! per-sample affine jitter, stroke-width variation and pixel noise. The
//! substitution preserves what FedGuard's mechanism needs — a 10-class image
//! task a small network learns to high accuracy, class-conditional structure
//! a CVAE can capture, and visually confusable class pairs for the targeted
//! label-flip attack (see DESIGN.md §3).
//!
//! [`partition`] implements the Dirichlet(α) client partitioning of Hsu et
//! al. used by the paper (α = 10, N = 100), and [`poison`] the label-flip
//! data-poisoning transform (digits 5 ↔ 7 and 4 ↔ 2).

pub mod dataset;
pub mod image_io;
pub mod partition;
pub mod poison;
pub mod synth;

pub use dataset::Dataset;
pub use partition::{dirichlet_partition, iid_partition, shard_partition};
pub use poison::LabelFlip;
