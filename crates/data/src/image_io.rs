//! Minimal grayscale image output (binary PGM and ASCII art), for inspecting
//! the synthetic digits and the CVAE generations without any image crate.

use std::io::Write;
use std::path::Path;

/// Write a `[0, 1]` grayscale image as a binary PGM (P5) file.
pub fn write_pgm(path: &Path, pixels: &[f32], width: usize, height: usize) -> std::io::Result<()> {
    assert_eq!(pixels.len(), width * height, "pixel count mismatch");
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{width} {height}\n255\n")?;
    let bytes: Vec<u8> =
        pixels.iter().map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8).collect();
    f.write_all(&bytes)
}

/// Tile a batch of equally sized images into one big image (row-major grid).
pub fn tile_images(
    images: &[&[f32]],
    width: usize,
    height: usize,
    cols: usize,
) -> (Vec<f32>, usize, usize) {
    assert!(!images.is_empty() && cols > 0);
    let rows = images.len().div_ceil(cols);
    let (tile_w, tile_h) = (cols * width, rows * height);
    let mut out = vec![0.0f32; tile_w * tile_h];
    for (i, img) in images.iter().enumerate() {
        assert_eq!(img.len(), width * height, "ragged image in tile");
        let (cx, cy) = (i % cols, i / cols);
        for y in 0..height {
            let dst = (cy * height + y) * tile_w + cx * width;
            out[dst..dst + width].copy_from_slice(&img[y * width..(y + 1) * width]);
        }
    }
    (out, tile_w, tile_h)
}

/// Render a `[0, 1]` grayscale image as ASCII art (for terminal inspection).
pub fn ascii_art(pixels: &[f32], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for row in pixels.chunks(width) {
        for &p in row {
            let idx = ((p.clamp(0.0, 1.0) * (RAMP.len() - 1) as f32).round()) as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip_header_and_size() {
        let dir = std::env::temp_dir().join("fg_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let img = vec![0.0f32, 0.5, 1.0, 0.25];
        write_pgm(&path, &img, 2, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P5\n2 2\n255\n".len() + 4);
        assert_eq!(*bytes.last().unwrap(), 64); // 0.25 * 255 rounded
    }

    #[test]
    fn tiling_places_images_on_grid() {
        let a = vec![1.0f32; 4]; // 2x2 white
        let b = vec![0.0f32; 4]; // 2x2 black
        let (tile, w, h) = tile_images(&[&a, &b], 2, 2, 2);
        assert_eq!((w, h), (4, 2));
        assert_eq!(tile[0], 1.0); // top-left from a
        assert_eq!(tile[2], 0.0); // top-right from b
    }

    #[test]
    fn tiling_pads_last_row() {
        let a = vec![1.0f32; 4];
        let (tile, w, h) = tile_images(&[&a, &a, &a], 2, 2, 2);
        assert_eq!((w, h), (4, 4));
        // Bottom-right cell is empty (zeros).
        assert_eq!(tile[2 * 4 + 2], 0.0);
    }

    #[test]
    fn ascii_art_shape() {
        let art = ascii_art(&[0.0, 1.0, 0.5, 0.0], 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert!(lines[0].ends_with('@'));
        assert!(lines[0].starts_with(' '));
    }
}
