//! Dirichlet client partitioning (Hsu et al., "Measuring the effects of
//! non-identical data distribution for federated visual classification").
//!
//! For each class, client proportions are drawn from `Dir(α · 1_N)` and the
//! class's samples are assigned accordingly. The paper uses `α = 10` over
//! `N = 100` clients — mildly heterogeneous, realistic client skew.

use crate::dataset::Dataset;
use fg_tensor::rng::SeededRng;
use rand_distr::{Dirichlet, Distribution};

/// Assign every sample of `dataset` to one of `n_clients` partitions using
/// per-class Dirichlet(α) proportions. Returns per-client index lists
/// (disjoint, jointly covering the dataset).
pub fn dirichlet_partition(
    dataset: &Dataset,
    n_clients: usize,
    alpha: f32,
    n_classes: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(alpha > 0.0, "Dirichlet concentration must be positive");
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); n_clients];

    for class in 0..n_classes {
        let mut idx = dataset.indices_of_class(class as u8);
        if idx.is_empty() {
            continue;
        }
        rng.shuffle(&mut idx);

        let proportions: Vec<f32> = if n_clients == 1 {
            vec![1.0]
        } else {
            let dir = Dirichlet::new_with_size(alpha, n_clients).expect("valid Dirichlet");
            dir.sample(rng.inner())
        };

        // Convert proportions into contiguous index ranges (largest
        // remainder rounding so every sample lands somewhere).
        let n = idx.len();
        let mut cuts = Vec::with_capacity(n_clients + 1);
        let mut acc = 0.0f64;
        cuts.push(0usize);
        for &p in proportions.iter().take(n_clients - 1) {
            acc += p as f64;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        cuts.push(n);
        for c in 1..cuts.len() {
            if cuts[c] < cuts[c - 1] {
                cuts[c] = cuts[c - 1];
            }
        }
        for (client, w) in cuts.windows(2).enumerate() {
            partitions[client].extend_from_slice(&idx[w[0]..w[1]]);
        }
    }

    for p in &mut partitions {
        rng.shuffle(p);
    }
    partitions
}

/// IID partitioning: shuffle and deal samples round-robin. The homogeneous
/// reference point for heterogeneity ablations.
pub fn iid_partition(dataset: &Dataset, n_clients: usize, rng: &mut SeededRng) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    let mut idx: Vec<usize> = (0..dataset.len()).collect();
    rng.shuffle(&mut idx);
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (i, sample) in idx.into_iter().enumerate() {
        partitions[i % n_clients].push(sample);
    }
    partitions
}

/// Pathological shard partitioning (McMahan et al.): sort by label, cut into
/// `shards_per_client * n_clients` shards, deal each client its shards. With
/// 2 shards per client most clients see only ~2 classes — the extreme
/// heterogeneity regime §VI-B warns about.
pub fn shard_partition(
    dataset: &Dataset,
    n_clients: usize,
    shards_per_client: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0 && shards_per_client > 0);
    let mut idx: Vec<usize> = (0..dataset.len()).collect();
    idx.sort_by_key(|&i| dataset.labels()[i]);

    let n_shards = n_clients * shards_per_client;
    assert!(n_shards <= dataset.len(), "more shards than samples");
    let shard_size = dataset.len() / n_shards;

    let mut shard_order: Vec<usize> = (0..n_shards).collect();
    rng.shuffle(&mut shard_order);

    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); n_clients];
    for (k, &shard) in shard_order.iter().enumerate() {
        let client = k / shards_per_client;
        let lo = shard * shard_size;
        let hi = if shard == n_shards - 1 { dataset.len() } else { lo + shard_size };
        partitions[client].extend_from_slice(&idx[lo..hi]);
    }
    partitions
}

/// Materialize partitions into per-client datasets.
pub fn partition_datasets(dataset: &Dataset, partitions: &[Vec<usize>]) -> Vec<Dataset> {
    partitions.iter().map(|idx| dataset.subset(idx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_dataset;

    #[test]
    fn partition_is_exact_cover() {
        let ds = generate_dataset(20, 1);
        let mut rng = SeededRng::new(2);
        let parts = dirichlet_partition(&ds, 10, 10.0, 10, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn high_alpha_is_nearly_uniform() {
        let ds = generate_dataset(100, 3);
        let mut rng = SeededRng::new(4);
        let parts = dirichlet_partition(&ds, 10, 1000.0, 10, &mut rng);
        let expected = ds.len() / 10;
        for p in &parts {
            assert!(
                (p.len() as isize - expected as isize).unsigned_abs() < expected / 3,
                "partition size {} far from uniform {expected}",
                p.len()
            );
        }
    }

    #[test]
    fn low_alpha_is_skewed() {
        let ds = generate_dataset(50, 5);
        let mut rng = SeededRng::new(6);
        let parts = dirichlet_partition(&ds, 10, 0.1, 10, &mut rng);
        let datasets = partition_datasets(&ds, &parts);
        // With alpha = 0.1 most clients should miss several classes entirely.
        let missing: usize = datasets
            .iter()
            .map(|d| d.class_histogram(10).iter().filter(|&&c| c == 0).count())
            .sum();
        assert!(missing > 10, "alpha=0.1 partition unexpectedly uniform (missing={missing})");
    }

    #[test]
    fn single_client_gets_everything() {
        let ds = generate_dataset(5, 7);
        let mut rng = SeededRng::new(8);
        let parts = dirichlet_partition(&ds, 1, 10.0, 10, &mut rng);
        assert_eq!(parts[0].len(), ds.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = generate_dataset(10, 9);
        let a = dirichlet_partition(&ds, 5, 10.0, 10, &mut SeededRng::new(10));
        let b = dirichlet_partition(&ds, 5, 10.0, 10, &mut SeededRng::new(10));
        assert_eq!(a, b);
    }

    #[test]
    fn iid_partition_is_balanced_cover() {
        let ds = generate_dataset(30, 20);
        let mut rng = SeededRng::new(21);
        let parts = iid_partition(&ds, 7, &mut rng);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ds.len()).collect::<Vec<_>>());
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn shard_partition_restricts_class_exposure() {
        let ds = generate_dataset(50, 22); // 500 samples
        let mut rng = SeededRng::new(23);
        let parts = shard_partition(&ds, 10, 2, &mut rng);
        let datasets = partition_datasets(&ds, &parts);
        // With 2 shards each, clients should on average see very few classes.
        let mean_classes: f64 = datasets
            .iter()
            .map(|d| d.class_histogram(10).iter().filter(|&&c| c > 0).count() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(mean_classes <= 4.0, "shard partition too uniform: {mean_classes}");
        // Still an exact cover.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn paper_scale_partition_leaves_no_client_empty() {
        // N = 100, alpha = 10 — the paper's configuration.
        let ds = generate_dataset(100, 11); // 1000 samples
        let mut rng = SeededRng::new(12);
        let parts = dirichlet_partition(&ds, 100, 10.0, 10, &mut rng);
        assert_eq!(parts.len(), 100);
        let empty = parts.iter().filter(|p| p.is_empty()).count();
        assert!(empty <= 2, "{empty} clients got no data");
    }
}
