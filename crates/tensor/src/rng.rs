//! Deterministic random-number utilities.
//!
//! Every stochastic component of the reproduction (data synthesis, Dirichlet
//! partitioning, weight init, client sampling, CVAE priors, attacks) draws
//! from a [`SeededRng`] derived from a single experiment master seed, so runs
//! are exactly reproducible. Parallel workers never share an RNG: each gets a
//! seed derived with [`derive_seed`] (a SplitMix64 mix), which keeps streams
//! statistically independent without any synchronization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function used to
/// derive independent child seeds from a parent seed and a stream index.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derive an independent child seed from `parent` for logical stream `stream`.
///
/// Used to give every client / round / component its own RNG without sharing
/// mutable state across rayon tasks.
#[inline]
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    splitmix64(parent ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5_DEAD_BEEF)))
}

/// A seeded PRNG wrapper around [`StdRng`].
///
/// Owning a distinct `SeededRng` per logical actor is the concurrency model
/// of this workspace: ownership transfer instead of locking.
#[derive(Clone, Debug)]
pub struct SeededRng {
    rng: StdRng,
    seed: u64,
}

impl SeededRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { rng: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this RNG was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Access the underlying `rand` RNG (for use with `rand_distr`).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Fork an independent child RNG for logical stream `stream`.
    pub fn fork(&self, stream: u64) -> SeededRng {
        SeededRng::new(derive_seed(self.seed, stream))
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Standard normal sample.
    pub fn next_normal(&mut self) -> f32 {
        use rand_distr::{Distribution, StandardNormal};
        <StandardNormal as Distribution<f32>>::sample(&StandardNormal, &mut self.rng)
    }

    /// Sample `m` distinct indices uniformly from `0..n` (Floyd's algorithm
    /// would also work; we shuffle a prefix which is simple and O(n)).
    pub fn sample_distinct(&mut self, n: usize, m: usize) -> Vec<usize> {
        assert!(m <= n, "cannot sample {m} distinct values from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = self.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Sample an index from a categorical distribution given by (unnormalized,
    /// non-negative) weights. Panics if all weights are zero.
    pub fn sample_categorical(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights must not all be zero");
        let mut u = self.rng.gen::<f32>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn fork_produces_independent_reproducible_streams() {
        let parent = SeededRng::new(99);
        let mut a = parent.fork(5);
        let mut b = parent.fork(5);
        let mut c = parent.fork(6);
        assert_eq!(a.next_f32(), b.next_f32());
        assert_ne!(a.next_f32(), c.next_f32());
    }

    #[test]
    fn sample_distinct_returns_unique_sorted_set() {
        let mut rng = SeededRng::new(0);
        let mut s = rng.sample_distinct(100, 50);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SeededRng::new(0);
        let mut s = rng.sample_distinct(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn sample_distinct_rejects_oversample() {
        SeededRng::new(0).sample_distinct(3, 4);
    }

    #[test]
    fn categorical_respects_zero_weight() {
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            let i = rng.sample_categorical(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn categorical_is_roughly_proportional() {
        let mut rng = SeededRng::new(2);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.sample_categorical(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f32 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SeededRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
