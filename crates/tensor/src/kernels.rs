//! Matrix-multiplication kernels.
//!
//! Three layouts cover every need of the layer library without materializing
//! transposes on hot paths:
//!
//! * [`matmul`]      — `C = A · B`        (M,K)·(K,N) → (M,N)
//! * [`matmul_bt`]   — `C = A · Bᵀ`       (M,K)·(N,K) → (M,N)
//! * [`matmul_at`]   — `C = Aᵀ · B`       (K,M)·(K,N) → (M,N)
//!
//! The inner loops are written over contiguous slices so LLVM can
//! auto-vectorize; the `A·B` kernel uses the classic i-k-j ordering with the
//! `B` row streamed linearly. Row blocks are distributed over rayon when the
//! problem is large enough to amortize the fork-join cost.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many multiply-accumulates we stay single-threaded: a real
/// fork now costs a queue round-trip per split (up to ~32 splits per
/// region), so a parallel matmul must carry at least ~1M MACs — a few
/// hundred microseconds of arithmetic — before the pool pays for itself.
const PAR_THRESHOLD_MACS: usize = 1 << 20;

/// `C = A · B` for row-major matrices.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul: B must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul: inner dims mismatch ({k} vs {k2})");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    let body = |row: usize, out_row: &mut [f32]| {
        let a_row = &a_data[row * k..(row + 1) * k];
        for (kk, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let b_row = &b_data[kk * n..(kk + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    };

    if m * n * k >= PAR_THRESHOLD_MACS {
        out.par_chunks_mut(n).enumerate().for_each(|(row, out_row)| body(row, out_row));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(row, out_row)| body(row, out_row));
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` where `A` is (M,K) and `B` is (N,K).
///
/// This is the natural layout for a linear layer forward pass with weights
/// stored (out_features, in_features): each output element is a dot product
/// of two contiguous rows.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt: B must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_bt: inner dims mismatch ({k} vs {k2})");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    let body = |row: usize, out_row: &mut [f32]| {
        let a_row = &a_data[row * k..(row + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b_data[j * k..(j + 1) * k];
            *o = dot(a_row, b_row);
        }
    };

    if m * n * k >= PAR_THRESHOLD_MACS {
        out.par_chunks_mut(n).enumerate().for_each(|(row, out_row)| body(row, out_row));
    } else {
        out.chunks_mut(n).enumerate().for_each(|(row, out_row)| body(row, out_row));
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` where `A` is (K,M) and `B` is (K,N).
///
/// This is the weight-gradient layout: `dW = Xᵀ · dY` accumulated over the
/// batch dimension K.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_at: B must be rank-2");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_at: outer dims mismatch ({k} vs {k2})");

    // Accumulate rank-1 updates; out[i][j] += a[kk][i] * b[kk][j].
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        let a_row = &a_data[kk * m..(kk + 1) * m];
        let b_row = &b_data[kk * n..(kk + 1) * n];
        for (i, &a_v) in a_row.iter().enumerate() {
            if a_v == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_v) in out_row.iter_mut().zip(b_row) {
                *o += a_v * b_v;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product over contiguous slices, with a 4-way unrolled accumulator so
/// LLVM vectorizes it even at modest optimization levels.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Naive triple-loop reference multiply, used by tests to validate the
/// optimized kernels.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.at(&[i, kk]) * b.at(&[kk, j]);
            }
            *out.at_mut(&[i, j]) = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = SeededRng::new(1);
        let a = Tensor::randn(&[7, 11], &mut rng);
        let b = Tensor::randn(&[11, 5], &mut rng);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = Tensor::randn(&[6, 9], &mut rng);
        let b = Tensor::randn(&[4, 9], &mut rng);
        assert_close(&matmul_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-5);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[9, 6], &mut rng);
        let b = Tensor::randn(&[9, 4], &mut rng);
        assert_close(&matmul_at(&a, &b), &matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[5, 5], &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(5)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(5), &a), &a, 1e-6);
    }

    #[test]
    fn large_matmul_uses_parallel_path_and_matches() {
        // Big enough to cross PAR_THRESHOLD_MACS.
        let mut rng = SeededRng::new(5);
        let a = Tensor::randn(&[128, 128], &mut rng);
        let b = Tensor::randn(&[128, 128], &mut rng);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-4);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|x| x as f32).collect();
        let b = vec![1.0f32; 7];
        assert_eq!(dot(&a, &b), 21.0);
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_dim_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn zero_rows_short_circuit_is_correct() {
        // Exercise the `a_v == 0.0` fast path.
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[7.0, 8.0, 0.0, 0.0]);
    }
}
