//! Matrix-multiplication kernels: a cache-blocked, panel-packed GEMM family.
//!
//! Three layouts cover every need of the layer library without materializing
//! transposes on hot paths:
//!
//! * [`matmul`]      — `C = A · B`        (M,K)·(K,N) → (M,N)
//! * [`matmul_bt`]   — `C = A · Bᵀ`       (M,K)·(N,K) → (M,N)
//! * [`matmul_at`]   — `C = Aᵀ · B`       (K,M)·(K,N) → (M,N)
//!
//! plus two fused variants for the layer hot paths: [`matmul_bt_bias`] (the
//! linear/conv forward epilogue folds the bias into the output
//! initialization) and [`matmul_at_acc`] (the weight-gradient accumulation
//! `dW += Aᵀ·B` writes straight into the gradient tensor, no temporary).
//!
//! ## Blocking & packing
//!
//! All layouts route through one driver, [`gemm`], structured like a
//! classic BLIS kernel (see DESIGN.md §7.2):
//!
//! * the output is tiled into `MC`-row × `NC`-column macro-blocks with the
//!   shared dimension cut into `KC`-deep slabs;
//! * for each `(KC, NC)` slab, `B` is packed **once** into `NR`-wide column
//!   panels (paying any transpose/stride cost a single time), and each
//!   `MC`-row block packs its slice of `A` into `MR`-tall row panels;
//! * an `MR`×`NR` register-tile microkernel walks the packed panels with all
//!   `MR*NR` accumulators live in registers, so each loaded element is used
//!   `MR` (resp. `NR`) times instead of once.
//!
//! Packed panels and all other scratch come from the thread-local
//! [`crate::workspace`] pool, so steady-state calls perform no heap
//! allocation beyond the returned output tensor.
//!
//! ## Determinism
//!
//! Rayon parallelism is over `MC` row-blocks only: every output element is
//! produced by exactly one task, the `KC` slabs are consumed left-to-right in
//! increasing-`k` order by the sequential outer loop, and the microkernel
//! accumulates each element along a single fixed chain. The arithmetic —
//! including its rounding — therefore depends only on the shapes, never on
//! the thread count: results are **bit-identical at any `FG_THREADS`**
//! (`tests/schedule_invariance.rs`). The microkernel itself is selected per
//! CPU (AVX2+FMA when the hardware has it, a portable scalar tile
//! otherwise), so bits are fixed per machine; only thread-count invariance
//! is promised across machines.
//!
//! Unlike the pre-blocking kernels there is no `a == 0.0` skip: zeros are
//! multiplied like any other value, so non-finite payloads propagate exactly
//! as IEEE 754 demands (`0 × ∞ = NaN`), matching [`matmul_reference`].

use crate::tensor::Tensor;
use crate::workspace;
use fg_obs::metrics::{Counter, HistogramFamily};
use rayon::prelude::*;

/// Driver invocations (all five layout entry points route through it).
static GEMM_CALLS: Counter = Counter::new("tensor.gemm.calls");
/// Useful work: `2·m·n·k` FLOPs per call, so FLOP/s falls out of any span.
static GEMM_FLOPS: Counter = Counter::new("tensor.gemm.flops");
/// Per-shape kernel time (label `MxKxN`), recorded only while tracing is
/// enabled — the clock reads and label formatting stay off the disabled
/// hot path.
static GEMM_SHAPE_NS: HistogramFamily = HistogramFamily::new("tensor.gemm.shape_ns");

/// Below this many multiply-accumulates we stay single-threaded: a real
/// fork costs a queue round-trip per split (up to ~32 splits per region), so
/// a parallel matmul must carry at least ~1M MACs — a few hundred
/// microseconds of arithmetic — before the pool pays for itself.
const PAR_THRESHOLD_MACS: usize = 1 << 20;

/// Microkernel tile height (rows of `A` per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `B` per register tile); 16 f32 lanes =
/// two AVX vectors, four SSE vectors.
pub const NR: usize = 16;
/// Rows of `A` per macro-block; the packed `MC×KC` block (32 KiB) sits in
/// L1/L2. Must be a multiple of `MR`. Also the unit of rayon row-parallelism.
pub const MC: usize = 32;
/// Depth of the shared-dimension slab; an `MR×KC` packed panel is 4 KiB.
/// `KC` fixes the write-back boundaries and is part of the numeric contract:
/// changing it changes rounding (never correctness).
pub const KC: usize = 256;
/// Columns of `B` per packed slab; a `KC×NC` packed panel is 512 KiB.
/// Must be a multiple of `NR`.
pub const NC: usize = 512;

/// A strided read-only matrix view: element `(r, c)` lives at
/// `data[r * rs + c * cs]`. The three public layouts differ only in strides,
/// so packing — and therefore the whole driver — is layout-agnostic.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    pub data: &'a [f32],
    pub rs: usize,
    pub cs: usize,
}

impl MatRef<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Pack rows `[row0, row0+mc)` × columns `[col0, col0+kc)` of `a` into
/// `MR`-tall row panels: panel `ip`, depth `p`, lane `r` lands at
/// `out[(ip*kc + p)*MR + r]`. Rows past `mc` are zero-filled; the zero lanes
/// feed accumulators that are never written back, so padding cannot leak.
fn pack_a(a: MatRef<'_>, row0: usize, mc: usize, col0: usize, kc: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), mc.div_ceil(MR) * kc * MR);
    for (ip, panel) in out.chunks_exact_mut(kc * MR).enumerate() {
        let rows = (mc - ip * MR).min(MR);
        for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rows { a.at(row0 + ip * MR + r, col0 + p) } else { 0.0 };
            }
        }
    }
}

/// Pack rows `[row0, row0+kc)` × columns `[col0, col0+nc)` of `b` into
/// `NR`-wide column panels: panel `jp`, depth `p`, lane `c` lands at
/// `out[(jp*kc + p)*NR + c]`. Columns past `nc` are zero-filled.
fn pack_b(b: MatRef<'_>, row0: usize, kc: usize, col0: usize, nc: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), nc.div_ceil(NR) * kc * NR);
    for (jp, panel) in out.chunks_exact_mut(kc * NR).enumerate() {
        let cols = (nc - jp * NR).min(NR);
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            for (c, d) in dst.iter_mut().enumerate() {
                *d = if c < cols { b.at(row0 + p, col0 + jp * NR + c) } else { 0.0 };
            }
        }
    }
}

/// AVX2+FMA variant of the register-tile microkernel, selected at runtime on
/// CPUs that support it. Per output element the accumulation chain is still
/// one multiply-add per `k` step in increasing-`k` order, so thread-count
/// invariance is untouched. The *fused* rounding does differ from the scalar
/// path — which is why kernel selection depends only on the CPU, never on the
/// call site or thread count: a given machine always computes the same bits.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{MR, NR};
    use core::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};

    /// Whether the running CPU supports the AVX2+FMA microkernel. The
    /// detection macro caches, so this is a couple of loads per call.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// `acc[r][c] += Σ_p ap[p][r] * bp[p][c]`, 4×16 tile: 8 vector
    /// accumulators, one broadcast per `A` lane, two `B` loads per `k` step.
    ///
    /// # Safety
    /// Caller must have checked [`available`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        let kc = bp.len() / NR;
        debug_assert_eq!(ap.len(), kc * MR);
        let mut c0 = [_mm256_loadu_ps(acc[0].as_ptr()); MR];
        let mut c1 = [_mm256_loadu_ps(acc[0].as_ptr().add(8)); MR];
        for r in 1..MR {
            c0[r] = _mm256_loadu_ps(acc[r].as_ptr());
            c1[r] = _mm256_loadu_ps(acc[r].as_ptr().add(8));
        }
        let mut ap_ptr = ap.as_ptr();
        let mut bp_ptr = bp.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp_ptr);
            let b1 = _mm256_loadu_ps(bp_ptr.add(8));
            for r in 0..MR {
                let a = _mm256_set1_ps(*ap_ptr.add(r));
                c0[r] = _mm256_fmadd_ps(a, b0, c0[r]);
                c1[r] = _mm256_fmadd_ps(a, b1, c1[r]);
            }
            ap_ptr = ap_ptr.add(MR);
            bp_ptr = bp_ptr.add(NR);
        }
        for r in 0..MR {
            _mm256_storeu_ps(acc[r].as_mut_ptr(), c0[r]);
            _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), c1[r]);
        }
    }
}

/// The portable register-tile microkernel: `acc[r][c] += Σ_p ap[p][r] *
/// bp[p][c]` over one packed `A` panel (`kc × MR`) and one packed `B` panel
/// (`kc × NR`). Each accumulator is a single sequential chain over `p`, fixed
/// by construction — the unit of the determinism contract.
#[inline(always)]
fn microkernel_scalar(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = a.try_into().expect("packed A panel stride");
        let b: &[f32; NR] = b.try_into().expect("packed B panel stride");
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = a[r];
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += ar * bv;
            }
        }
    }
}

/// Run the best microkernel for this CPU (AVX2+FMA when available, the
/// portable scalar tile otherwise). The choice is a pure function of the
/// hardware, so every call on a given machine takes the same path.
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if simd::available() {
        // SAFETY: `available` verified AVX2 and FMA support.
        unsafe { simd::microkernel(ap, bp, acc) };
        return;
    }
    microkernel_scalar(ap, bp, acc)
}

/// One `MC`-row block against one packed `(KC, NC)` slab of `B`: pack the
/// `A` block, run the microkernel over every tile, and accumulate the valid
/// region of each register tile into `out_rows` (rows of `C` at full width
/// `n`, starting at global row `row0`).
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    out_rows: &mut [f32],
    n: usize,
    a: MatRef<'_>,
    row0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    packed_b: &[f32],
) {
    let mut packed_a = workspace::take_uninit(mc.div_ceil(MR) * kc * MR);
    pack_a(a, row0, mc, pc, kc, &mut packed_a);
    for (jp, bp) in packed_b.chunks_exact(kc * NR).enumerate() {
        let cols = (nc - jp * NR).min(NR);
        for (ip, apan) in packed_a.chunks_exact(kc * MR).enumerate() {
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(apan, bp, &mut acc);
            let rows = (mc - ip * MR).min(MR);
            for (row, acc_row) in acc.iter().enumerate().take(rows) {
                let dst = &mut out_rows[(ip * MR + row) * n + jc + jp * NR..][..cols];
                for (o, &v) in dst.iter_mut().zip(acc_row) {
                    *o += v;
                }
            }
        }
    }
}

/// Blocked GEMM driver: `out += A · B` for strided views of `A` (m×k) and
/// `B` (k×n), with `out` a row-major m×n buffer whose initial contents act
/// as the additive epilogue (zeros for a plain product, a broadcast bias for
/// the fused layer forward, existing gradients for accumulation).
///
/// `parallel` gates rayon fan-out over `MC` row-blocks; it never changes the
/// arithmetic (each output element is owned by one task and the `KC` slabs
/// are consumed in increasing-`k` order either way).
pub(crate) fn gemm(
    parallel: bool,
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    GEMM_CALLS.incr();
    GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
    let trace = fg_obs::enabled().then(|| (fg_obs::span::span("tensor.gemm"), fg_obs::now_ns()));
    let fan_out = parallel && m > MC;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let mut packed_b = workspace::take_uninit(nc.div_ceil(NR) * kc * NR);
            pack_b(b, pc, kc, jc, nc, &mut packed_b);
            let pb = &packed_b[..];
            let body = |ib: usize, rows: &mut [f32]| {
                let row0 = ib * MC;
                let mc = MC.min(m - row0);
                gemm_row_block(rows, n, a, row0, mc, pc, kc, jc, nc, pb);
            };
            if fan_out {
                out.par_chunks_mut(MC * n).enumerate().for_each(|(ib, rows)| body(ib, rows));
            } else {
                out.chunks_mut(MC * n).enumerate().for_each(|(ib, rows)| body(ib, rows));
            }
        }
    }
    if let Some((span, t0)) = trace {
        GEMM_SHAPE_NS.record(&format!("{m}x{k}x{n}"), fg_obs::now_ns().saturating_sub(t0));
        drop(span);
    }
}

/// True when a problem is worth offering to the pool.
#[inline]
fn worth_forking(m: usize, n: usize, k: usize) -> bool {
    m.saturating_mul(n).saturating_mul(k) >= PAR_THRESHOLD_MACS
}

/// `C = A · B` for row-major matrices.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul: B must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul: inner dims mismatch ({k} vs {k2})");

    let mut out = vec![0.0f32; m * n];
    gemm(
        worth_forking(m, n, k),
        m,
        n,
        k,
        MatRef { data: a.data(), rs: k, cs: 1 },
        MatRef { data: b.data(), rs: n, cs: 1 },
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` where `A` is (M,K) and `B` is (N,K).
///
/// This is the natural layout for a linear layer forward pass with weights
/// stored (out_features, in_features); the packing step absorbs the
/// transpose, paying the strided reads once per `(KC, NC)` slab.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt: B must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_bt: inner dims mismatch ({k} vs {k2})");

    let mut out = vec![0.0f32; m * n];
    gemm(
        worth_forking(m, n, k),
        m,
        n,
        k,
        MatRef { data: a.data(), rs: k, cs: 1 },
        MatRef { data: b.data(), rs: 1, cs: k },
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ + bias` with the bias row folded into the output
/// initialization — the fused linear-forward epilogue. `bias` must have
/// length N; it seeds every output row before the product accumulates on
/// top, so the bias add costs no separate pass.
pub fn matmul_bt_bias(a: &Tensor, b: &Tensor, bias: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_bt_bias: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_bt_bias: B must be rank-2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_bt_bias: inner dims mismatch ({k} vs {k2})");
    assert_eq!(bias.numel(), n, "matmul_bt_bias: bias length mismatch");

    let mut out = vec![0.0f32; m * n];
    for row in out.chunks_exact_mut(n) {
        row.copy_from_slice(bias.data());
    }
    gemm(
        worth_forking(m, n, k),
        m,
        n,
        k,
        MatRef { data: a.data(), rs: k, cs: 1 },
        MatRef { data: b.data(), rs: 1, cs: k },
        &mut out,
    );
    Tensor::from_vec(out, &[m, n])
}

/// Left operand of a grouped GEMM launch ([`matmul_bt_bias_grouped`]).
#[derive(Clone, Copy)]
pub enum GroupedA<'a> {
    /// Every group multiplies the same row-major `m×k` matrix — the shared
    /// validation batch of the batched audit path.
    Shared(&'a [f32]),
    /// Group `g` multiplies `slab[g*m*k..(g+1)*m*k]` — per-model activation
    /// slabs produced by an earlier grouped layer.
    PerGroup(&'a [f32]),
}

/// One grouped launch of `C_g = A_g · W_gᵀ + bias_g` over `G` groups — the
/// batched-audit form of [`matmul_bt_bias`]: `A_g` is `m×k` (shared or a
/// per-group slab slice), `W_g` is `n×k`, `bias_g` has length `n`, and group
/// `g`'s output lands in `out[g*m*n..(g+1)*m*n]`.
///
/// Each group runs the *same* bias-seed + [`gemm`] call the per-model
/// sequential path issues (same shape, same `MatRef` strides, same
/// increasing-`k` accumulation chains), so per-element arithmetic — and
/// therefore every output bit — is identical to `G` independent
/// `matmul_bt_bias` calls. The model axis fans out over the rayon shim into
/// disjoint output chunks with no cross-group reduction, so results are also
/// bit-identical at any `FG_THREADS`. Per-group GEMMs stay sequential: the
/// group axis is the parallel grain here.
pub fn matmul_bt_bias_grouped(
    m: usize,
    n: usize,
    k: usize,
    a: GroupedA<'_>,
    weights: &[&[f32]],
    biases: &[&[f32]],
    out: &mut [f32],
) {
    let groups = weights.len();
    assert_eq!(biases.len(), groups, "matmul_bt_bias_grouped: weights/biases length mismatch");
    assert_eq!(out.len(), groups * m * n, "matmul_bt_bias_grouped: output slab size");
    match a {
        GroupedA::Shared(s) => assert_eq!(s.len(), m * k, "grouped A: shared matrix size"),
        GroupedA::PerGroup(s) => assert_eq!(s.len(), groups * m * k, "grouped A: slab size"),
    }
    out.par_chunks_mut(m * n).enumerate().for_each(|(g, out_g)| {
        let w = weights[g];
        let bias = biases[g];
        debug_assert_eq!(w.len(), n * k);
        debug_assert_eq!(bias.len(), n);
        let a_g = match a {
            GroupedA::Shared(s) => s,
            GroupedA::PerGroup(s) => &s[g * m * k..(g + 1) * m * k],
        };
        for row in out_g.chunks_exact_mut(n) {
            row.copy_from_slice(bias);
        }
        gemm(
            false,
            m,
            n,
            k,
            MatRef { data: a_g, rs: k, cs: 1 },
            MatRef { data: w, rs: 1, cs: k },
            out_g,
        );
    });
}

/// `C = Aᵀ · B` where `A` is (K,M) and `B` is (K,N).
///
/// This is the weight-gradient layout: `dW = Xᵀ · dY` accumulated over the
/// batch dimension K.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(&[a.dim(1), b.dim(1)]);
    matmul_at_acc(a, b, &mut out);
    out
}

/// `out += Aᵀ · B` accumulated in place — the weight-gradient hot path
/// (`dW += Xᵀ · dY`) without a temporary gradient tensor.
pub fn matmul_at_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.shape().rank(), 2, "matmul_at: A must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_at: B must be rank-2");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_at: outer dims mismatch ({k} vs {k2})");
    assert_eq!(out.dims(), &[m, n], "matmul_at_acc: output shape mismatch");

    gemm(
        worth_forking(m, n, k),
        m,
        n,
        k,
        MatRef { data: a.data(), rs: 1, cs: m },
        MatRef { data: b.data(), rs: n, cs: 1 },
        out.data_mut(),
    );
}

/// Dot product over contiguous slices, with a 4-way unrolled accumulator so
/// LLVM vectorizes it even at modest optimization levels.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Naive triple-loop reference multiply, used by tests to validate the
/// optimized kernels.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.at(&[i, kk]) * b.at(&[kk, j]);
            }
            *out.at_mut(&[i, j]) = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = SeededRng::new(1);
        let a = Tensor::randn(&[7, 11], &mut rng);
        let b = Tensor::randn(&[11, 5], &mut rng);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = Tensor::randn(&[6, 9], &mut rng);
        let b = Tensor::randn(&[4, 9], &mut rng);
        assert_close(&matmul_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-5);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[9, 6], &mut rng);
        let b = Tensor::randn(&[9, 4], &mut rng);
        assert_close(&matmul_at(&a, &b), &matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn matmul_bt_bias_folds_bias_into_epilogue() {
        let mut rng = SeededRng::new(9);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[6, 7], &mut rng);
        let bias = Tensor::randn(&[6], &mut rng);
        let fused = matmul_bt_bias(&a, &b, &bias);
        let mut manual = matmul_bt(&a, &b);
        for r in 0..manual.dim(0) {
            for (o, &bv) in manual.row_mut(r).iter_mut().zip(bias.data()) {
                *o += bv;
            }
        }
        // Bias seeds the accumulator rather than being added last, so allow
        // one rounding step of slack.
        assert_close(&fused, &manual, 1e-6);
    }

    #[test]
    fn matmul_at_acc_accumulates_in_place() {
        let mut rng = SeededRng::new(10);
        let a = Tensor::randn(&[8, 3], &mut rng);
        let b = Tensor::randn(&[8, 5], &mut rng);
        let mut acc = Tensor::ones(&[3, 5]);
        matmul_at_acc(&a, &b, &mut acc);
        let expect = matmul_at(&a, &b).add(&Tensor::ones(&[3, 5]));
        assert_close(&acc, &expect, 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[5, 5], &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(5)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(5), &a), &a, 1e-6);
    }

    #[test]
    fn large_matmul_uses_parallel_path_and_matches() {
        // Big enough to cross PAR_THRESHOLD_MACS.
        let mut rng = SeededRng::new(5);
        let a = Tensor::randn(&[128, 128], &mut rng);
        let b = Tensor::randn(&[128, 128], &mut rng);
        assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-4);
    }

    #[test]
    fn blocking_edges_match_reference() {
        // Shapes straddling every blocking boundary: below/at/above the
        // microkernel tile, the MC row block, and the KC slab.
        let mut rng = SeededRng::new(6);
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (MR, KC, NR),
            (MR - 1, KC + 1, NR + 1),
            (MC, 2 * KC + 3, NR * 2 + 5),
            (MC + 1, 3, 1),
            (2 * MC + 5, KC - 1, 33),
        ] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&matmul(&a, &b), &matmul_reference(&a, &b), 1e-4);
        }
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|x| x as f32).collect();
        let b = vec![1.0f32; 7];
        assert_eq!(dot(&a, &b), 21.0);
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_dim_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn zero_rows_still_produce_exact_zeros() {
        // With finite inputs, rows of zeros must yield exactly 0 outputs.
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[7.0, 8.0, 0.0, 0.0]);
    }

    #[test]
    fn non_finite_values_propagate_like_the_reference() {
        // Regression for the old `a == 0.0` fast path, which skipped the
        // multiply and silently turned 0 × ∞ into 0 instead of NaN.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let mut b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        b.data_mut()[0] = f32::INFINITY;
        b.data_mut()[3] = f32::NAN;

        for (kernel, name) in [
            (matmul(&a, &b), "matmul"),
            (matmul_at(&a.transpose(), &b), "matmul_at"),
            (matmul_bt(&a, &b.transpose()), "matmul_bt"),
        ] {
            let reference = matmul_reference(&a, &b);
            for (i, (x, y)) in kernel.data().iter().zip(reference.data()).enumerate() {
                assert_eq!(
                    x.is_nan(),
                    y.is_nan(),
                    "{name}[{i}]: NaN propagation diverged ({x} vs {y})"
                );
                if !x.is_nan() {
                    assert_eq!(x, y, "{name}[{i}]: {x} vs {y}");
                }
            }
            // The first output row hits both 0 × ∞ and 0 × NaN: it must be NaN.
            assert!(kernel.data()[0].is_nan(), "{name}: 0 × ∞ must produce NaN");
        }
    }
}
