//! 2-D max pooling (the paper's classifier uses 2×2, stride = kernel).

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Static description of a max pool with square window `k` and stride `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaxPool2dSpec {
    pub k: usize,
}

impl MaxPool2dSpec {
    /// Output spatial size (floor division, PyTorch default).
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.k, w / self.k)
    }
}

/// Result of a max-pool forward pass: pooled activations plus the flat index
/// (within each input image plane set) of every winning element, needed to
/// route gradients back.
pub struct MaxPoolOutput {
    pub output: Tensor,
    /// For each output element, the linear index into the *input* tensor of
    /// the element that won the max.
    pub argmax: Vec<u32>,
}

/// Forward max pooling over `(batch, ch, h, w)`.
pub fn maxpool2d_forward(input: &Tensor, spec: &MaxPool2dSpec) -> MaxPoolOutput {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "maxpool input must be (B,C,H,W)");
    let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.out_size(h, w);
    let k = spec.k;

    let mut out = vec![0.0f32; b * c * oh * ow];
    let mut argmax = vec![0u32; b * c * oh * ow];
    let data = input.data();

    for bi in 0..b {
        for ci in 0..c {
            let plane_off = (bi * c + ci) * h * w;
            let out_off = (bi * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        let row_off = plane_off + (oy * k + ky) * w + ox * k;
                        for kx in 0..k {
                            let v = data[row_off + kx];
                            if v > best {
                                best = v;
                                best_idx = row_off + kx;
                            }
                        }
                    }
                    out[out_off + oy * ow + ox] = best;
                    argmax[out_off + oy * ow + ox] = best_idx as u32;
                }
            }
        }
    }

    MaxPoolOutput { output: Tensor::from_vec(out, &[b, c, oh, ow]), argmax }
}

/// Values-only max pooling over one `(b, c, h, w)` slice — the inference
/// variant used by the batched audit path, which never backpropagates and so
/// skips the argmax bookkeeping. The window scan (`if v > best`, row-major
/// within the window) is copied verbatim from [`maxpool2d_forward`]: pooling
/// is pure selection, no arithmetic, so outputs are bit-identical to the
/// training-path forward.
pub fn maxpool2d_forward_values(
    input: &[f32],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    out: &mut [f32],
) {
    let (oh, ow) = (h / k, w / k);
    debug_assert_eq!(input.len(), b * c * h * w);
    debug_assert_eq!(out.len(), b * c * oh * ow);
    for (plane, out_plane) in input.chunks_exact(h * w).zip(out.chunks_exact_mut(oh * ow)) {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..k {
                    let row_off = (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        let v = plane[row_off + kx];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out_plane[oy * ow + ox] = best;
            }
        }
    }
}

/// Grouped values-only max pooling: group `g` pools its `(b, c, h, w)` slab
/// slice `input[g*b*c*h*w..]` into `out[g*b*c*(h/k)*(w/k)..]`. Groups fan
/// out over the rayon shim into disjoint output chunks; each group runs
/// [`maxpool2d_forward_values`], so bits match the sequential path at any
/// `FG_THREADS`.
pub fn maxpool2d_forward_grouped(
    input: &[f32],
    b: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    out: &mut [f32],
) {
    let in_len = b * c * h * w;
    let out_len = b * c * (h / k) * (w / k);
    assert_eq!(input.len() % in_len, 0, "maxpool2d_forward_grouped: input slab size");
    let groups = input.len() / in_len;
    assert_eq!(out.len(), groups * out_len, "maxpool2d_forward_grouped: output slab size");
    out.par_chunks_mut(out_len).enumerate().for_each(|(g, out_g)| {
        maxpool2d_forward_values(&input[g * in_len..(g + 1) * in_len], b, c, h, w, k, out_g);
    });
}

/// Backward max pooling: scatter the upstream gradient to the winning input
/// positions recorded by the forward pass.
pub fn maxpool2d_backward(d_out: &Tensor, argmax: &[u32], input_dims: &[usize]) -> Tensor {
    let mut d_in = Tensor::zeros(input_dims);
    let d_in_data = d_in.data_mut();
    for (g, &idx) in d_out.data().iter().zip(argmax) {
        d_in_data[idx as usize] += g;
    }
    d_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn forward_picks_window_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                1.0, 1.0, 4.0, 0.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = maxpool2d_forward(&x, &MaxPool2dSpec { k: 2 });
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.output.data(), &[4.0, 8.0, 9.0, 4.0]);
    }

    #[test]
    fn odd_sizes_floor() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let out = maxpool2d_forward(&x, &MaxPool2dSpec { k: 2 });
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let fwd = maxpool2d_forward(&x, &MaxPool2dSpec { k: 2 });
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]);
        let d_in = maxpool2d_backward(&g, &fwd.argmax, x.dims());
        assert_eq!(d_in.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SeededRng::new(11);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        let spec = MaxPool2dSpec { k: 2 };
        let fwd = maxpool2d_forward(&x, &spec);
        let ones = Tensor::ones(fwd.output.dims());
        let d_in = maxpool2d_backward(&ones, &fwd.argmax, x.dims());

        let eps = 1e-3f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (maxpool2d_forward(&xp, &spec).output.sum()
                - maxpool2d_forward(&xm, &spec).output.sum())
                / (2.0 * eps);
            let ana = d_in.data()[i];
            // At ties / switch points finite differences disagree; skip those.
            if (num - ana).abs() > 0.5 {
                continue;
            }
            assert!((num - ana).abs() < 1e-2, "dX[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn gradient_sums_are_preserved() {
        // Max pool backward only routes gradients; total mass is conserved.
        let mut rng = SeededRng::new(12);
        let x = Tensor::randn(&[1, 3, 6, 6], &mut rng);
        let spec = MaxPool2dSpec { k: 2 };
        let fwd = maxpool2d_forward(&x, &spec);
        let g = Tensor::randn(fwd.output.dims(), &mut rng);
        let d_in = maxpool2d_backward(&g, &fwd.argmax, x.dims());
        assert!((d_in.sum() - g.sum()).abs() < 1e-4);
    }
}
