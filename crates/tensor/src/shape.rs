//! Shape bookkeeping for row-major tensors.

use serde::{Deserialize, Serialize};

/// A tensor shape: an ordered list of dimension extents, row-major layout.
///
/// The empty shape denotes a scalar (one element).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// Panics in debug builds if the index is out of bounds or has the wrong
    /// rank.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.0.len()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of bounds");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Whether two shapes describe the same extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn offset_of_last_element_is_numel_minus_one() {
        let s = Shape::new(&[3, 5, 7]);
        assert_eq!(s.offset(&[2, 4, 6]), s.numel() - 1);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_panics_on_out_of_bounds_in_debug() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }
}
