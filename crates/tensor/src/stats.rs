//! Scalar statistics used for experiment reporting (Table IV's mean ± std)
//! and for the defenses' thresholding logic.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Sample variance (n − 1 denominator); 0 for fewer than two samples.
pub fn sample_variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32
}

/// Median (average of middle two for even lengths). Panics on empty input.
pub fn median(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Trimmed mean: drop the `trim` smallest and `trim` largest values, average
/// the rest. Panics if `2*trim >= len`.
pub fn trimmed_mean(xs: &[f32], trim: usize) -> f32 {
    assert!(2 * trim < xs.len(), "trimmed_mean would drop everything");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("trimmed_mean: NaN in input"));
    mean(&sorted[trim..sorted.len() - trim])
}

/// Summary of a series: mean and population standard deviation, the format
/// of every cell in the paper's Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    pub mean: f32,
    pub std: f32,
}

impl MeanStd {
    /// Summarize a slice.
    pub fn of(xs: &[f32]) -> MeanStd {
        MeanStd { mean: mean(xs), std: std_dev(xs) }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}% ± {:.2}%", self.mean * 100.0, self.std * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let xs = [1.0f32, 2.0, 3.0, 100.0, -50.0];
        assert!((trimmed_mean(&xs, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn trimmed_mean_rejects_overtrim() {
        trimmed_mean(&[1.0, 2.0], 1);
    }

    #[test]
    fn mean_std_display_is_percent() {
        let s = MeanStd { mean: 0.9897, std: 0.0017 };
        assert_eq!(s.to_string(), "98.97% ± 0.17%");
    }
}
