//! Scalar statistics used for experiment reporting (Table IV's mean ± std)
//! and for the defenses' thresholding logic.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Sample variance (n − 1 denominator); 0 for fewer than two samples.
pub fn sample_variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32
}

/// Median (average of middle two for even lengths). Panics on empty input.
///
/// Uses `select_nth_unstable_by` partial selection — O(n) rather than the
/// O(n log n) of a full sort — under the NaN-safe [`f32::total_cmp`] order
/// (NaNs rank above `+∞`, so they are treated as extreme values rather than
/// poisoning the comparison).
pub fn median(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut buf = xs.to_vec();
    let n = buf.len();
    let (left, &mut upper, _) = buf.select_nth_unstable_by(n / 2, f32::total_cmp);
    if n % 2 == 1 {
        upper
    } else {
        // The lower middle element is the maximum of the left partition.
        let lower = left.iter().copied().max_by(f32::total_cmp).expect("even length ≥ 2");
        0.5 * (lower + upper)
    }
}

/// Trimmed mean: drop the `trim` smallest and `trim` largest values, average
/// the rest. Panics if `2*trim >= len`.
///
/// Two `select_nth_unstable_by` selections (under the NaN-safe
/// [`f32::total_cmp`] order) partition off the tails in O(n); the kept middle
/// is averaged unsorted, so the summation order — and thus the last-bit
/// rounding — can differ from a sort-then-mean implementation.
pub fn trimmed_mean(xs: &[f32], trim: usize) -> f32 {
    assert!(2 * trim < xs.len(), "trimmed_mean would drop everything");
    if trim == 0 {
        return mean(xs);
    }
    let mut buf = xs.to_vec();
    let n = buf.len();
    // Partition the `trim` smallest into buf[..trim] ...
    buf.select_nth_unstable_by(trim, f32::total_cmp);
    // ... then the `trim` largest of the remainder into rest[n-2*trim..].
    let rest = &mut buf[trim..];
    let keep = n - 2 * trim;
    rest.select_nth_unstable_by(keep, f32::total_cmp);
    mean(&rest[..keep])
}

/// Summary of a series: mean and population standard deviation, the format
/// of every cell in the paper's Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    pub mean: f32,
    pub std: f32,
}

impl MeanStd {
    /// Summarize a slice.
    pub fn of(xs: &[f32]) -> MeanStd {
        MeanStd { mean: mean(xs), std: std_dev(xs) }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}% ± {:.2}%", self.mean * 100.0, self.std * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let xs = [1.0f32, 2.0, 3.0, 100.0, -50.0];
        assert!((trimmed_mean(&xs, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn trimmed_mean_rejects_overtrim() {
        trimmed_mean(&[1.0, 2.0], 1);
    }

    /// The sorted implementations the selection-based versions replaced,
    /// kept as the test oracle.
    fn median_sorted(xs: &[f32]) -> f32 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(f32::total_cmp);
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }

    fn trimmed_mean_sorted(xs: &[f32], trim: usize) -> f32 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(f32::total_cmp);
        mean(&sorted[trim..sorted.len() - trim])
    }

    #[test]
    fn selection_matches_full_sort() {
        let mut rng = crate::rng::SeededRng::new(7);
        for len in [1usize, 2, 3, 4, 5, 10, 31, 100, 101] {
            let mut xs: Vec<f32> = (0..len).map(|_| rng.next_f32() * 10.0 - 5.0).collect();
            // Inject duplicates and signed zeros to stress tie handling.
            if len >= 4 {
                xs[1] = xs[0];
                xs[2] = 0.0;
                xs[3] = -0.0;
            }
            assert_eq!(median(&xs), median_sorted(&xs), "median diverged at len {len}");
            for trim in 0..(len / 2).min(4) {
                let sel = trimmed_mean(&xs, trim);
                let srt = trimmed_mean_sorted(&xs, trim);
                // Same kept multiset, different summation order: allow
                // last-bit slack.
                assert!(
                    (sel - srt).abs() <= 1e-6 * (1.0 + srt.abs()),
                    "trimmed_mean diverged at len {len} trim {trim}: {sel} vs {srt}"
                );
            }
        }
    }

    #[test]
    fn total_cmp_ranks_nan_as_extreme() {
        // NaN sorts above +∞ under total_cmp, so it is trimmed/out-voted
        // like any other outlier instead of panicking or poisoning the sort.
        assert_eq!(median(&[1.0, f32::NAN, 2.0]), 2.0);
        assert_eq!(median(&[1.0, f32::INFINITY, 2.0]), 2.0);
        assert_eq!(trimmed_mean(&[1.0, f32::NAN, 2.0, 3.0, -8.0], 1), 2.0);
    }

    #[test]
    fn mean_std_display_is_percent() {
        let s = MeanStd { mean: 0.9897, std: 0.0017 };
        assert_eq!(s.to_string(), "98.97% ± 0.17%");
    }
}
