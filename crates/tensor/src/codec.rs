//! Wire-compression kernels: per-block symmetric int8 quantization, bf16
//! round-to-nearest-even packing, and deterministic magnitude top-k
//! selection.
//!
//! These are the lossy primitives behind `fg_fl`'s update-compression layer
//! (DESIGN.md §14). Everything here obeys the crate's determinism contract:
//! parallelism is only over disjoint [`CODEC_SLAB`]-element (or
//! caller-chosen block) ranges with per-element outputs, so results are
//! bit-identical at any `FG_THREADS`. Selection ties in [`topk_select`] are
//! broken by ascending index, making the selected set a pure function of
//! the input.
//!
//! Scratch discipline: the kernels write into caller-owned buffers
//! (`resize`d, never reallocated when capacity suffices), so a warm
//! encode/decode loop allocates nothing — the same zero-alloc contract the
//! f32 [`crate::workspace`] pool gives the aggregation kernels, extended to
//! the non-f32 codec outputs the pool cannot hold.

use rayon::prelude::*;

/// Slab granularity for codec parallelism; matches the aggregation kernels'
/// `PAR_LEN` so codec and fold passes split the parameter vector at the
/// same offsets.
pub const CODEC_SLAB: usize = 1 << 16;

// ---------------------------------------------------------------------------
// bf16: round-to-nearest-even truncation of the f32 mantissa
// ---------------------------------------------------------------------------

/// Convert one f32 to bf16 bits with round-to-nearest-even. NaNs map to a
/// quiet NaN that preserves the sign and top mantissa bits.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let b = x.to_bits();
    if x.is_nan() {
        // Force a mantissa bit so the payload never truncates to infinity.
        ((b >> 16) as u16) | 0x0040
    } else {
        let rounding = 0x7FFF + ((b >> 16) & 1);
        ((b.wrapping_add(rounding)) >> 16) as u16
    }
}

/// Widen bf16 bits back to f32 — exact (bf16 ⊂ f32), so
/// `f32_to_bf16(bf16_to_f32(h)) == h` for every non-NaN `h`.
#[inline]
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Pack `src` into bf16, overwriting `dst` (resized, reusing capacity).
pub fn bf16_pack_into(src: &[f32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.resize(src.len(), 0);
    dst.par_chunks_mut(CODEC_SLAB).zip(src.par_chunks(CODEC_SLAB)).for_each(|(d, s)| {
        for (o, &x) in d.iter_mut().zip(s) {
            *o = f32_to_bf16(x);
        }
    });
}

/// Unpack bf16 into `dst`, which must already have `src.len()` elements
/// (typically a `workspace` scratch).
pub fn bf16_unpack_into(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "bf16_unpack_into: length mismatch");
    dst.par_chunks_mut(CODEC_SLAB).zip(src.par_chunks(CODEC_SLAB)).for_each(|(d, s)| {
        for (o, &h) in d.iter_mut().zip(s) {
            *o = bf16_to_f32(h);
        }
    });
}

// ---------------------------------------------------------------------------
// int8: symmetric per-block quantization with f32 scales
// ---------------------------------------------------------------------------

/// Quantize `src` into `q` with one symmetric scale per `block` elements:
/// `scale = max|x| / 127`, `q = clamp(round(x / scale), ±127)`. All-zero
/// blocks get `scale = 0` and all-zero codes. `scales` and `q` are
/// overwritten (capacity reused). Blocks are independent, so the pass is
/// parallel and bit-deterministic.
pub fn int8_quantize_into(src: &[f32], block: usize, scales: &mut Vec<f32>, q: &mut Vec<i8>) {
    assert!(block > 0, "int8_quantize_into: block must be non-zero");
    scales.clear();
    scales.resize(src.len().div_ceil(block), 0.0);
    q.clear();
    q.resize(src.len(), 0);
    scales.par_iter_mut().zip(q.par_chunks_mut(block)).zip(src.par_chunks(block)).for_each(
        |((scale, qc), xc)| {
            let max_abs = xc.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if max_abs == 0.0 {
                *scale = 0.0;
                return; // qc is already zeroed
            }
            *scale = max_abs / 127.0;
            let inv = 127.0 / max_abs;
            for (o, &x) in qc.iter_mut().zip(xc) {
                *o = (x * inv).round().clamp(-127.0, 127.0) as i8;
            }
        },
    );
}

/// Dequantize `q` back into `dst` (`x' = q · scale`). `dst` must already
/// have `q.len()` elements; `scales.len()` must be `ceil(len / block)`.
pub fn int8_dequantize_into(q: &[i8], scales: &[f32], block: usize, dst: &mut [f32]) {
    assert!(block > 0, "int8_dequantize_into: block must be non-zero");
    assert_eq!(q.len(), dst.len(), "int8_dequantize_into: length mismatch");
    assert_eq!(scales.len(), q.len().div_ceil(block), "int8_dequantize_into: scale count mismatch");
    scales.par_iter().zip(dst.par_chunks_mut(block)).zip(q.par_chunks(block)).for_each(
        |((&scale, dc), qc)| {
            for (o, &c) in dc.iter_mut().zip(qc) {
                *o = c as f32 * scale;
            }
        },
    );
}

// ---------------------------------------------------------------------------
// top-k: deterministic magnitude selection
// ---------------------------------------------------------------------------

/// Number of entries a `frac` top-k keeps out of `len`: `ceil(len · frac)`,
/// clamped to `[0, len]` (0 only when `len == 0` or `frac == 0`).
pub fn topk_count(len: usize, frac: f64) -> usize {
    if len == 0 || frac <= 0.0 {
        return 0;
    }
    (((len as f64) * frac).ceil() as usize).clamp(1, len)
}

/// Select the indices of the `k` largest-magnitude entries of `src`,
/// written to `out` in ascending index order. Ties in magnitude are broken
/// by ascending index, so the selected *set* is a total-order prefix —
/// deterministic regardless of the selection algorithm's internals or the
/// thread count. `keys` is caller-owned scratch (reused across calls); the
/// key-building pass is parallel over [`CODEC_SLAB`] slabs.
pub fn topk_select(src: &[f32], k: usize, out: &mut Vec<u32>, keys: &mut Vec<u64>) {
    assert!(
        src.len() <= u32::MAX as usize,
        "topk_select: vectors beyond u32 indexing are unsupported"
    );
    out.clear();
    if k == 0 || src.is_empty() {
        return;
    }
    let k = k.min(src.len());
    // One u64 key per element: high 32 bits |x| (IEEE abs bits order
    // matches magnitude order for finite values), low 32 bits !index so
    // that among equal magnitudes the *larger* key has the *smaller* index.
    keys.clear();
    keys.resize(src.len(), 0);
    keys.par_chunks_mut(CODEC_SLAB).zip(src.par_chunks(CODEC_SLAB)).enumerate().for_each(
        |(slab, (kc, xc))| {
            let base = (slab * CODEC_SLAB) as u32;
            for (j, (o, &x)) in kc.iter_mut().zip(xc).enumerate() {
                let abs = (x.to_bits() & 0x7FFF_FFFF) as u64;
                *o = (abs << 32) | (!(base + j as u32)) as u64;
            }
        },
    );
    if k < keys.len() {
        // Partition the k largest keys to the front; the kept set is unique
        // because the key order is total, so the partition's internal
        // nondeterminism cannot change the outcome.
        keys.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    }
    out.extend(keys[..k].iter().map(|&key| !(key as u32)));
    out.sort_unstable();
}

/// Gather `src[idx]` for each selected index into `vals` (overwritten).
pub fn gather_into(src: &[f32], idx: &[u32], vals: &mut Vec<f32>) {
    vals.clear();
    vals.resize(idx.len(), 0.0);
    vals.par_chunks_mut(CODEC_SLAB).zip(idx.par_chunks(CODEC_SLAB)).for_each(|(vc, ic)| {
        for (o, &i) in vc.iter_mut().zip(ic) {
            *o = src[i as usize];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use rayon::with_threads;

    fn noise(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeededRng::new(seed);
        (0..n).map(|_| rng.next_f32() * 4.0 - 2.0).collect()
    }

    #[test]
    fn bf16_known_values_round_to_nearest_even() {
        assert_eq!(f32_to_bf16(0.0), 0x0000);
        assert_eq!(f32_to_bf16(-0.0), 0x8000);
        assert_eq!(f32_to_bf16(1.0), 0x3F80);
        assert_eq!(f32_to_bf16(-2.0), 0xC000);
        // Below-tie rounds down, above-tie rounds up.
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F80_7FFF)), 0x3F80);
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F80_8001)), 0x3F81);
        // Exact ties round to even mantissa.
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F80_8000)), 0x3F80);
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F81_8000)), 0x3F82);
        // Infinities survive; NaN stays NaN.
        assert_eq!(f32_to_bf16(f32::INFINITY), 0x7F80);
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_pack_of_unpack_is_identity_on_bf16_values() {
        for h in [0x0000u16, 0x3F80, 0xC2F7, 0x0001, 0x7F80, 0xFF7F] {
            assert_eq!(f32_to_bf16(bf16_to_f32(h)), h, "h = {h:#06x}");
        }
    }

    #[test]
    fn bf16_relative_error_is_bounded() {
        let xs = noise(100_000, 7);
        let mut packed = Vec::new();
        bf16_pack_into(&xs, &mut packed);
        let mut back = vec![0.0f32; xs.len()];
        bf16_unpack_into(&packed, &mut back);
        for (&x, &y) in xs.iter().zip(&back) {
            // bf16 keeps 7 stored mantissa bits: rel err ≤ 2^-8 after RNE.
            assert!((x - y).abs() <= x.abs() * (1.0 / 256.0) + f32::EPSILON, "{x} -> {y}");
        }
    }

    #[test]
    fn bf16_pack_is_bitwise_identical_across_thread_counts() {
        let xs = noise(3 * CODEC_SLAB + 17, 11);
        let mut a = Vec::new();
        let mut b = Vec::new();
        with_threads(1, || bf16_pack_into(&xs, &mut a));
        with_threads(4, || bf16_pack_into(&xs, &mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn int8_round_trip_error_is_within_half_step() {
        let xs = noise(200_000, 13);
        let block = CODEC_SLAB;
        let (mut scales, mut q) = (Vec::new(), Vec::new());
        int8_quantize_into(&xs, block, &mut scales, &mut q);
        assert_eq!(scales.len(), xs.len().div_ceil(block));
        let mut back = vec![0.0f32; xs.len()];
        int8_dequantize_into(&q, &scales, block, &mut back);
        for (i, (&x, &y)) in xs.iter().zip(&back).enumerate() {
            let scale = scales[i / block];
            assert!((x - y).abs() <= scale * 0.5 + 1e-6, "elem {i}: {x} -> {y} (scale {scale})");
        }
    }

    #[test]
    fn int8_zero_blocks_quantize_to_zero_scale_and_codes() {
        let mut xs = vec![0.0f32; 300];
        xs[290] = 1.5; // last (partial) block non-zero, first blocks zero
        let (mut scales, mut q) = (Vec::new(), Vec::new());
        int8_quantize_into(&xs, 128, &mut scales, &mut q);
        assert_eq!(scales[0], 0.0);
        assert_eq!(scales[1], 0.0);
        assert!(scales[2] > 0.0);
        assert!(q[..256].iter().all(|&c| c == 0));
        assert_eq!(q[290], 127);
        let mut back = vec![1.0f32; xs.len()];
        int8_dequantize_into(&q, &scales, 128, &mut back);
        assert_eq!(back[0], 0.0);
        assert_eq!(back[290], 1.5);
    }

    #[test]
    fn int8_is_bitwise_identical_across_thread_counts() {
        let xs = noise(2 * CODEC_SLAB + 999, 17);
        let run = |n: usize| {
            with_threads(n, || {
                let (mut scales, mut q) = (Vec::new(), Vec::new());
                int8_quantize_into(&xs, 1 << 10, &mut scales, &mut q);
                let mut back = vec![0.0f32; xs.len()];
                int8_dequantize_into(&q, &scales, 1 << 10, &mut back);
                (scales, q, back.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn topk_selects_largest_magnitudes_with_index_tie_break() {
        let xs = [0.5f32, -3.0, 2.0, -2.0, 0.1, 3.0];
        let (mut idx, mut keys) = (Vec::new(), Vec::new());
        // |−3| and |3| tie at the top, then |2| and |−2| tie: ties must
        // resolve toward the smaller index.
        topk_select(&xs, 3, &mut idx, &mut keys);
        assert_eq!(idx, vec![1, 2, 5]);
        topk_select(&xs, 1, &mut idx, &mut keys);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn topk_edges_and_determinism() {
        let xs = noise(CODEC_SLAB + 123, 23);
        let (mut idx, mut keys) = (Vec::new(), Vec::new());
        topk_select(&xs, 0, &mut idx, &mut keys);
        assert!(idx.is_empty());
        topk_select(&xs, xs.len() + 10, &mut idx, &mut keys);
        assert_eq!(idx.len(), xs.len());
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending, unique");

        let k = topk_count(xs.len(), 0.1);
        let run = |n: usize| {
            with_threads(n, || {
                let (mut i, mut s) = (Vec::new(), Vec::new());
                topk_select(&xs, k, &mut i, &mut s);
                i
            })
        };
        let a = run(1);
        assert_eq!(a, run(4));
        assert_eq!(a.len(), k);
        // Every kept magnitude ≥ every dropped magnitude.
        let kept_min = a.iter().map(|&i| xs[i as usize].abs()).fold(f32::INFINITY, f32::min);
        let dropped_max = (0..xs.len() as u32)
            .filter(|i| a.binary_search(i).is_err())
            .map(|i| xs[i as usize].abs())
            .fold(0.0f32, f32::max);
        assert!(kept_min >= dropped_max);
    }

    #[test]
    fn topk_count_boundaries() {
        assert_eq!(topk_count(0, 0.5), 0);
        assert_eq!(topk_count(100, 0.0), 0);
        assert_eq!(topk_count(100, 0.1), 10);
        assert_eq!(topk_count(101, 0.1), 11);
        assert_eq!(topk_count(100, 1.0), 100);
        assert_eq!(topk_count(100, 2.0), 100);
        assert_eq!(topk_count(3, 0.001), 1);
    }

    #[test]
    fn gather_pulls_selected_values() {
        let xs = [10.0f32, 11.0, 12.0, 13.0];
        let mut vals = vec![99.0f32];
        gather_into(&xs, &[1, 3], &mut vals);
        assert_eq!(vals, vec![11.0, 13.0]);
    }
}
