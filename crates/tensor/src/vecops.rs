//! Vector algebra over raw `&[f32]` parameter slices.
//!
//! Federated aggregation operates on flattened model-parameter vectors (1.66
//! million elements at paper scale), not on shaped tensors, so these free
//! functions work directly on slices. They are the primitives FedAvg, GeoMed,
//! Krum and the attacks are built from.

use rayon::prelude::*;

/// Below this length the fork-join overhead exceeds the work; stay
/// sequential. Each `join` costs a queue push plus (worst case) a couple of
/// hundred microseconds of latch wait, so a parallel block must carry at
/// least ~10⁵ float ops to pay for itself now that the pool is real.
const PAR_LEN: usize = 1 << 16;

/// Euclidean distance between two equal-length vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance_f64(a, b).sqrt() as f32
}

/// Squared Euclidean distance, truncated to f32.
///
/// Accumulation happens in f64 (see [`squared_distance_f64`]); finite inputs
/// whose true squared distance exceeds `f32::MAX` still come back as `+inf`
/// after the cast — callers that rank by distance (Krum) must stay on the
/// f64 form to keep their ordering intact.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance_f64(a, b) as f32
}

/// Squared Euclidean distance with f64 accumulation.
///
/// Per-element squares of f32 inputs can reach ~1e76, far beyond
/// `f32::MAX ≈ 3.4e38`: a single large-but-finite poisoned coordinate used
/// to overflow the old f32 accumulator to `+inf` and collapse Krum's score
/// ordering whenever several attackers overflowed together. Partial sums are
/// taken per `PAR_LEN` chunk (each chunk folds left-to-right in f64) and the
/// chunk partials are reduced **sequentially in chunk order**, so the result
/// is bit-identical at any `FG_THREADS` and identical whether a caller walks
/// the vectors whole or slab by slab.
pub fn squared_distance_f64(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    // Subtract in f64 too: a diff of two finite f32s near ±3e38 would already
    // overflow before squaring if taken at f32 width.
    let chunk_sum = |ca: &[f32], cb: &[f32]| {
        ca.iter().zip(cb).fold(0.0f64, |acc, (x, y)| {
            let d = *x as f64 - *y as f64;
            acc + d * d
        })
    };
    if a.len() >= PAR_LEN {
        let partials: Vec<f64> = a
            .par_chunks(PAR_LEN)
            .zip(b.par_chunks(PAR_LEN))
            .map(|(ca, cb)| chunk_sum(ca, cb))
            .collect();
        partials.iter().sum()
    } else {
        chunk_sum(a, b)
    }
}

/// Euclidean norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// `out = sum_i w_i * vs_i` — the weighted mean when the weights sum to 1.
///
/// Panics if `vs` is empty, lengths are ragged, or weight count mismatches.
pub fn weighted_sum(vs: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vs.is_empty(), "weighted_sum of zero vectors");
    let mut out = vec![0.0f32; vs[0].len()];
    weighted_sum_into(vs, weights, &mut out);
    out
}

/// [`weighted_sum`] into a caller-owned buffer — the allocation-free form
/// iterative callers (Weiszfeld) use to double-buffer instead of allocating
/// a fresh `d`-length vector every iteration. `out` is zeroed first, so the
/// result is bit-identical to `weighted_sum` whatever `out` held before.
pub fn weighted_sum_into(vs: &[&[f32]], weights: &[f32], out: &mut [f32]) {
    assert!(!vs.is_empty(), "weighted_sum of zero vectors");
    assert_eq!(vs.len(), weights.len(), "weighted_sum: weight count mismatch");
    let n = out.len();
    for v in vs {
        assert_eq!(v.len(), n, "weighted_sum: ragged input");
    }
    out.fill(0.0);
    if n >= PAR_LEN {
        // Parallel over disjoint output blocks; each block accumulates its
        // input slices in the same order as the sequential loop, so every
        // output element sees the identical add sequence (bit-identical).
        out.par_chunks_mut(PAR_LEN).enumerate().for_each(|(ci, block)| {
            let start = ci * PAR_LEN;
            let end = start + block.len();
            for (v, &w) in vs.iter().zip(weights) {
                if w == 0.0 {
                    continue;
                }
                for (o, &x) in block.iter_mut().zip(&v[start..end]) {
                    *o += w * x;
                }
            }
        });
    } else {
        for (v, &w) in vs.iter().zip(weights) {
            if w == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(*v) {
                *o += w * x;
            }
        }
    }
}

/// One step of an incremental (running) weighted mean:
/// `acc[j] += frac * (x[j] - acc[j])`, where `frac = w_k / (w_1 + … + w_k)`.
///
/// This is the O(d)-streamable form of the weighted mean: folding vectors
/// one at a time with their cumulative-weight fraction needs no knowledge of
/// the total weight up front, and — unlike `Σ (w_i / W) · x_i` with
/// f32-rounded weights — it is **structurally exact on identical inputs**:
/// once `acc == x` bitwise, `frac * (x - acc)` contributes exactly `+0.0`,
/// so averaging m copies of a vector returns that vector bit-for-bit (with
/// one caveat: a `-0.0` coordinate leaves the first fold as `+0.0`, because
/// the very first step computes `0.0 + 1.0 * (x - 0.0)`).
///
/// Element-wise over disjoint `PAR_LEN` blocks, so the result is
/// bit-identical at any `FG_THREADS`.
pub fn fold_weighted_mean(acc: &mut [f32], x: &[f32], frac: f32) {
    assert_eq!(acc.len(), x.len(), "fold_weighted_mean: length mismatch");
    if acc.len() >= PAR_LEN {
        acc.par_chunks_mut(PAR_LEN).zip(x.par_chunks(PAR_LEN)).for_each(|(ca, cx)| {
            for (a, &v) in ca.iter_mut().zip(cx) {
                *a += frac * (v - *a);
            }
        });
    } else {
        for (a, &v) in acc.iter_mut().zip(x) {
            *a += frac * (v - *a);
        }
    }
}

/// Arithmetic mean of a set of vectors, computed as an incremental fold
/// (`acc += (x_k - acc) / k`) so that the mean of m identical vectors is
/// bit-equal to the input — the old `Σ (1/m) · x_i` form drifted whenever
/// `1/m` was not exactly representable (m = 3 already breaks it).
pub fn mean_vector(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean_vector of zero vectors");
    let mut acc = vs[0].to_vec();
    for (k, v) in vs.iter().enumerate().skip(1) {
        fold_weighted_mean(&mut acc, v, 1.0 / (k as f32 + 1.0));
    }
    acc
}

/// In-place `a += alpha * b`.
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    if a.len() >= PAR_LEN {
        a.par_chunks_mut(PAR_LEN).zip(b.par_chunks(PAR_LEN)).for_each(|(ca, cb)| {
            for (x, &y) in ca.iter_mut().zip(cb) {
                *x += alpha * y;
            }
        });
    } else {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }
}

/// In-place scale.
pub fn scale(a: &mut [f32], alpha: f32) {
    if a.len() >= PAR_LEN {
        a.par_chunks_mut(PAR_LEN).for_each(|c| {
            for x in c.iter_mut() {
                *x *= alpha;
            }
        });
    } else {
        for x in a.iter_mut() {
            *x *= alpha;
        }
    }
}

/// Linear interpolation `(1 - t) * a + t * b`, the server-learning-rate
/// update rule of FedGuard (§V-A): `t = 1` is the standard full step.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    if a.len() >= PAR_LEN {
        let mut out = vec![0.0f32; a.len()];
        out.par_chunks_mut(PAR_LEN).zip(a.par_chunks(PAR_LEN)).zip(b.par_chunks(PAR_LEN)).for_each(
            |((co, ca), cb)| {
                for ((o, x), y) in co.iter_mut().zip(ca).zip(cb) {
                    *o = (1.0 - t) * x + t * y;
                }
            },
        );
        out
    } else {
        a.iter().zip(b).map(|(x, y)| (1.0 - t) * x + t * y).collect()
    }
}

/// Full pairwise squared-distance matrix of `m` vectors, parallelized over
/// the O(m²) upper triangle. Entry `(i, j)` is `‖v_i − v_j‖²`.
pub fn pairwise_squared_distances(vs: &[&[f32]]) -> Vec<Vec<f32>> {
    pairwise_squared_distances_f64(vs)
        .into_iter()
        .map(|row| row.into_iter().map(|d| d as f32).collect())
        .collect()
}

/// [`pairwise_squared_distances`] at full f64 width — the form Krum ranks
/// on, where an f32 cast could collapse several large-but-finite distances
/// to one `+inf` tie.
pub fn pairwise_squared_distances_f64(vs: &[&[f32]]) -> Vec<Vec<f64>> {
    let m = vs.len();
    let pairs: Vec<(usize, usize)> = (0..m).flat_map(|i| (i + 1..m).map(move |j| (i, j))).collect();
    let dists: Vec<f64> =
        pairs.par_iter().map(|&(i, j)| squared_distance_f64(vs[i], vs[j])).collect();
    let mut mat = vec![vec![0.0f64; m]; m];
    for (&(i, j), &d) in pairs.iter().zip(&dists) {
        mat[i][j] = d;
        mat[j][i] = d;
    }
    mat
}

/// True if any element is NaN or infinite.
pub fn has_non_finite(a: &[f32]) -> bool {
    a.iter().any(|x| !x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn weighted_sum_is_convex_combination() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let out = weighted_sum(&[&a, &b], &[0.25, 0.75]);
        assert_eq!(out, vec![0.25, 0.75]);
    }

    #[test]
    fn mean_of_identical_vectors_is_identity() {
        let v = [2.0f32, -1.0, 0.5];
        let out = mean_vector(&[&v, &v, &v]);
        for (o, e) in out.iter().zip(&v) {
            assert!((o - e).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn weighted_sum_rejects_ragged() {
        weighted_sum(&[&[1.0, 2.0], &[1.0]], &[0.5, 0.5]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![2.0, 4.0]);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let m = pairwise_squared_distances(&refs);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert_eq!(m[0][1], 1.0);
        assert_eq!(m[0][2], 4.0);
        assert_eq!(m[1][2], 5.0);
    }

    #[test]
    fn parallel_distance_matches_sequential() {
        // Length above PAR_LEN exercises the rayon path.
        let n = (1 << 16) + 7;
        let a: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let seq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let par = squared_distance(&a, &b);
        assert!((seq - par).abs() < 1e-2 * seq.max(1.0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = vec![1.0f32, 2.0];
        axpy(&mut a, 2.0, &[1.0, 1.0]);
        assert_eq!(a, vec![3.0, 4.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.5, 2.0]);
    }

    #[test]
    fn parallel_weighted_sum_matches_sequential_bitwise() {
        let n = (1 << 16) + 13; // crosses PAR_LEN with a ragged tail block
        let a: Vec<f32> = (0..n).map(|i| ((i % 31) as f32 - 15.0) * 0.1).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) * 0.2).collect();
        let c: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        let w = [0.5f32, 0.0, 0.3];
        let par = weighted_sum(&[&a, &b, &c], &w);
        // Reference: the pre-parallel accumulation order.
        let mut seq = vec![0.0f32; n];
        for (v, &wi) in [&a, &b, &c].iter().zip(&w) {
            if wi == 0.0 {
                continue;
            }
            for (o, &x) in seq.iter_mut().zip(v.iter()) {
                *o += wi * x;
            }
        }
        assert!(par.iter().zip(&seq).all(|(p, s)| p.to_bits() == s.to_bits()));
    }

    #[test]
    fn parallel_axpy_and_lerp_match_sequential_bitwise() {
        let n = (1 << 17) + 3;
        let base: Vec<f32> = (0..n).map(|i| (i % 101) as f32 * 0.03).collect();
        let delta: Vec<f32> = (0..n).map(|i| ((i % 41) as f32 - 20.0) * 0.07).collect();

        let mut par = base.clone();
        axpy(&mut par, 1.5, &delta);
        let seq: Vec<f32> = base.iter().zip(&delta).map(|(x, y)| x + 1.5 * y).collect();
        assert!(par.iter().zip(&seq).all(|(p, s)| p.to_bits() == s.to_bits()));

        let par_l = lerp(&base, &delta, 0.25);
        let seq_l: Vec<f32> = base.iter().zip(&delta).map(|(x, y)| 0.75 * x + 0.25 * y).collect();
        assert!(par_l.iter().zip(&seq_l).all(|(p, s)| p.to_bits() == s.to_bits()));
    }

    #[test]
    fn large_finite_inputs_do_not_overflow_the_f64_accumulator() {
        // Each squared diff is ~1.5e77 — astronomically past f32::MAX — yet
        // the f64 sum stays finite and ordered. The old f32 accumulator
        // returned +inf for *both* and lost the ordering.
        let n = 64;
        let zero = vec![0.0f32; n];
        let big = vec![2.0e38f32; n];
        let bigger = vec![3.0e38f32; n];
        let d1 = squared_distance_f64(&zero, &big);
        let d2 = squared_distance_f64(&zero, &bigger);
        assert!(d1.is_finite() && d2.is_finite());
        assert!(d2 > d1);
        // The f32 view still saturates — documented truncation.
        assert_eq!(squared_distance(&zero, &big), f32::INFINITY);
    }

    #[test]
    fn chunked_distance_equals_whole_vector_distance_bitwise() {
        // Summing per-slab partials in slab order must give the same bits
        // as one whole-vector call: the contract the sharded aggregators
        // and the batch oracle both rely on.
        let n = 3 * (1 << 16) + 997; // ragged final slab
        let a: Vec<f32> = (0..n).map(|i| ((i % 37) as f32 - 18.0) * 1.7).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) * 0.9).collect();
        let whole = squared_distance_f64(&a, &b);
        let mut by_slab = 0.0f64;
        for (ca, cb) in a.chunks(1 << 16).zip(b.chunks(1 << 16)) {
            by_slab += squared_distance_f64(ca, cb);
        }
        assert_eq!(whole.to_bits(), by_slab.to_bits());
    }

    #[test]
    fn mean_of_identical_vectors_is_bit_identical() {
        let v: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.37 + 0.1).collect();
        for m in 1..=7 {
            let refs: Vec<&[f32]> = (0..m).map(|_| v.as_slice()).collect();
            let out = mean_vector(&refs);
            assert!(
                out.iter().zip(&v).all(|(o, e)| o.to_bits() == e.to_bits()),
                "mean of {m} copies drifted"
            );
        }
    }

    #[test]
    fn fold_weighted_mean_is_thread_invariant() {
        let n = (1 << 16) + 31;
        let base: Vec<f32> = (0..n).map(|i| (i % 19) as f32 * 0.05).collect();
        let x: Vec<f32> = (0..n).map(|i| ((i % 29) as f32 - 14.0) * 0.11).collect();
        let mut one = base.clone();
        let mut four = base.clone();
        rayon::with_threads(1, || fold_weighted_mean(&mut one, &x, 0.375));
        rayon::with_threads(4, || fold_weighted_mean(&mut four, &x, 0.375));
        assert!(one.iter().zip(&four).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn weighted_sum_into_matches_weighted_sum_and_ignores_stale_contents() {
        let n = (1 << 16) + 5;
        let a: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.3).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 11) as f32 * -0.2).collect();
        let fresh = weighted_sum(&[&a, &b], &[0.6, 0.4]);
        let mut stale = vec![f32::NAN; n];
        weighted_sum_into(&[&a, &b], &[0.6, 0.4], &mut stale);
        assert!(fresh.iter().zip(&stale).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f32::NAN]));
        assert!(has_non_finite(&[f32::NEG_INFINITY]));
    }
}
