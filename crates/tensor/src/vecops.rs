//! Vector algebra over raw `&[f32]` parameter slices.
//!
//! Federated aggregation operates on flattened model-parameter vectors (1.66
//! million elements at paper scale), not on shaped tensors, so these free
//! functions work directly on slices. They are the primitives FedAvg, GeoMed,
//! Krum and the attacks are built from.

use rayon::prelude::*;

/// Below this length the fork-join overhead exceeds the work; stay
/// sequential. Each `join` costs a queue push plus (worst case) a couple of
/// hundred microseconds of latch wait, so a parallel block must carry at
/// least ~10⁵ float ops to pay for itself now that the pool is real.
const PAR_LEN: usize = 1 << 16;

/// Euclidean distance between two equal-length vectors.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    squared_distance(a, b).sqrt()
}

/// Squared Euclidean distance.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    if a.len() >= PAR_LEN {
        a.par_chunks(PAR_LEN)
            .zip(b.par_chunks(PAR_LEN))
            .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| (x - y) * (x - y)).sum::<f32>())
            .sum()
    } else {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

/// Euclidean norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// `out = sum_i w_i * vs_i` — the weighted mean when the weights sum to 1.
///
/// Panics if `vs` is empty, lengths are ragged, or weight count mismatches.
pub fn weighted_sum(vs: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!vs.is_empty(), "weighted_sum of zero vectors");
    assert_eq!(vs.len(), weights.len(), "weighted_sum: weight count mismatch");
    let n = vs[0].len();
    for v in vs {
        assert_eq!(v.len(), n, "weighted_sum: ragged input");
    }
    let mut out = vec![0.0f32; n];
    if n >= PAR_LEN {
        // Parallel over disjoint output blocks; each block accumulates its
        // input slices in the same order as the sequential loop, so every
        // output element sees the identical add sequence (bit-identical).
        out.par_chunks_mut(PAR_LEN).enumerate().for_each(|(ci, block)| {
            let start = ci * PAR_LEN;
            let end = start + block.len();
            for (v, &w) in vs.iter().zip(weights) {
                if w == 0.0 {
                    continue;
                }
                for (o, &x) in block.iter_mut().zip(&v[start..end]) {
                    *o += w * x;
                }
            }
        });
    } else {
        for (v, &w) in vs.iter().zip(weights) {
            if w == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(*v) {
                *o += w * x;
            }
        }
    }
    out
}

/// Arithmetic mean of a set of vectors.
pub fn mean_vector(vs: &[&[f32]]) -> Vec<f32> {
    let w = 1.0 / vs.len() as f32;
    weighted_sum(vs, &vec![w; vs.len()])
}

/// In-place `a += alpha * b`.
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    if a.len() >= PAR_LEN {
        a.par_chunks_mut(PAR_LEN).zip(b.par_chunks(PAR_LEN)).for_each(|(ca, cb)| {
            for (x, &y) in ca.iter_mut().zip(cb) {
                *x += alpha * y;
            }
        });
    } else {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }
}

/// In-place scale.
pub fn scale(a: &mut [f32], alpha: f32) {
    if a.len() >= PAR_LEN {
        a.par_chunks_mut(PAR_LEN).for_each(|c| {
            for x in c.iter_mut() {
                *x *= alpha;
            }
        });
    } else {
        for x in a.iter_mut() {
            *x *= alpha;
        }
    }
}

/// Linear interpolation `(1 - t) * a + t * b`, the server-learning-rate
/// update rule of FedGuard (§V-A): `t = 1` is the standard full step.
pub fn lerp(a: &[f32], b: &[f32], t: f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    if a.len() >= PAR_LEN {
        let mut out = vec![0.0f32; a.len()];
        out.par_chunks_mut(PAR_LEN).zip(a.par_chunks(PAR_LEN)).zip(b.par_chunks(PAR_LEN)).for_each(
            |((co, ca), cb)| {
                for ((o, x), y) in co.iter_mut().zip(ca).zip(cb) {
                    *o = (1.0 - t) * x + t * y;
                }
            },
        );
        out
    } else {
        a.iter().zip(b).map(|(x, y)| (1.0 - t) * x + t * y).collect()
    }
}

/// Full pairwise squared-distance matrix of `m` vectors, parallelized over
/// the O(m²) upper triangle. Entry `(i, j)` is `‖v_i − v_j‖²`.
pub fn pairwise_squared_distances(vs: &[&[f32]]) -> Vec<Vec<f32>> {
    let m = vs.len();
    let pairs: Vec<(usize, usize)> = (0..m).flat_map(|i| (i + 1..m).map(move |j| (i, j))).collect();
    let dists: Vec<f32> = pairs.par_iter().map(|&(i, j)| squared_distance(vs[i], vs[j])).collect();
    let mut mat = vec![vec![0.0f32; m]; m];
    for (&(i, j), &d) in pairs.iter().zip(&dists) {
        mat[i][j] = d;
        mat[j][i] = d;
    }
    mat
}

/// True if any element is NaN or infinite.
pub fn has_non_finite(a: &[f32]) -> bool {
    a.iter().any(|x| !x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn weighted_sum_is_convex_combination() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let out = weighted_sum(&[&a, &b], &[0.25, 0.75]);
        assert_eq!(out, vec![0.25, 0.75]);
    }

    #[test]
    fn mean_of_identical_vectors_is_identity() {
        let v = [2.0f32, -1.0, 0.5];
        let out = mean_vector(&[&v, &v, &v]);
        for (o, e) in out.iter().zip(&v) {
            assert!((o - e).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn weighted_sum_rejects_ragged() {
        weighted_sum(&[&[1.0, 2.0], &[1.0]], &[0.5, 0.5]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![2.0, 4.0]);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let vs: Vec<Vec<f32>> = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let m = pairwise_squared_distances(&refs);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
        assert_eq!(m[0][1], 1.0);
        assert_eq!(m[0][2], 4.0);
        assert_eq!(m[1][2], 5.0);
    }

    #[test]
    fn parallel_distance_matches_sequential() {
        // Length above PAR_LEN exercises the rayon path.
        let n = (1 << 16) + 7;
        let a: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let seq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let par = squared_distance(&a, &b);
        assert!((seq - par).abs() < 1e-2 * seq.max(1.0));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = vec![1.0f32, 2.0];
        axpy(&mut a, 2.0, &[1.0, 1.0]);
        assert_eq!(a, vec![3.0, 4.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.5, 2.0]);
    }

    #[test]
    fn parallel_weighted_sum_matches_sequential_bitwise() {
        let n = (1 << 16) + 13; // crosses PAR_LEN with a ragged tail block
        let a: Vec<f32> = (0..n).map(|i| ((i % 31) as f32 - 15.0) * 0.1).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) * 0.2).collect();
        let c: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        let w = [0.5f32, 0.0, 0.3];
        let par = weighted_sum(&[&a, &b, &c], &w);
        // Reference: the pre-parallel accumulation order.
        let mut seq = vec![0.0f32; n];
        for (v, &wi) in [&a, &b, &c].iter().zip(&w) {
            if wi == 0.0 {
                continue;
            }
            for (o, &x) in seq.iter_mut().zip(v.iter()) {
                *o += wi * x;
            }
        }
        assert!(par.iter().zip(&seq).all(|(p, s)| p.to_bits() == s.to_bits()));
    }

    #[test]
    fn parallel_axpy_and_lerp_match_sequential_bitwise() {
        let n = (1 << 17) + 3;
        let base: Vec<f32> = (0..n).map(|i| (i % 101) as f32 * 0.03).collect();
        let delta: Vec<f32> = (0..n).map(|i| ((i % 41) as f32 - 20.0) * 0.07).collect();

        let mut par = base.clone();
        axpy(&mut par, 1.5, &delta);
        let seq: Vec<f32> = base.iter().zip(&delta).map(|(x, y)| x + 1.5 * y).collect();
        assert!(par.iter().zip(&seq).all(|(p, s)| p.to_bits() == s.to_bits()));

        let par_l = lerp(&base, &delta, 0.25);
        let seq_l: Vec<f32> = base.iter().zip(&delta).map(|(x, y)| 0.75 * x + 0.25 * y).collect();
        assert!(par_l.iter().zip(&seq_l).all(|(p, s)| p.to_bits() == s.to_bits()));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f32::NAN]));
        assert!(has_non_finite(&[f32::NEG_INFINITY]));
    }
}
