//! # fg-tensor
//!
//! Dense, row-major `f32` tensors and the compute kernels used throughout the
//! FedGuard reproduction: blocked matrix multiplication, im2col convolution
//! (forward and backward), max pooling, reductions, vector algebra over raw
//! parameter slices, and deterministic seeded random-number utilities.
//!
//! The crate is deliberately small and dependency-light: it is the substrate
//! that replaces the role PyTorch plays in the original paper. The GEMM
//! family is a cache-blocked, panel-packed kernel (MC/KC/NC blocking with an
//! MR×NR register-tile microkernel — see [`kernels`]); all per-call scratch
//! — packed panels, im2col patch matrices, gradient staging — comes from a
//! thread-local [`workspace`] pool, so the conv/linear hot paths perform no
//! heap allocation in steady state beyond their returned tensors. Outer
//! loops are parallelized where the problem size warrants it, via the
//! repo's rayon shim — a real fork-join worker pool sized by `FG_THREADS`
//! (default: all cores). Parallelism is only ever over disjoint output
//! blocks and the shim's split tree depends only on the input size, never
//! the thread count, so every kernel here is bit-identical at
//! `FG_THREADS=1` and `FG_THREADS=N`; parallelism thresholds (`PAR_LEN`,
//! `PAR_THRESHOLD_MACS`) gate when work is worth the fork cost.
//!
//! ## Quick example
//!
//! ```
//! use fg_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod codec;
pub mod conv;
pub mod kernels;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod vecops;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;
