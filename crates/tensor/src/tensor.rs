//! The dense `f32` tensor type.

use crate::rng::SeededRng;
use crate::shape::Shape;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// This is the workhorse value type of the whole reproduction: model
/// activations, weights, gradients and generated images are all `Tensor`s.
/// Data is stored contiguously; views into rows are handed out as slices so
/// kernels can stay allocation-free on their hot paths.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ----- constructors -------------------------------------------------

    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.numel()], shape }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Build a tensor from an existing buffer. Panics if the buffer length
    /// does not match the shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// Standard-normal random tensor, deterministic under the given RNG.
    pub fn randn(dims: &[usize], rng: &mut SeededRng) -> Self {
        let shape = Shape::new(dims);
        let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
        let data = (0..shape.numel()).map(|_| normal.sample(rng.inner())).collect();
        Tensor { data, shape }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let shape = Shape::new(dims);
        let dist = Uniform::new(lo, hi);
        let data = (0..shape.numel()).map(|_| dist.sample(rng.inner())).collect();
        Tensor { data, shape }
    }

    /// Kaiming/He-uniform initialization for a weight tensor with the given
    /// fan-in, as used for ReLU networks.
    pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut SeededRng) -> Self {
        let bound = (6.0 / fan_in as f32).sqrt();
        Self::rand_uniform(dims, -bound, bound, rng)
    }

    /// Xavier/Glorot-uniform initialization (sigmoid/tanh friendly).
    pub fn xavier_uniform(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Self::rand_uniform(dims, -bound, bound, rng)
    }

    // ----- accessors ----------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Row `r` of a rank-2 tensor, as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a matrix");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a matrix");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    // ----- shape manipulation -------------------------------------------

    /// Reinterpret the tensor with a new shape of identical element count.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let new_shape = Shape::new(dims);
        assert_eq!(
            new_shape.numel(),
            self.data.len(),
            "reshape {} -> {} changes element count",
            self.shape,
            new_shape
        );
        self.shape = new_shape;
        self
    }

    /// Borrowed reshape: same data, new shape object.
    pub fn view(&self, dims: &[usize]) -> Tensor {
        self.clone().reshape(dims)
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires a matrix");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * m + i] = v;
            }
        }
        out
    }

    // ----- elementwise algebra -------------------------------------------

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }

    /// Elementwise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Elementwise difference, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Overwrite this tensor's contents with `src`'s, reusing the existing
    /// buffer (no allocation). Shapes must match; use this instead of
    /// `clone()` when refreshing a cached tensor on a hot path.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.assert_same_shape(src, "copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// New tensor with every element mapped through `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Fill the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    // ----- reductions -----------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element within each row of a matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a matrix");
        (0..self.dim(0))
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Euclidean norm of the whole tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    // ----- batching helpers ------------------------------------------------

    /// Stack rank-1 tensors of equal length into a matrix (one per row).
    pub fn stack_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "stack_rows: ragged input");
            data.extend_from_slice(row);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Copy rows `lo..hi` of a matrix into a fresh matrix.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "slice_rows requires a matrix");
        assert!(lo <= hi && hi <= self.dim(0), "row range out of bounds");
        let cols = self.dim(1);
        let data = self.data[lo * cols..hi * cols].to_vec();
        Tensor::from_vec(data, &[hi - lo, cols])
    }

    /// Copy columns `lo..hi` of a matrix into a fresh matrix.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "slice_cols requires a matrix");
        assert!(lo <= hi && hi <= self.dim(1), "column range out of bounds");
        let rows = self.dim(0);
        let mut data = Vec::with_capacity(rows * (hi - lo));
        for r in 0..rows {
            data.extend_from_slice(&self.row(r)[lo..hi]);
        }
        Tensor::from_vec(data, &[rows, hi - lo])
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2);
        assert_eq!(other.shape.rank(), 2);
        assert_eq!(self.dim(0), other.dim(0), "concat_cols: row count mismatch");
        let rows = self.dim(0);
        let (c1, c2) = (self.dim(1), other.dim(1));
        let mut data = Vec::with_capacity(rows * (c1 + c2));
        for r in 0..rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor::from_vec(data, &[rows, c1 + c2])
    }

    /// Matrix product; see [`crate::kernels::matmul`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::kernels::matmul(self, other)
    }

    /// Sample standard-normal noise with this tensor's shape into a new
    /// tensor (used by the CVAE reparameterization trick).
    pub fn randn_like(&self, rng: &mut SeededRng) -> Tensor {
        Tensor::randn(self.dims(), rng)
    }

    /// Randomly permute the rows of a matrix in place (Fisher–Yates).
    pub fn shuffle_rows(&mut self, rng: &mut SeededRng) {
        assert_eq!(self.shape.rank(), 2);
        let rows = self.dim(0);
        let cols = self.dim(1);
        for i in (1..rows).rev() {
            let j = rng.inner().gen_range(0..=i);
            if i != j {
                let (lo, hi) = (i.min(j), i.max(j));
                let (head, tail) = self.data.split_at_mut(hi * cols);
                head[lo * cols..lo * cols + cols].swap_with_slice(&mut tail[..cols]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        Tensor::from_vec(vec![1.0; 3], &[2, 2]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[0, 1]), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn argmax_rows_picks_max_per_row() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let b = a.clone().reshape(&[2, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.dims(), &[2, 2]);
    }

    #[test]
    #[should_panic]
    fn reshape_rejects_numel_change() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn concat_cols_interleaves_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = a.concat_cols(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    fn slice_cols_copies_range() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let s = a.slice_cols(1, 3);
        assert_eq!(s.dims(), &[3, 2]);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(2), &[9.0, 10.0]);
    }

    #[test]
    fn slice_rows_copies_range() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = SeededRng::new(42);
        let mut r2 = SeededRng::new(42);
        assert_eq!(Tensor::randn(&[8], &mut r1), Tensor::randn(&[8], &mut r2));
    }

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = SeededRng::new(7);
        let t = Tensor::kaiming_uniform(&[100], 50, &mut rng);
        let bound = (6.0f32 / 50.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn shuffle_rows_is_a_permutation() {
        let mut rng = SeededRng::new(3);
        let mut a = Tensor::from_vec((0..20).map(|x| x as f32).collect(), &[10, 2]);
        let before: Vec<Vec<f32>> = (0..10).map(|r| a.row(r).to_vec()).collect();
        a.shuffle_rows(&mut rng);
        let mut after: Vec<Vec<f32>> = (0..10).map(|r| a.row(r).to_vec()).collect();
        let mut sorted_before = before.clone();
        sorted_before.sort_by(|x, y| x[0].partial_cmp(&y[0]).unwrap());
        after.sort_by(|x, y| x[0].partial_cmp(&y[0]).unwrap());
        assert_eq!(sorted_before, after);
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut a = Tensor::zeros(&[3]);
        assert!(!a.has_non_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(a.has_non_finite());
        a.data_mut()[1] = f32::INFINITY;
        assert!(a.has_non_finite());
    }
}
