//! 2-D convolution via im2col lowering.
//!
//! Layouts follow the paper's classifier (Table II): activations are
//! `(batch, channels, height, width)`, weights `(out_ch, in_ch, kh, kw)`
//! flattened to `(out_ch, in_ch*kh*kw)`, stride 1, configurable zero padding.
//! Table II's flatten size (3136 = 64·7·7) and parameter counts imply the
//! paper's two 5×5 convolutions are same-size (padding 2) with the 2×2 max
//! pools providing all downsampling (28 → 14 → 7), so padded convolution is a
//! first-class citizen here. Each batch item is lowered to a
//! `(out_h*out_w, in_ch*kh*kw)` patch matrix and the convolution becomes a
//! matrix multiply, reusing the optimized kernels in [`crate::kernels`].

use crate::kernels::{self, MatRef};
use crate::tensor::Tensor;
use crate::workspace;
use fg_obs::metrics::Counter;
use rayon::prelude::*;

static CONV_FWD_CALLS: Counter = Counter::new("tensor.conv2d.forward_calls");
static CONV_BWD_CALLS: Counter = Counter::new("tensor.conv2d.backward_calls");

/// Static description of a convolution (stride 1, zero padding `pad`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub in_ch: usize,
    pub out_ch: usize,
    pub kh: usize,
    pub kw: usize,
    pub pad: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let (ph, pw) = (h + 2 * self.pad, w + 2 * self.pad);
        assert!(ph >= self.kh && pw >= self.kw, "padded input smaller than kernel");
        (ph - self.kh + 1, pw - self.kw + 1)
    }

    /// Number of columns of the im2col patch matrix.
    pub fn patch_len(&self) -> usize {
        self.in_ch * self.kh * self.kw
    }
}

/// Lower one image `(in_ch, h, w)` into a `(out_h*out_w, patch_len)` matrix,
/// reading zeros outside the image bounds (zero padding).
pub fn im2col(image: &[f32], h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    let (oh, ow) = spec.out_size(h, w);
    let patch = spec.patch_len();
    let pad = spec.pad as isize;
    debug_assert_eq!(image.len(), spec.in_ch * h * w);
    debug_assert_eq!(out.len(), oh * ow * patch);

    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut out[(oy * ow + ox) * patch..(oy * ow + ox + 1) * patch];
            let mut p = 0;
            for c in 0..spec.in_ch {
                let plane = &image[c * h * w..(c + 1) * h * w];
                for ky in 0..spec.kh {
                    let sy = oy as isize + ky as isize - pad;
                    if sy < 0 || sy >= h as isize {
                        row[p..p + spec.kw].fill(0.0);
                        p += spec.kw;
                        continue;
                    }
                    let sy = sy as usize;
                    for kx in 0..spec.kw {
                        let sx = ox as isize + kx as isize - pad;
                        row[p] = if sx < 0 || sx >= w as isize {
                            0.0
                        } else {
                            plane[sy * w + sx as usize]
                        };
                        p += 1;
                    }
                }
            }
        }
    }
}

/// Scatter-add the columns gradient back into an image gradient (adjoint of
/// [`im2col`]; contributions that fell in the zero-padding are dropped).
pub fn col2im(cols: &[f32], h: usize, w: usize, spec: &Conv2dSpec, image_grad: &mut [f32]) {
    let (oh, ow) = spec.out_size(h, w);
    let patch = spec.patch_len();
    let pad = spec.pad as isize;
    debug_assert_eq!(cols.len(), oh * ow * patch);
    debug_assert_eq!(image_grad.len(), spec.in_ch * h * w);

    for oy in 0..oh {
        for ox in 0..ow {
            let row = &cols[(oy * ow + ox) * patch..(oy * ow + ox + 1) * patch];
            let mut p = 0;
            for c in 0..spec.in_ch {
                let plane = &mut image_grad[c * h * w..(c + 1) * h * w];
                for ky in 0..spec.kh {
                    let sy = oy as isize + ky as isize - pad;
                    if sy < 0 || sy >= h as isize {
                        p += spec.kw;
                        continue;
                    }
                    let sy = sy as usize;
                    for kx in 0..spec.kw {
                        let sx = ox as isize + kx as isize - pad;
                        if sx >= 0 && sx < w as isize {
                            plane[sy * w + sx as usize] += row[p];
                        }
                        p += 1;
                    }
                }
            }
        }
    }
}

/// Forward convolution.
///
/// `input` is `(batch, in_ch, h, w)`, `weight` `(out_ch, in_ch*kh*kw)` (the
/// flattened filter bank), `bias` `(out_ch)`. Returns
/// `(batch, out_ch, out_h, out_w)`.
///
/// Per image, the patch matrix is lowered into a workspace buffer and the
/// product `W · colsᵀ` is computed directly in the `(out_ch, out_plane)`
/// output layout (the packing step absorbs the transpose, replacing the old
/// strided transpose scatter), with the bias folded into the GEMM epilogue
/// by seeding each output channel's row. Parallelism is over batch images
/// (disjoint output planes), so results are bit-identical at any thread
/// count; steady-state calls allocate nothing but the returned tensor.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
    CONV_FWD_CALLS.incr();
    let _span = fg_obs::span::span("tensor.conv2d.forward");
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "conv2d input must be (B,C,H,W)");
    let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_ch, "channel mismatch");
    assert_eq!(weight.dims(), &[spec.out_ch, spec.patch_len()]);
    let (oh, ow) = spec.out_size(h, w);
    let img_len = c * h * w;
    let out_plane = oh * ow;
    let patch = spec.patch_len();

    let mut out = vec![0.0f32; b * spec.out_ch * out_plane];
    let in_data = input.data();
    let w_data = weight.data();
    let bias_data = bias.data();

    out.par_chunks_mut(spec.out_ch * out_plane).enumerate().for_each(|(bi, out_img)| {
        let image = &in_data[bi * img_len..(bi + 1) * img_len];
        let mut cols = workspace::take_uninit(out_plane * patch);
        im2col(image, h, w, spec, &mut cols);
        // Seed each output row with its channel bias (the fused epilogue)…
        for (dst, &bv) in out_img.chunks_exact_mut(out_plane).zip(bias_data) {
            dst.fill(bv);
        }
        // …then C(out_ch × out_plane) += W(out_ch × patch) · colsᵀ. The
        // per-image GEMM stays sequential: batch images are the parallel
        // grain here.
        kernels::gemm(
            false,
            spec.out_ch,
            out_plane,
            patch,
            MatRef { data: w_data, rs: patch, cs: 1 },
            MatRef { data: &cols, rs: 1, cs: patch },
            out_img,
        );
    });

    Tensor::from_vec(out, &[b, spec.out_ch, oh, ow])
}

/// Lower a whole batch `(b, in_ch, h, w)` of images into one
/// `(b, out_h*out_w, patch_len)` column slab — the shared im2col buffer of
/// the batched audit path: every audited model convolves the *same*
/// validation batch, so the lowering is paid once and reused across all of
/// them. Pure data movement (each value is copied or zero), so the slab is
/// bit-identical to the per-image [`im2col`] calls [`conv2d_forward`] makes.
pub fn im2col_batch(
    input: &[f32],
    b: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    out: &mut [f32],
) {
    let (oh, ow) = spec.out_size(h, w);
    let img_len = spec.in_ch * h * w;
    let cols_len = oh * ow * spec.patch_len();
    debug_assert_eq!(input.len(), b * img_len);
    assert_eq!(out.len(), b * cols_len, "im2col_batch: output slab size");
    for (image, cols) in input.chunks_exact(img_len).zip(out.chunks_exact_mut(cols_len)) {
        im2col(image, h, w, spec, cols);
    }
}

/// One grouped forward convolution over pre-lowered *shared* columns: every
/// group convolves the same `(b, out_plane, patch)` column slab (from
/// [`im2col_batch`]) with its own `(out_ch, patch)` filter bank and bias,
/// writing group `g`'s `(b, out_ch, out_plane)` output into
/// `out[g*b*out_ch*out_plane..]`.
///
/// Per (group, image) this issues exactly the bias-seed + GEMM of
/// [`conv2d_forward`] on value-identical columns, so every output bit
/// matches `G` independent `conv2d_forward` calls; the group axis fans out
/// over the rayon shim into disjoint output chunks (no cross-group
/// arithmetic), keeping results bit-identical at any `FG_THREADS`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_cols_grouped(
    cols: &[f32],
    b: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    weights: &[&[f32]],
    biases: &[&[f32]],
    out: &mut [f32],
) {
    let groups = weights.len();
    assert_eq!(biases.len(), groups, "conv2d_forward_cols_grouped: weights/biases mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let out_plane = oh * ow;
    let patch = spec.patch_len();
    assert_eq!(cols.len(), b * out_plane * patch, "conv2d_forward_cols_grouped: cols slab");
    assert_eq!(out.len(), groups * b * spec.out_ch * out_plane);
    out.par_chunks_mut(b * spec.out_ch * out_plane).enumerate().for_each(|(g, out_g)| {
        let w_data = weights[g];
        let bias = biases[g];
        debug_assert_eq!(w_data.len(), spec.out_ch * patch);
        debug_assert_eq!(bias.len(), spec.out_ch);
        for (img_cols, out_img) in cols
            .chunks_exact(out_plane * patch)
            .zip(out_g.chunks_exact_mut(spec.out_ch * out_plane))
        {
            for (dst, &bv) in out_img.chunks_exact_mut(out_plane).zip(bias) {
                dst.fill(bv);
            }
            kernels::gemm(
                false,
                spec.out_ch,
                out_plane,
                patch,
                MatRef { data: w_data, rs: patch, cs: 1 },
                MatRef { data: img_cols, rs: 1, cs: patch },
                out_img,
            );
        }
    });
}

/// One grouped forward convolution over *per-group* activations: group `g`
/// convolves its own `(b, in_ch, h, w)` slab slice
/// `input[g*b*in_ch*h*w..]` — the deeper-layer case of the batched audit
/// path, where activations have already diverged per model. Lowering happens
/// inside each group's task (per image, into thread-local workspace scratch,
/// exactly as [`conv2d_forward`] does), followed by the identical
/// bias-seed-then-GEMM sequence; the same bit-identity argument as
/// [`conv2d_forward_cols_grouped`] applies.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_grouped(
    input: &[f32],
    b: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    weights: &[&[f32]],
    biases: &[&[f32]],
    out: &mut [f32],
) {
    let groups = weights.len();
    assert_eq!(biases.len(), groups, "conv2d_forward_grouped: weights/biases mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let out_plane = oh * ow;
    let patch = spec.patch_len();
    let img_len = spec.in_ch * h * w;
    assert_eq!(input.len(), groups * b * img_len, "conv2d_forward_grouped: input slab");
    assert_eq!(out.len(), groups * b * spec.out_ch * out_plane);
    out.par_chunks_mut(b * spec.out_ch * out_plane).enumerate().for_each(|(g, out_g)| {
        let w_data = weights[g];
        let bias = biases[g];
        let in_g = &input[g * b * img_len..(g + 1) * b * img_len];
        let mut cols = workspace::take_uninit(out_plane * patch);
        for (image, out_img) in
            in_g.chunks_exact(img_len).zip(out_g.chunks_exact_mut(spec.out_ch * out_plane))
        {
            im2col(image, h, w, spec, &mut cols);
            for (dst, &bv) in out_img.chunks_exact_mut(out_plane).zip(bias) {
                dst.fill(bv);
            }
            kernels::gemm(
                false,
                spec.out_ch,
                out_plane,
                patch,
                MatRef { data: w_data, rs: patch, cs: 1 },
                MatRef { data: &cols, rs: 1, cs: patch },
                out_img,
            );
        }
    });
}

/// Gradients produced by [`conv2d_backward`].
pub struct Conv2dGrads {
    pub d_input: Tensor,
    pub d_weight: Tensor,
    pub d_bias: Tensor,
}

/// Backward convolution: given the cached forward `input` and the upstream
/// gradient `d_out` `(batch, out_ch, oh, ow)`, produce gradients for input,
/// weight and bias. Weight gradient layout matches the forward flattened
/// filter bank `(out_ch, in_ch*kh*kw)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    spec: &Conv2dSpec,
) -> Conv2dGrads {
    let mut d_weight = Tensor::zeros(&[spec.out_ch, spec.patch_len()]);
    let mut d_bias = Tensor::zeros(&[spec.out_ch]);
    let d_input = conv2d_backward_acc(input, weight, d_out, spec, &mut d_weight, &mut d_bias);
    Conv2dGrads { d_input, d_weight, d_bias }
}

/// Backward convolution with in-place gradient accumulation: adds the batch
/// weight/bias gradients into `d_weight`/`d_bias` (the layer's `Parameter`
/// grads) and returns the input gradient — the training hot path.
///
/// Every image gets one task: the input gradient is written directly into
/// that image's disjoint slice, while the weight/bias gradients accumulate
/// through the shim's fixed fold/reduce tree over batch indices — combine
/// order depends only on the batch size, never the thread count, so the
/// result is bit-identical at any `FG_THREADS`. All per-image scratch (the
/// patch matrix, the upstream-gradient staging, the column gradient, and
/// the fold accumulators) comes from the thread-local workspace pool, so
/// steady-state calls allocate nothing beyond the returned tensor.
pub fn conv2d_backward_acc(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    spec: &Conv2dSpec,
    d_weight: &mut Tensor,
    d_bias: &mut Tensor,
) -> Tensor {
    CONV_BWD_CALLS.incr();
    let _span = fg_obs::span::span("tensor.conv2d.backward");
    let dims = input.dims();
    let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.out_size(h, w);
    let out_plane = oh * ow;
    let img_len = c * h * w;
    let patch = spec.patch_len();
    let out_ch = spec.out_ch;
    assert_eq!(d_out.dims(), &[b, out_ch, oh, ow]);
    assert_eq!(d_weight.dims(), &[out_ch, patch], "conv2d_backward_acc: d_weight shape");
    assert_eq!(d_bias.dims(), &[out_ch], "conv2d_backward_acc: d_bias shape");

    let in_data = input.data();
    let w_data = weight.data();
    let dout_data = d_out.data();

    let mut d_input_vec = vec![0.0f32; b * img_len];
    let (dw, db) = d_input_vec
        .par_chunks_mut(img_len)
        .enumerate()
        .fold(
            || (workspace::take_zeroed(out_ch * patch), workspace::take_zeroed(out_ch)),
            |(mut dw, mut db), (bi, dimg)| {
                let image = &in_data[bi * img_len..(bi + 1) * img_len];
                let mut cols = workspace::take_uninit(out_plane * patch);
                im2col(image, h, w, spec, &mut cols);

                // Upstream grad staged as g(out_plane × out_ch).
                let mut g = workspace::take_uninit(out_plane * out_ch);
                let src = &dout_data[bi * out_ch * out_plane..(bi + 1) * out_ch * out_plane];
                for (oc, plane) in src.chunks_exact(out_plane).enumerate() {
                    for (pos, &v) in plane.iter().enumerate() {
                        g[pos * out_ch + oc] = v;
                    }
                }

                // dW += gᵀ(out_ch × out_plane) · cols(out_plane × patch).
                kernels::gemm(
                    false,
                    out_ch,
                    patch,
                    out_plane,
                    MatRef { data: &g, rs: 1, cs: out_ch },
                    MatRef { data: &cols, rs: patch, cs: 1 },
                    &mut dw,
                );
                // db += column sums of g.
                for row in g.chunks_exact(out_ch) {
                    for (d, &v) in db.iter_mut().zip(row) {
                        *d += v;
                    }
                }
                // dcols = g(out_plane × out_ch) · W(out_ch × patch), scattered
                // back into this image's (pre-zeroed) input-gradient slice.
                let mut dcols = workspace::take_zeroed(out_plane * patch);
                kernels::gemm(
                    false,
                    out_plane,
                    patch,
                    out_ch,
                    MatRef { data: &g, rs: out_ch, cs: 1 },
                    MatRef { data: w_data, rs: patch, cs: 1 },
                    &mut dcols,
                );
                col2im(&dcols, h, w, spec, dimg);
                (dw, db)
            },
        )
        .reduce(
            || (workspace::take_zeroed(out_ch * patch), workspace::take_zeroed(out_ch)),
            |(mut dw1, mut db1), (dw2, db2)| {
                for (a, &x) in dw1.iter_mut().zip(dw2.iter()) {
                    *a += x;
                }
                for (a, &x) in db1.iter_mut().zip(db2.iter()) {
                    *a += x;
                }
                (dw1, db1)
            },
        );

    for (d, &v) in d_weight.data_mut().iter_mut().zip(dw.iter()) {
        *d += v;
    }
    for (d, &v) in d_bias.data_mut().iter_mut().zip(db.iter()) {
        *d += v;
    }
    Tensor::from_vec(d_input_vec, &[b, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let dims = input.dims();
        let (b, _, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = spec.out_size(h, w);
        let pad = spec.pad as isize;
        let mut out = Tensor::zeros(&[b, spec.out_ch, oh, ow]);
        for bi in 0..b {
            for oc in 0..spec.out_ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = bias.data()[oc];
                        for ic in 0..spec.in_ch {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let sy = oy as isize + ky as isize - pad;
                                    let sx = ox as isize + kx as isize - pad;
                                    if sy < 0 || sy >= h as isize || sx < 0 || sx >= w as isize {
                                        continue;
                                    }
                                    let wv = weight
                                        .at(&[oc, ic * spec.kh * spec.kw + ky * spec.kw + kx]);
                                    let xv = input.at(&[bi, ic, sy as usize, sx as usize]);
                                    s += wv * xv;
                                }
                            }
                        }
                        *out.at_mut(&[bi, oc, oy, ox]) = s;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_naive_unpadded() {
        let mut rng = SeededRng::new(1);
        let spec = Conv2dSpec { in_ch: 2, out_ch: 3, kh: 3, kw: 3, pad: 0 };
        let x = Tensor::randn(&[2, 2, 8, 8], &mut rng);
        let w = Tensor::randn(&[3, spec.patch_len()], &mut rng);
        let b = Tensor::randn(&[3], &mut rng);
        let fast = conv2d_forward(&x, &w, &b, &spec);
        let slow = naive_conv(&x, &w, &b, &spec);
        assert_eq!(fast.dims(), &[2, 3, 6, 6]);
        for (a, c) in fast.data().iter().zip(slow.data()) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn forward_matches_naive_padded() {
        let mut rng = SeededRng::new(7);
        let spec = Conv2dSpec { in_ch: 1, out_ch: 2, kh: 5, kw: 5, pad: 2 };
        let x = Tensor::randn(&[2, 1, 10, 10], &mut rng);
        let w = Tensor::randn(&[2, spec.patch_len()], &mut rng);
        let b = Tensor::randn(&[2], &mut rng);
        let fast = conv2d_forward(&x, &w, &b, &spec);
        let slow = naive_conv(&x, &w, &b, &spec);
        // Same-size convolution.
        assert_eq!(fast.dims(), &[2, 2, 10, 10]);
        for (a, c) in fast.data().iter().zip(slow.data()) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn im2col_col2im_adjointness() {
        // <im2col(x), y> == <x, col2im(y)> for any x, y: the two ops must be
        // adjoint linear maps or backprop is wrong. Checked with padding.
        let mut rng = SeededRng::new(2);
        let spec = Conv2dSpec { in_ch: 2, out_ch: 1, kh: 3, kw: 3, pad: 1 };
        let (h, w) = (6, 5);
        let (oh, ow) = spec.out_size(h, w);
        let x = Tensor::randn(&[spec.in_ch * h * w], &mut rng);
        let y = Tensor::randn(&[oh * ow * spec.patch_len()], &mut rng);

        let mut cols = vec![0.0f32; oh * ow * spec.patch_len()];
        im2col(x.data(), h, w, &spec, &mut cols);
        let lhs: f32 = cols.iter().zip(y.data()).map(|(a, b)| a * b).sum();

        let mut back = vec![0.0f32; spec.in_ch * h * w];
        col2im(y.data(), h, w, &spec, &mut back);
        let rhs: f32 = back.iter().zip(x.data()).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SeededRng::new(3);
        let spec = Conv2dSpec { in_ch: 1, out_ch: 2, kh: 2, kw: 2, pad: 1 };
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let w = Tensor::randn(&[2, spec.patch_len()], &mut rng);
        let b = Tensor::randn(&[2], &mut rng);

        // Loss = sum(conv(x)); upstream gradient of ones.
        let out = conv2d_forward(&x, &w, &b, &spec);
        let ones = Tensor::ones(out.dims());
        let grads = conv2d_backward(&x, &w, &ones, &spec);

        let eps = 1e-3f32;
        let loss = |w_: &Tensor, x_: &Tensor, b_: &Tensor| conv2d_forward(x_, w_, b_, &spec).sum();

        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&wp, &x, &b) - loss(&wm, &x, &b)) / (2.0 * eps);
            let ana = grads.d_weight.data()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "dW[{i}]: {num} vs {ana}");
        }
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&w, &xp, &b) - loss(&w, &xm, &b)) / (2.0 * eps);
            let ana = grads.d_input.data()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "dX[{i}]: {num} vs {ana}");
        }
        for i in 0..b.numel() {
            let mut bp = b.clone();
            bp.data_mut()[i] += eps;
            let mut bm = b.clone();
            bm.data_mut()[i] -= eps;
            let num = (loss(&w, &x, &bp) - loss(&w, &x, &bm)) / (2.0 * eps);
            let ana = grads.d_bias.data()[i];
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "dB[{i}]: {num} vs {ana}");
        }
    }

    #[test]
    fn table_ii_shapes() {
        // The paper's classifier: flatten = 3136 = 64*7*7 implies same-size
        // 5x5 convolutions (padding 2) with 2x2 pools doing 28 -> 14 -> 7.
        let c1 = Conv2dSpec { in_ch: 1, out_ch: 32, kh: 5, kw: 5, pad: 2 };
        assert_eq!(c1.out_size(28, 28), (28, 28));
        let c2 = Conv2dSpec { in_ch: 32, out_ch: 64, kh: 5, kw: 5, pad: 2 };
        assert_eq!(c2.out_size(14, 14), (14, 14));
    }
}
