//! Thread-local scratch workspace for the compute kernels.
//!
//! The blocked GEMM ([`crate::kernels`]) and the im2col convolution path
//! ([`crate::conv`]) need short-lived `f32` buffers on every call: packed
//! `A`/`B` panels, lowered patch matrices, gradient staging. Allocating those
//! per call put a `vec![0.0; ..]` (and its page-zeroing) on every hot-path
//! invocation — per *image* in the conv case. This module replaces that with
//! a per-thread pool of reusable buffers:
//!
//! * [`take_uninit`] / [`take_zeroed`] hand out a [`Scratch`] guard backed by
//!   a recycled `Vec<f32>` when one of sufficient capacity is available, and
//!   only touch the allocator otherwise.
//! * Dropping the guard returns the buffer to the current thread's pool
//!   (guards may migrate across pool workers; buffers simply change homes).
//! * Pool traffic feeds the `fg-obs` metrics `tensor.workspace.hits` /
//!   `.misses` / `.evictions`; [`alloc_events`] (the misses counter) lets
//!   tests assert that a steady-state training loop performs **zero**
//!   workspace allocations after warm-up (`crates/nn/tests/alloc_free.rs`).
//!
//! The pool is deliberately simple: a best-fit scan over at most
//! [`MAX_POOLED`] buffers per thread. Hot paths request the same handful of
//! sizes every iteration, so after one warm-up pass every request is served
//! from the pool. Buffer *contents* are unspecified on `take_uninit` (stale
//! data from a previous user); callers must fully overwrite what they read,
//! or use [`take_zeroed`].
//!
//! Determinism: the workspace only recycles storage — it never changes what
//! is computed, so the bit-exactness contract of the kernels is unaffected by
//! pool state.

use fg_obs::metrics::Counter;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Upper bound on buffers retained per thread; excess buffers are freed on
/// return rather than hoarded. Sized for the deepest hot path: a conv
/// backward whose fold tree holds per-segment accumulators (up to 32 split
/// leaves) on top of the per-image staging and packing buffers.
const MAX_POOLED: usize = 96;

/// Non-empty takes served from a recycled buffer.
static HITS: Counter = Counter::new("tensor.workspace.hits");
/// Non-empty takes that had to touch the allocator — the value
/// [`alloc_events`] reports, and the one steady-state hot paths must not
/// move.
static MISSES: Counter = Counter::new("tensor.workspace.misses");
/// Buffers freed on return because the per-thread pool was full.
static EVICTIONS: Counter = Counter::new("tensor.workspace.evictions");

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard over a pooled scratch buffer; derefs to `[f32]` of exactly the
/// requested length. Returns the buffer to the dropping thread's pool.
pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    /// Capacity of the backing buffer (tests use this to observe recycling).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            pool.push(buf);
            if pool.len() > MAX_POOLED {
                // Evict the smallest buffer (possibly the one just pushed):
                // reuse is capacity-based, so retaining the largest
                // `MAX_POOLED` capacities keeps every recurring request
                // servable and avoids free-then-realloc limit cycles when a
                // workload touches more than `MAX_POOLED` distinct sizes.
                let (idx, _) = pool
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, b)| b.capacity())
                    .expect("pool is non-empty");
                pool.swap_remove(idx);
                EVICTIONS.incr();
            }
        });
    }
}

/// Pop the pooled buffer whose capacity fits `len` best (smallest adequate),
/// or allocate a fresh one (counting an allocation event).
fn take_raw(len: usize) -> Vec<f32> {
    let recycled = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let mut best: Option<usize> = None;
        for (i, b) in pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|j: usize| b.capacity() < pool[j].capacity())
            {
                best = Some(i);
            }
        }
        best.map(|i| pool.swap_remove(i))
    });
    match recycled {
        Some(buf) => {
            if len > 0 {
                HITS.incr();
            }
            buf
        }
        None => {
            if len > 0 {
                MISSES.incr();
            }
            Vec::with_capacity(len)
        }
    }
}

/// A scratch buffer of length `len` with **unspecified contents** (possibly
/// stale data from a previous user). Callers must write before they read.
pub fn take_uninit(len: usize) -> Scratch {
    let mut buf = take_raw(len);
    // Capacity is adequate by construction, so resize never reallocates; the
    // zero-fill only touches the (at most once per buffer) grown tail.
    buf.resize(len, 0.0);
    buf.truncate(len);
    Scratch { buf }
}

/// A scratch buffer of length `len`, zero-filled.
pub fn take_zeroed(len: usize) -> Scratch {
    let mut s = take_uninit(len);
    s.fill(0.0);
    s
}

/// Number of workspace allocator hits since process start (the
/// `tensor.workspace.misses` metric). Steady-state hot paths must not move
/// this counter; see `crates/nn/tests/alloc_free.rs`.
pub fn alloc_events() -> u64 {
    MISSES.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        let s = take_uninit(37);
        assert_eq!(s.len(), 37);
        let z = take_zeroed(11);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffers_are_recycled_without_new_allocations() {
        // Warm the pool with the sizes we are about to request.
        {
            let _a = take_uninit(1000);
            let _b = take_uninit(500);
        }
        let before = alloc_events();
        for _ in 0..100 {
            let a = take_uninit(1000);
            let b = take_zeroed(500);
            assert_eq!(a.len(), 1000);
            assert_eq!(b.len(), 500);
        }
        assert_eq!(alloc_events(), before, "steady-state takes must hit the pool");
    }

    #[test]
    fn zero_length_take_never_counts() {
        let before = alloc_events();
        for _ in 0..10 {
            let s = take_uninit(0);
            assert!(s.is_empty());
        }
        assert_eq!(alloc_events(), before);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        // Pool a big and a small buffer, then request a small one: the small
        // buffer must be chosen so the big one stays available.
        {
            let _big = take_uninit(10_000);
            let _small = take_uninit(16);
        }
        let before = alloc_events();
        {
            let small = take_uninit(10);
            assert!(small.capacity() < 10_000, "best-fit picked the oversized buffer");
            let big = take_uninit(9_000);
            assert!(big.capacity() >= 9_000);
        }
        assert_eq!(alloc_events(), before);
    }
}
