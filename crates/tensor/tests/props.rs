//! Property-based tests on the tensor substrate's algebraic invariants.

use fg_tensor::kernels::{dot, matmul, matmul_at, matmul_bt, matmul_reference};
use fg_tensor::rng::SeededRng;
use fg_tensor::stats;
use fg_tensor::Tensor;
use proptest::prelude::*;
use rayon::with_threads;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

/// A random GEMM problem derived from one seed: `(m, k, n)` spanning the
/// blocking boundaries (`m` past `MC`=32, `k` past `KC`=256, `n` past
/// `NR`=16), with each dim independently collapsed to the degenerate 1 every
/// few cases.
fn gemm_case(seed: u64) -> (Tensor, Tensor) {
    let mut rng = SeededRng::new(seed);
    let mut dim = |hi: usize| if rng.next_below(8) == 0 { 1 } else { 1 + rng.next_below(hi) };
    let (m, k, n) = (dim(70), dim(300), dim(40));
    let a = Tensor::randn(&[m, k], &mut rng);
    let b = Tensor::randn(&[k, n], &mut rng);
    (a, b)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(4, 6),
        b in tensor_strategy(6, 3),
        c in tensor_strategy(6, 3),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_identity_is_neutral(a in tensor_strategy(5, 5)) {
        prop_assert!(close(&matmul(&a, &Tensor::eye(5)), &a, 1e-6));
        prop_assert!(close(&matmul(&Tensor::eye(5), &a), &a, 1e-6));
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose(a in tensor_strategy(3, 7), b in tensor_strategy(4, 7)) {
        prop_assert!(close(&matmul_bt(&a, &b), &matmul(&a, &b.transpose()), 1e-4));
    }

    #[test]
    fn matmul_at_equals_explicit_transpose(a in tensor_strategy(7, 3), b in tensor_strategy(7, 4)) {
        prop_assert!(close(&matmul_at(&a, &b), &matmul(&a.transpose(), &b), 1e-4));
    }

    #[test]
    fn blocked_gemm_matches_reference_on_random_shapes(seed in 0u64..1 << 32) {
        let (a, b) = gemm_case(seed);
        let reference = matmul_reference(&a, &b);
        prop_assert!(close(&matmul(&a, &b), &reference, 2e-4), "matmul vs reference");
        prop_assert!(
            close(&matmul_bt(&a, &b.transpose()), &reference, 2e-4),
            "matmul_bt vs reference"
        );
        prop_assert!(
            close(&matmul_at(&a.transpose(), &b), &reference, 2e-4),
            "matmul_at vs reference"
        );
    }

    #[test]
    fn blocked_gemm_is_bitwise_thread_invariant(seed in 0u64..1 << 32) {
        let (a, b) = gemm_case(seed);
        let seq = with_threads(1, || matmul(&a, &b));
        let par = with_threads(4, || matmul(&a, &b));
        let seq_bits: Vec<u32> = seq.data().iter().map(|x| x.to_bits()).collect();
        let par_bits: Vec<u32> = par.data().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(seq_bits, par_bits, "matmul bits diverged between 1 and 4 threads");
    }

    #[test]
    fn transpose_is_involutive(a in tensor_strategy(3, 8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reshape_preserves_contents(a in tensor_strategy(4, 6)) {
        let r = a.clone().reshape(&[6, 4]);
        prop_assert_eq!(r.data(), a.data());
        prop_assert_eq!(r.clone().reshape(&[4, 6]), a);
    }

    #[test]
    fn concat_then_slice_round_trips(a in tensor_strategy(3, 4), b in tensor_strategy(3, 2)) {
        let joined = a.concat_cols(&b);
        prop_assert_eq!(joined.slice_cols(0, 4), a);
        prop_assert_eq!(joined.slice_cols(4, 6), b);
    }

    #[test]
    fn dot_is_symmetric_and_matches_sum(
        v in proptest::collection::vec(-3.0f32..3.0, 1..64),
    ) {
        let w: Vec<f32> = v.iter().rev().copied().collect();
        let d1 = dot(&v, &w);
        let d2 = dot(&w, &v);
        let naive: f32 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        prop_assert!((d1 - d2).abs() < 1e-4);
        prop_assert!((d1 - naive).abs() < 1e-3 * (1.0 + naive.abs()));
    }

    #[test]
    fn axpy_matches_definition(
        a in proptest::collection::vec(-3.0f32..3.0, 16),
        b in proptest::collection::vec(-3.0f32..3.0, 16),
        alpha in -2.0f32..2.0,
    ) {
        let mut t = Tensor::from_vec(a.clone(), &[16]);
        t.axpy(alpha, &Tensor::from_vec(b.clone(), &[16]));
        for i in 0..16 {
            prop_assert!((t.data()[i] - (a[i] + alpha * b[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn stats_invariants(v in proptest::collection::vec(-10.0f32..10.0, 2..40)) {
        let m = stats::mean(&v);
        let lo = v.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(m >= lo - 1e-4 && m <= hi + 1e-4);
        prop_assert!(stats::std_dev(&v) >= 0.0);
        let med = stats::median(&v);
        prop_assert!(med >= lo && med <= hi);
    }

    #[test]
    fn argmax_rows_points_at_row_maximum(a in tensor_strategy(4, 7)) {
        for (r, &j) in a.argmax_rows().iter().enumerate() {
            let row = a.row(r);
            prop_assert!(row.iter().all(|&v| v <= row[j]));
        }
    }

    #[test]
    fn l2_norm_triangle_inequality(a in tensor_strategy(1, 24), b in tensor_strategy(1, 24)) {
        let sum = a.add(&b);
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }
}
