//! Disabled tracing must cost (close to) nothing on the instrumented hot
//! paths. This binary never enables tracing — it must stay in its own test
//! process so no other test can flip the global switch under it.
//!
//! The acceptance bound is expressed two ways:
//!
//! 1. microbenchmark: a disabled `span()` open+drop (the exact operation the
//!    GEMM driver and pool hot paths perform) costs nanoseconds;
//! 2. end-to-end: the per-call instrumentation budget is a negligible
//!    fraction of the smallest matmul the layer library actually runs.
//!
//! Thresholds are deliberately loose (~50× the expected cost) so the test
//! gates regressions — an accidental allocation, lock, or clock read on the
//! disabled path — without flaking on a loaded CI machine.

use fg_tensor::kernels::matmul;
use fg_tensor::tensor::Tensor;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median seconds per iteration of `f` over `reps` timed repetitions.
fn time_per_iter(iters: u32, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t0.elapsed().as_secs_f64() / iters as f64);
    }
    median(samples)
}

#[test]
fn disabled_span_is_nanoseconds() {
    assert!(!fg_obs::enabled(), "this test requires tracing to be off");
    let per_span = time_per_iter(1_000_000, 5, || {
        let _s = fg_obs::span::span("overhead.probe");
        std::hint::black_box(&_s);
    });
    // Expected: a few ns (relaxed load + branch). Gate at 200ns so only a
    // real regression (syscall, lock, allocation) trips it.
    assert!(
        per_span < 200e-9,
        "disabled span costs {:.1}ns per open/drop, expected nanoseconds",
        per_span * 1e9
    );
}

#[test]
fn disabled_instrumentation_is_noise_against_smallest_matmul() {
    assert!(!fg_obs::enabled(), "this test requires tracing to be off");

    // The per-GEMM instrumentation with tracing off: two counter bumps and
    // one enabled() check (the span is never opened).
    let per_call_overhead = time_per_iter(1_000_000, 5, || {
        static CALLS: fg_obs::metrics::Counter = fg_obs::metrics::Counter::new("overhead.calls");
        static FLOPS: fg_obs::metrics::Counter = fg_obs::metrics::Counter::new("overhead.flops");
        CALLS.incr();
        FLOPS.add(std::hint::black_box(123));
        if fg_obs::enabled() {
            unreachable!();
        }
    });

    // The smallest GEMM the classifier runs per batch is far bigger than
    // this 32³ one; if the overhead is invisible here it is invisible
    // everywhere.
    let a = Tensor::zeros(&[32, 32]);
    let b = Tensor::zeros(&[32, 32]);
    let per_matmul = time_per_iter(2_000, 5, || {
        std::hint::black_box(matmul(&a, &b));
    });

    assert!(
        per_call_overhead < per_matmul * 0.01,
        "disabled instrumentation ({:.1}ns) exceeds 1% of a 32x32x32 matmul ({:.1}ns)",
        per_call_overhead * 1e9,
        per_matmul * 1e9
    );
}
