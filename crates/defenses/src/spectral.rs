//! The Spectral baseline: surrogate-VAE anomaly detection over model updates.

use fg_agg::ops::fedavg;
use fg_data::Dataset;
use fg_fl::{
    AggregationContext, AggregationOutcome, AggregationStrategy, ModelUpdate, StrategyTimings,
};
use fg_nn::models::{Classifier, ClassifierSpec, Vae, VaeSpec};
use fg_nn::optim::{Adam, Sgd};
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Spectral's knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// Surrogate dimensionality: the last `surrogate_dim` entries of the
    /// parameter vector (the output layer — the slice most responsive to
    /// label semantics). The original work likewise compresses updates into
    /// a low-dimensional surrogate before the VAE.
    pub surrogate_dim: usize,
    /// VAE hidden width.
    pub vae_hidden: usize,
    /// VAE latent dimensionality.
    pub vae_latent: usize,
    /// KL weight β for the surrogate VAE.
    pub beta: f32,
    /// Simulated pre-training rounds on the auxiliary dataset.
    pub pretrain_rounds: usize,
    /// Pseudo-clients per simulated round.
    pub pretrain_clients: usize,
    /// VAE training epochs over the collected surrogate corpus.
    pub vae_epochs: usize,
    /// Local epochs of each simulated pseudo-client.
    pub local_epochs: usize,
    pub local_batch: usize,
    pub local_lr: f32,
}

impl SpectralConfig {
    /// A configuration sized for the CPU-budget presets.
    pub fn fast() -> Self {
        SpectralConfig {
            surrogate_dim: 512,
            vae_hidden: 64,
            vae_latent: 8,
            beta: 0.05,
            pretrain_rounds: 6,
            pretrain_clients: 8,
            vae_epochs: 60,
            local_epochs: 1,
            local_batch: 32,
            local_lr: 0.05,
        }
    }
}

/// Per-coordinate standardization fitted on the pre-training corpus.
#[derive(Clone, Debug)]
struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    fn fit(rows: &[Vec<f32>]) -> Scaler {
        let d = rows[0].len();
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; d];
        for r in rows {
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0f32; d];
        for r in rows {
            for ((s, &v), &m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-6);
        }
        Scaler { mean, std }
    }

    fn transform(&self, row: &[f32]) -> Vec<f32> {
        row.iter().zip(&self.mean).zip(&self.std).map(|((&v, &m), &s)| (v - m) / s).collect()
    }
}

/// The pre-trained Spectral detector, pluggable as an aggregation strategy.
pub struct SpectralDefense {
    config: SpectralConfig,
    vae: Vae,
    scaler: Scaler,
}

impl SpectralDefense {
    /// Pre-train the detector on the server's auxiliary dataset: simulate
    /// benign local trainings, collect surrogates, fit the scaler, train the
    /// VAE. This is the centralized preparation the paper criticizes
    /// Spectral for needing (FedGuard's §VI-A "works out of the box" claim).
    pub fn pretrain(
        classifier: &ClassifierSpec,
        aux: &Dataset,
        config: SpectralConfig,
        seed: u64,
    ) -> Self {
        assert!(!aux.is_empty(), "Spectral needs a non-empty auxiliary dataset");
        assert!(config.surrogate_dim <= classifier.num_params());
        let mut rng = SeededRng::new(seed);
        let mut global = Classifier::new(classifier, &mut rng).get_params();
        let mut corpus: Vec<Vec<f32>> = Vec::new();

        for round in 0..config.pretrain_rounds {
            let mut round_updates: Vec<Vec<f32>> = Vec::new();
            for c in 0..config.pretrain_clients {
                // Pseudo-client: a bootstrap subset of the auxiliary data.
                let mut sub_rng = rng.fork((round * 1000 + c) as u64);
                let take = (aux.len() / 2).max(1);
                let idx = sub_rng.sample_distinct(aux.len(), take);
                let mut subset = aux.subset(&idx);
                let mut clf = Classifier::from_params(classifier, &global);
                let mut sgd = Sgd::with_momentum(config.local_lr, 0.9);
                for _ in 0..config.local_epochs {
                    subset.shuffle(&mut sub_rng);
                    for (x, y) in subset.batches(config.local_batch) {
                        clf.train_batch(&x, &y, &mut sgd);
                    }
                }
                round_updates.push(clf.get_params());
            }
            // Collect surrogate *deltas* relative to the round's global
            // (updates, not absolute weights — deltas are stationary across
            // rounds), then advance the central model (benign FedAvg over
            // the pseudo-clients).
            for u in &round_updates {
                corpus.push(Self::delta_surrogate(u, &global, config.surrogate_dim));
            }
            let refs: Vec<&[f32]> = round_updates.iter().map(|u| u.as_slice()).collect();
            global = fedavg(&refs, &vec![1usize; refs.len()]);
        }

        let scaler = Scaler::fit(&corpus);
        let standardized: Vec<Vec<f32>> = corpus.iter().map(|r| scaler.transform(r)).collect();

        let spec = VaeSpec {
            x_dim: config.surrogate_dim,
            hidden: config.vae_hidden,
            latent: config.vae_latent,
        };
        let mut vae = Vae::new(&spec, &mut rng);
        let mut adam = Adam::new(1e-3);
        let flat: Vec<f32> = standardized.iter().flatten().copied().collect();
        let x = Tensor::from_vec(flat, &[standardized.len(), config.surrogate_dim]);
        for _ in 0..config.vae_epochs {
            vae.train_batch(&x, config.beta, &mut adam, &mut rng);
        }

        SpectralDefense { config, vae, scaler }
    }

    /// Last `dim` coordinates of `params - global` — the raw surrogate.
    fn delta_surrogate(params: &[f32], global: &[f32], dim: usize) -> Vec<f32> {
        assert_eq!(params.len(), global.len(), "surrogate: global size mismatch");
        params[params.len() - dim..]
            .iter()
            .zip(&global[global.len() - dim..])
            .map(|(&p, &g)| p - g)
            .collect()
    }

    fn surrogate(&self, params: &[f32], global: &[f32]) -> Vec<f32> {
        self.scaler.transform(&Self::delta_surrogate(params, global, self.config.surrogate_dim))
    }

    /// Reconstruction error per update — the anomaly scores the dynamic
    /// threshold operates on. `global` is the round's starting parameters.
    pub fn scores(&mut self, updates: &[ModelUpdate], global: &[f32]) -> Vec<f32> {
        let rows: Vec<Vec<f32>> =
            updates.iter().map(|u| self.surrogate(&u.params, global)).collect();
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = Tensor::from_vec(flat, &[rows.len(), self.config.surrogate_dim]);
        self.vae.reconstruction_errors(&x)
    }
}

impl AggregationStrategy for SpectralDefense {
    fn name(&self) -> &'static str {
        "Spectral"
    }

    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome {
        let audit_span = fg_obs::span::timed_span("round.audit");
        let errors = self.scores(updates, ctx.global);
        let threshold = errors.iter().sum::<f32>() / errors.len() as f32;
        let audit_secs = audit_span.close();
        let mut keep: Vec<usize> = (0..updates.len()).filter(|&i| errors[i] <= threshold).collect();
        if keep.is_empty() {
            // Degenerate round (all errors identical / NaN): keep everything
            // rather than diverge.
            keep = (0..updates.len()).collect();
        }
        let refs: Vec<&[f32]> = keep.iter().map(|&i| updates[i].params.as_slice()).collect();
        let counts: Vec<usize> = keep.iter().map(|&i| updates[i].num_samples).collect();
        AggregationOutcome::new(
            fedavg(&refs, &counts),
            keep.iter().map(|&i| updates[i].client_id).collect(),
        )
        .with_scores(updates.iter().zip(&errors).map(|(u, &e)| (u.client_id, e)).collect())
        .with_threshold(threshold)
        .with_timings(StrategyTimings { synthesis_secs: 0.0, audit_secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_data::synth::generate_dataset;
    use fg_tensor::rng::SeededRng;

    fn tiny_config() -> SpectralConfig {
        SpectralConfig {
            surrogate_dim: 170, // MLP hidden=16 output layer size
            vae_hidden: 32,
            vae_latent: 4,
            beta: 0.05,
            pretrain_rounds: 3,
            pretrain_clients: 4,
            vae_epochs: 40,
            local_epochs: 1,
            local_batch: 16,
            local_lr: 0.05,
        }
    }

    fn test_global() -> Vec<f32> {
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        Classifier::new(&spec, &mut SeededRng::new(0)).get_params()
    }

    fn benign_update(id: usize, aux: &Dataset, seed: u64) -> ModelUpdate {
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let mut rng = SeededRng::new(seed);
        let global = test_global();
        let mut clf = Classifier::from_params(&spec, &global);
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let mut data = aux.clone();
        data.shuffle(&mut rng);
        for (x, y) in data.batches(16) {
            clf.train_batch(&x, &y, &mut sgd);
        }
        ModelUpdate {
            client_id: id,
            params: clf.get_params(),
            num_samples: aux.len(),
            decoder: None,
            class_coverage: None,
        }
    }

    #[test]
    fn pretrained_detector_separates_garbage_updates() {
        let aux = generate_dataset(10, 3); // 100 samples
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let mut def = SpectralDefense::pretrain(&spec, &aux, tiny_config(), 7);

        let benign: Vec<ModelUpdate> =
            (0..4).map(|i| benign_update(i, &aux, 100 + i as u64)).collect();
        let mut garbage = benign_update(9, &aux, 999);
        garbage.params.iter_mut().for_each(|w| *w = 1.0); // same-value attack

        let mut updates = benign.clone();
        updates.push(garbage);
        let scores = def.scores(&updates, &test_global());
        let max_benign = scores[..4].iter().copied().fold(f32::MIN, f32::max);
        assert!(
            scores[4] > max_benign,
            "garbage update not flagged: benign max {max_benign}, garbage {}",
            scores[4]
        );
    }

    #[test]
    fn aggregate_excludes_high_error_updates() {
        let aux = generate_dataset(10, 4);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let mut def = SpectralDefense::pretrain(&spec, &aux, tiny_config(), 8);

        let mut updates: Vec<ModelUpdate> =
            (0..4).map(|i| benign_update(i, &aux, 200 + i as u64)).collect();
        let mut attacker = benign_update(4, &aux, 777);
        attacker.params.iter_mut().for_each(|w| *w = 1.0);
        updates.push(attacker);

        let global = test_global();
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(0) };
        let out = def.aggregate(&updates, &mut ctx);
        assert!(!out.selected.contains(&4), "attacker survived Spectral: {:?}", out.selected);
        assert!(!out.selected.is_empty());
    }

    #[test]
    fn degenerate_round_keeps_everyone() {
        let aux = generate_dataset(5, 5);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let mut def = SpectralDefense::pretrain(&spec, &aux, tiny_config(), 9);
        // Identical updates: every error equals the mean, all kept.
        let u = benign_update(0, &aux, 1);
        let updates =
            vec![ModelUpdate { client_id: 0, ..u.clone() }, ModelUpdate { client_id: 1, ..u }];
        let global = test_global();
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(0) };
        let out = def.aggregate(&updates, &mut ctx);
        assert_eq!(out.selected.len(), 2);
    }
}
