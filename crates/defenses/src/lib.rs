//! # fg-defenses
//!
//! Anomaly-detection defense baselines. Currently: **Spectral** (Li et al.,
//! "Learning to Detect Malicious Clients for Robust Federated Learning",
//! 2020), the strongest baseline in the paper's evaluation.
//!
//! Spectral assumes a public auxiliary dataset at the server. Before
//! federated training starts, the server simulates benign local trainings on
//! that dataset, extracts a low-dimensional *surrogate vector* from each
//! resulting model update (the output-layer parameters), and pre-trains a
//! VAE to reconstruct benign surrogates. During federated rounds every
//! client's surrogate is scored by reconstruction error; updates scoring
//! above the dynamic threshold — the mean of the round's errors — are
//! discarded and the rest are FedAvg'd.

pub mod spectral;

pub use spectral::{SpectralConfig, SpectralDefense};
