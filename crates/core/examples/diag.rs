use fedguard::experiment::*;
fn main() {
    for sigma in [3.0f32, 8.0] {
        for s in [StrategyKind::FedAvg, StrategyKind::GeoMed] {
            let cfg = ExperimentConfig::preset(
                Preset::Fast,
                s,
                AttackScenario::AdditiveNoise { fraction: 0.5, sigma },
                42,
            );
            let r = run_experiment(&cfg);
            println!(
                "{} sigma={sigma}: tail={} final={:.3}",
                cfg.label(),
                r.tail_accuracy(),
                r.final_accuracy()
            );
        }
    }
}
