//! FedGuard's selective parameter aggregation operator (paper §III-B,
//! Algorithm 1 lines 1-7).

use crate::synthesis::{synthesize_validation_set, DecoderSubmission, SynthesisBudget};
use fg_agg::ops::{coordinate_median, fedavg, geometric_median};
use fg_fl::{
    AggregationContext, AggregationOutcome, AggregationStrategy, ModelUpdate, StrategyTimings,
};
use fg_nn::models::{BatchedClassifier, Classifier, ClassifierSpec, CvaeSpec};
use fg_obs::span::timed_span;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The aggregation operator FedGuard applies to the *selected* updates
/// (Alg. 1 line 7 uses FedAvg; §VI-C proposes swapping in more robust
/// operators, which this reproduction implements as an extension).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum InnerAggregator {
    /// Sample-count-weighted mean (the paper's operator).
    #[default]
    FedAvg,
    /// Geometric median over the selected updates.
    GeoMed,
    /// Coordinate-wise median over the selected updates.
    Median,
}

impl InnerAggregator {
    /// Combine the kept updates.
    fn combine(&self, refs: &[&[f32]], counts: &[usize]) -> Vec<f32> {
        match self {
            InnerAggregator::FedAvg => fedavg(refs, counts),
            InnerAggregator::GeoMed => geometric_median(refs, 100, 1e-6),
            InnerAggregator::Median => coordinate_median(refs),
        }
    }
}

/// Which scorer implementation the audit stage (Alg. 1 line 5) runs.
///
/// Both produce **bitwise identical** scores — the batched path issues, per
/// model, the same kernel calls as the sequential one and fans the model
/// axis into disjoint output slabs (`fg_nn::models::BatchedClassifier`);
/// `tests/schedule_invariance.rs` and `crates/nn/tests/batched_props.rs`
/// pin the equality. `Sequential` is kept as the oracle the fast path is
/// cross-checked against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditMode {
    /// One grouped kernel launch per layer across all audited models,
    /// sharing the validation batch's im2col — the fast path.
    #[default]
    Batched,
    /// Per-model `Classifier::from_params` + `evaluate` — the oracle.
    Sequential,
}

impl AuditMode {
    /// Apply the `FG_BATCHED_AUDIT` environment override: `0`/`false`/`off`
    /// force the sequential oracle, `1`/`true`/`on` force the batched path,
    /// anything else (or unset) keeps the configured mode.
    pub fn resolved(self) -> AuditMode {
        match std::env::var("FG_BATCHED_AUDIT") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "0" | "false" | "off" => AuditMode::Sequential,
                "1" | "true" | "on" => AuditMode::Batched,
                _ => self,
            },
            Err(_) => self,
        }
    }
}

/// FedGuard's knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FedGuardConfig {
    /// Architecture of the federated classifier (needed to rebuild `f_ψ`
    /// from each flat update for auditing).
    pub classifier: ClassifierSpec,
    /// Architecture of the clients' CVAEs (needed to rebuild decoders).
    pub cvae: CvaeSpec,
    /// Synthetic-sample budget `t`.
    pub budget: SynthesisBudget,
    /// Categorical parameter `α` over classes; `None` = uniform `1/L`.
    pub class_probs: Option<Vec<f32>>,
    /// Batch size for server-side auditing.
    pub eval_batch: usize,
    /// Aggregation operator applied to the selected updates (§VI-C).
    pub inner: InnerAggregator,
    /// Condition each decoder only on classes it was trained on (§VI-B
    /// extension for heterogeneous clients). Off = the paper's protocol.
    pub coverage_aware: bool,
    /// Audit scorer implementation; `FG_BATCHED_AUDIT` overrides at run
    /// time. Defaults to [`AuditMode::Batched`] (bitwise-equal fast path).
    #[serde(default)]
    pub audit: AuditMode,
}

impl FedGuardConfig {
    /// The paper's §IV-D configuration for `m` sampled clients: `t = 2m`
    /// total samples, uniform class distribution.
    pub fn paper(classifier: ClassifierSpec, m: usize) -> Self {
        FedGuardConfig {
            classifier,
            cvae: CvaeSpec::table_iii(),
            budget: SynthesisBudget::paper(m),
            class_probs: None,
            eval_batch: 64,
            inner: InnerAggregator::FedAvg,
            coverage_aware: false,
            audit: AuditMode::Batched,
        }
    }
}

/// The FedGuard aggregation strategy.
///
/// Per round:
/// 1. collect the active clients' decoders `θ_{j∈J}` from their updates,
/// 2. synthesize the validation set `D_syn` (Alg. 1 lines 2-4),
/// 3. score every client's classifier on `D_syn` (line 5),
/// 4. keep clients with accuracy ≥ the round mean (line 6),
/// 5. FedAvg the kept updates (line 7).
///
/// Per-round diagnostics (audit scores, selection threshold, synthesis and
/// audit wall time) are reported through the returned
/// [`AggregationOutcome`], which the federation forwards to telemetry
/// observers.
///
/// The server learning rate of Fig. 5 is applied by the federation loop
/// (`FederationConfig::server_lr`), orthogonal to this operator.
pub struct FedGuardStrategy {
    config: FedGuardConfig,
}

impl FedGuardStrategy {
    pub fn new(config: FedGuardConfig) -> Self {
        FedGuardStrategy { config }
    }

    pub fn config(&self) -> &FedGuardConfig {
        &self.config
    }
}

impl AggregationStrategy for FedGuardStrategy {
    fn name(&self) -> &'static str {
        "FedGuard"
    }

    fn uses_decoders(&self) -> bool {
        true
    }

    fn aggregate(
        &mut self,
        updates: &[ModelUpdate],
        ctx: &mut AggregationContext<'_>,
    ) -> AggregationOutcome {
        // Degenerate round: a single survivor has no peers to be audited
        // against (the mean-threshold selection would trivially keep it).
        // Skip synthesis entirely and pass it through.
        if updates.len() == 1 {
            let u = &updates[0];
            return AggregationOutcome::new(u.params.clone(), vec![u.client_id]);
        }

        // (1) Gather decoders. Every FedGuard client ships one; tolerate
        // missing decoders (a malformed submission) by auditing with the
        // rest. Non-finite decoders would poison every synthesized sample
        // they condition, so they are skipped too (the federation sanitizer
        // strips them upstream; this guards standalone use).
        let decoders: Vec<DecoderSubmission<'_>> = updates
            .iter()
            .filter_map(|u| {
                u.decoder.as_deref().filter(|theta| theta.iter().all(|x| x.is_finite())).map(
                    |theta| DecoderSubmission {
                        client_id: u.client_id,
                        theta,
                        coverage: u.class_coverage.as_deref(),
                    },
                )
            })
            .collect();

        if decoders.is_empty() {
            // No decoder reached the server: nothing to audit with. Fall
            // back to FedAvg over everything rather than stall the round.
            let refs: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            let counts: Vec<usize> = updates.iter().map(|u| u.num_samples).collect();
            return AggregationOutcome::new(
                fedavg(&refs, &counts),
                updates.iter().map(|u| u.client_id).collect(),
            );
        }

        // (2) Synthesize D_syn.
        let stage = timed_span("round.synthesis");
        let d_syn = synthesize_validation_set(
            &decoders,
            &self.config.cvae,
            &self.config.budget,
            self.config.class_probs.as_deref(),
            self.config.coverage_aware,
            &mut ctx.rng,
        );
        let x = d_syn.to_tensor();
        let y = d_syn.labels_usize();
        let synthesis_secs = stage.close();

        // (3) Audit every client on the identical synthetic set. The
        // batched scorer (default) drives one grouped kernel launch per
        // layer across all models, sharing the validation batch's im2col;
        // the sequential path reconstructs and scores one model at a time
        // and is kept as the bitwise oracle (`FG_BATCHED_AUDIT=0`).
        let stage = timed_span("round.audit");
        let eval_batch = self.config.eval_batch;
        let classifier = self.config.classifier;
        let accuracies: Vec<(usize, f32)> = match self.config.audit.resolved() {
            AuditMode::Batched => {
                let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
                let scores =
                    BatchedClassifier::new(&classifier, &params).evaluate(&x, &y, eval_batch);
                updates.iter().zip(scores).map(|(u, s)| (u.client_id, s)).collect()
            }
            AuditMode::Sequential => updates
                .par_iter()
                .map(|u| {
                    let acc = if u.is_non_finite() {
                        // Corrupted to NaN/Inf: worst possible audit score.
                        0.0
                    } else {
                        let mut clf = Classifier::from_params(&classifier, &u.params);
                        clf.evaluate(&x, &y, eval_batch)
                    };
                    (u.client_id, acc)
                })
                .collect(),
        };
        let audit_secs = stage.close();

        // (4) Selection threshold: the round-mean accuracy.
        let mean_acc = accuracies.iter().map(|&(_, a)| a).sum::<f32>() / accuracies.len() as f32;
        let mut selected: Vec<usize> =
            accuracies.iter().filter(|&&(_, a)| a >= mean_acc).map(|&(id, _)| id).collect();
        if selected.is_empty() {
            // All-equal (or pathological) scores: keep everyone.
            selected = updates.iter().map(|u| u.client_id).collect();
        }

        // (5) FedAvg over the kept updates.
        let selected_set: HashSet<usize> = selected.iter().copied().collect();
        let kept: Vec<&ModelUpdate> =
            updates.iter().filter(|u| selected_set.contains(&u.client_id)).collect();
        let refs: Vec<&[f32]> = kept.iter().map(|u| u.params.as_slice()).collect();
        let counts: Vec<usize> = kept.iter().map(|u| u.num_samples).collect();
        let params = self.config.inner.combine(&refs, &counts);

        AggregationOutcome::new(params, selected)
            .with_scores(accuracies)
            .with_threshold(mean_acc)
            .with_timings(StrategyTimings { synthesis_secs, audit_secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_data::synth::generate_dataset;
    use fg_nn::models::Cvae;
    use fg_nn::optim::{Adam, Sgd};
    use fg_tensor::rng::SeededRng;

    const HIDDEN: usize = 16;

    fn clf_spec() -> ClassifierSpec {
        ClassifierSpec::Mlp { hidden: HIDDEN }
    }

    fn cvae_spec() -> CvaeSpec {
        CvaeSpec::reduced(64, 8)
    }

    fn config() -> FedGuardConfig {
        FedGuardConfig {
            classifier: clf_spec(),
            cvae: cvae_spec(),
            budget: SynthesisBudget::Total(60),
            class_probs: None,
            eval_batch: 32,
            inner: InnerAggregator::FedAvg,
            coverage_aware: false,
            audit: AuditMode::Batched,
        }
    }

    /// A decently trained classifier + CVAE pair on real synthetic digits.
    fn honest_update(id: usize, seed: u64) -> ModelUpdate {
        let data = generate_dataset(18, seed); // 180 samples
        let mut rng = SeededRng::new(seed);
        let mut clf = Classifier::new(&clf_spec(), &mut rng);
        let mut sgd = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..6 {
            for (x, y) in data.batches(32) {
                clf.train_batch(&x, &y, &mut sgd);
            }
        }
        let mut cvae = Cvae::new(&cvae_spec(), &mut rng);
        let mut adam = Adam::new(2e-3);
        for _ in 0..50 {
            for (x, y) in data.batches(64) {
                cvae.train_batch(&x, &y, &mut adam, &mut rng);
            }
        }
        let coverage = data.class_histogram(10).iter().map(|&c| c as u32).collect();
        ModelUpdate {
            client_id: id,
            params: clf.get_params(),
            num_samples: data.len(),
            decoder: Some(cvae.decoder_params()),
            class_coverage: Some(coverage),
        }
    }

    #[test]
    fn selective_aggregation_excludes_garbage_update() {
        let honest: Vec<ModelUpdate> = (0..3).map(|i| honest_update(i, 10 + i as u64)).collect();
        let mut garbage = honest[0].clone();
        garbage.client_id = 99;
        garbage.params.iter_mut().for_each(|w| *w = 1.0); // same-value attack

        let mut updates = honest;
        updates.push(garbage);
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(0) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);

        assert!(!out.selected.contains(&99), "garbage update selected: {:?}", out.selected);
        assert!(!out.selected.is_empty());
        // Diagnostics reported for all four updates with a sane threshold.
        assert_eq!(out.scores.len(), 4);
        let threshold = out.threshold.expect("FedGuard reports its threshold");
        assert!((0.0..=1.0).contains(&threshold));
        // Synthesis and audit both take measurable time.
        assert!(out.timings.synthesis_secs > 0.0);
        assert!(out.timings.audit_secs > 0.0);
    }

    #[test]
    fn selection_never_includes_below_mean_scores() {
        let updates: Vec<ModelUpdate> = (0..4).map(|i| honest_update(i, 20 + i as u64)).collect();
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(1) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);
        let threshold = out.threshold.unwrap();
        for &(id, acc) in &out.scores {
            if out.selected.contains(&id) {
                assert!(acc >= threshold);
            } else {
                assert!(acc < threshold);
            }
        }
    }

    #[test]
    fn non_finite_updates_audit_to_zero_and_are_dropped() {
        let mut updates: Vec<ModelUpdate> =
            (0..3).map(|i| honest_update(i, 30 + i as u64)).collect();
        updates[2].params[0] = f32::NAN;
        updates[2].client_id = 7;
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(2) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);
        assert!(!out.selected.contains(&7));
        assert!(out.params.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn missing_decoders_fall_back_to_fedavg() {
        let mut updates: Vec<ModelUpdate> =
            (0..2).map(|i| honest_update(i, 40 + i as u64)).collect();
        for u in &mut updates {
            u.decoder = None;
        }
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(3) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);
        assert_eq!(out.selected.len(), 2);
    }

    #[test]
    fn inner_operators_produce_valid_aggregates() {
        let updates: Vec<ModelUpdate> = (0..3).map(|i| honest_update(i, 50 + i as u64)).collect();
        let global = vec![0.0f32; updates[0].params.len()];
        for inner in [InnerAggregator::FedAvg, InnerAggregator::GeoMed, InnerAggregator::Median] {
            let mut cfg = config();
            cfg.inner = inner;
            let mut s = FedGuardStrategy::new(cfg);
            let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(4) };
            let out = s.aggregate(&updates, &mut ctx);
            assert_eq!(out.params.len(), global.len(), "{inner:?}");
            assert!(out.params.iter().all(|w| w.is_finite()), "{inner:?}");
        }
    }

    #[test]
    fn single_update_round_passes_through_without_synthesis() {
        let updates = vec![honest_update(4, 60)];
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(5) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);
        assert_eq!(out.params, updates[0].params);
        assert_eq!(out.selected, vec![4]);
        // No synthesis/audit phase ran.
        assert_eq!(out.timings.synthesis_secs, 0.0);
        assert_eq!(out.timings.audit_secs, 0.0);
    }

    #[test]
    fn non_finite_decoders_are_excluded_from_synthesis() {
        let mut updates: Vec<ModelUpdate> =
            (0..3).map(|i| honest_update(i, 70 + i as u64)).collect();
        // Client 2's decoder is poisoned; its (finite) classifier update must
        // still be audited, and the synthetic set must stay usable.
        if let Some(theta) = updates[2].decoder.as_mut() {
            theta[0] = f32::NAN;
        }
        let global = vec![0.0f32; updates[0].params.len()];
        let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(6) };
        let mut s = FedGuardStrategy::new(config());
        let out = s.aggregate(&updates, &mut ctx);
        assert_eq!(out.scores.len(), 3, "every update is still audited");
        assert!(out.params.iter().all(|w| w.is_finite()));
        assert!(!out.selected.is_empty());
    }

    #[test]
    fn batched_and_sequential_audits_are_bit_identical() {
        let updates: Vec<ModelUpdate> = (0..4).map(|i| honest_update(i, 80 + i as u64)).collect();
        let global = vec![0.0f32; updates[0].params.len()];
        let run = |audit: AuditMode| {
            let mut cfg = config();
            cfg.audit = audit;
            let mut s = FedGuardStrategy::new(cfg);
            // Same RNG seed → same synthetic set → only the scorer differs.
            let mut ctx = AggregationContext { round: 0, global: &global, rng: SeededRng::new(9) };
            s.aggregate(&updates, &mut ctx)
        };
        let batched = run(AuditMode::Batched);
        let sequential = run(AuditMode::Sequential);
        let bits = |scores: &[(usize, f32)]| {
            scores.iter().map(|&(id, a)| (id, a.to_bits())).collect::<Vec<_>>()
        };
        assert_eq!(bits(&batched.scores), bits(&sequential.scores), "audit scores diverged");
        assert_eq!(
            batched.threshold.unwrap().to_bits(),
            sequential.threshold.unwrap().to_bits(),
            "selection threshold diverged"
        );
        assert_eq!(batched.selected, sequential.selected, "roster diverged");
        let pb: Vec<u32> = batched.params.iter().map(|v| v.to_bits()).collect();
        let ps: Vec<u32> = sequential.params.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, ps, "aggregated parameters diverged");
    }

    #[test]
    fn paper_config_uses_two_m_budget() {
        let cfg = FedGuardConfig::paper(ClassifierSpec::TableIICnn, 50);
        assert_eq!(cfg.budget, SynthesisBudget::Total(100));
        assert_eq!(cfg.cvae, CvaeSpec::table_iii());
    }
}
