//! Experiment summaries — the statistics behind Table IV.

use fg_fl::RoundRecord;
use fg_tensor::stats::MeanStd;
use serde::{Deserialize, Serialize};

/// Mean ± std of accuracy over the last `tail_fraction` of rounds. The paper
/// averages the last 40 of 50 rounds ("we do not average the 10 first rounds
/// ... because the model has not converged yet"), i.e. `tail_fraction = 0.8`.
pub fn tail_accuracy(history: &[RoundRecord], tail_fraction: f64) -> MeanStd {
    assert!((0.0..=1.0).contains(&tail_fraction), "tail fraction out of range");
    if history.is_empty() {
        return MeanStd { mean: 0.0, std: 0.0 };
    }
    let skip = ((history.len() as f64) * (1.0 - tail_fraction)).round() as usize;
    let skip = skip.min(history.len() - 1);
    let tail: Vec<f32> = history[skip..].iter().map(|r| r.accuracy).collect();
    MeanStd::of(&tail)
}

/// Detection quality over a run: how often malicious clients were excluded
/// and how often benign clients were wrongly excluded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Fraction of sampled malicious updates excluded from aggregation.
    pub malicious_exclusion_rate: f64,
    /// Fraction of sampled benign updates excluded from aggregation.
    pub benign_exclusion_rate: f64,
}

/// Compute detection rates over a run history.
pub fn detection_summary(history: &[RoundRecord]) -> DetectionSummary {
    let mut mal_total = 0usize;
    let mut mal_excluded = 0usize;
    let mut ben_total = 0usize;
    let mut ben_excluded = 0usize;
    for r in history {
        let mal = r.malicious_sampled.len();
        mal_total += mal;
        mal_excluded += r.malicious_excluded();
        ben_total += r.sampled.len() - mal;
        ben_excluded += r.benign_excluded();
    }
    DetectionSummary {
        malicious_exclusion_rate: if mal_total == 0 {
            0.0
        } else {
            mal_excluded as f64 / mal_total as f64
        },
        benign_exclusion_rate: if ben_total == 0 {
            0.0
        } else {
            ben_excluded as f64 / ben_total as f64
        },
    }
}

/// Mean wall-clock seconds per round (Table V's "training time / round").
pub fn mean_round_secs(history: &[RoundRecord]) -> f64 {
    if history.is_empty() {
        return 0.0;
    }
    history.iter().map(|r| r.wall_secs).sum::<f64>() / history.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_fl::CommStats;

    fn record(round: usize, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            accuracy: acc,
            sampled: vec![0, 1],
            selected: vec![0],
            malicious_sampled: vec![1],
            wall_secs: 2.0,
            comm: CommStats::default(),
        }
    }

    #[test]
    fn tail_skips_warmup_rounds() {
        // 10 rounds: first 2 bad, last 8 good; tail 0.8 sees only the 8.
        let mut h: Vec<RoundRecord> = Vec::new();
        for r in 0..10 {
            h.push(record(r, if r < 2 { 0.1 } else { 0.9 }));
        }
        let s = tail_accuracy(&h, 0.8);
        assert!((s.mean - 0.9).abs() < 1e-6);
        assert!(s.std < 1e-6);
    }

    #[test]
    fn tail_full_history() {
        let h = vec![record(0, 0.5), record(1, 1.0)];
        let s = tail_accuracy(&h, 1.0);
        assert!((s.mean - 0.75).abs() < 1e-6);
    }

    #[test]
    fn tail_of_empty_history_is_zero() {
        assert_eq!(tail_accuracy(&[], 0.8).mean, 0.0);
    }

    #[test]
    fn detection_rates() {
        // Each round: 1 malicious sampled + excluded, 1 benign kept.
        let h = vec![record(0, 0.9), record(1, 0.9)];
        let d = detection_summary(&h);
        assert_eq!(d.malicious_exclusion_rate, 1.0);
        assert_eq!(d.benign_exclusion_rate, 0.0);
    }

    #[test]
    fn mean_round_time() {
        let h = vec![record(0, 0.9), record(1, 0.9)];
        assert_eq!(mean_round_secs(&h), 2.0);
        assert_eq!(mean_round_secs(&[]), 0.0);
    }
}
