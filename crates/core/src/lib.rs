//! # FedGuard
//!
//! A complete Rust reproduction of *"FedGuard: Selective Parameter
//! Aggregation for Poisoning Attack Mitigation in Federated Learning"*
//! (Chelli et al., IEEE CLUSTER 2023).
//!
//! FedGuard defends federated learning against poisoning without auxiliary
//! datasets or centralized pre-training: every client trains a Conditional
//! Variational AutoEncoder (CVAE) on its private data alongside the task
//! model and ships the CVAE **decoder** with each update. Per round, the
//! server samples latent vectors `z ~ N(0, I)` and labels `y ~ Cat(L, α)`,
//! synthesizes a validation set from the active clients' decoders
//! ([`synthesis`]), scores every submitted classifier on it, and aggregates
//! only the updates at or above the round-mean accuracy
//! ([`strategy::FedGuardStrategy`] — Algorithm 1 of the paper).
//!
//! This crate is the public façade of the workspace: it re-exports the
//! substrate crates (`fg-tensor`, `fg-nn`, `fg-data`, `fg-fl`, `fg-agg`,
//! `fg-attacks`, `fg-defenses`) and owns the [`experiment`] harness that the
//! examples and the paper-reproduction benches are written against.
//!
//! ## Quickstart
//!
//! ```no_run
//! use fedguard::experiment::{AttackScenario, ExperimentConfig, Preset, StrategyKind};
//!
//! // FedGuard vs. a 50% sign-flipping attack, CPU-budget scale.
//! let cfg = ExperimentConfig::preset(
//!     Preset::Smoke,
//!     StrategyKind::FedGuard,
//!     AttackScenario::SignFlip { fraction: 0.5 },
//!     42,
//! );
//! let result = fedguard::experiment::run_experiment(&cfg);
//! println!("final accuracy: {:.2}%", result.final_accuracy() * 100.0);
//! ```

pub mod experiment;
pub mod strategy;
pub mod summary;
pub mod synthesis;

pub use strategy::{AuditMode, FedGuardConfig, FedGuardStrategy, InnerAggregator};
pub use synthesis::{synthesize_validation_set, SynthesisBudget};

// Re-export the substrate crates under stable names for downstream users.
pub use fg_agg as agg;
pub use fg_attacks as attacks;
pub use fg_data as data;
pub use fg_defenses as defenses;
pub use fg_fl as fl;
pub use fg_nn as nn;
pub use fg_tensor as tensor;
