//! Controllable synthesis of validation data at the server (paper §III-A,
//! Alg. 1 lines 2-4).
//!
//! Per round the server draws latent samples `z ~ N(0, I)` and conditioning
//! labels `y ~ Cat(L, α)` and maps them through the active clients' CVAE
//! decoders `D_θ`. Because generation is conditioned on `y`, the true label
//! of every synthetic sample is known — the property that lets FedGuard
//! audit client accuracy on specific classes (§VI-A).

use fg_data::Dataset;
use fg_nn::models::{CvaeDecoder, CvaeSpec};
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How many synthetic samples to draw, resolving the paper's two readings of
/// `t` (Table I says "samples per decoder"; §IV-D's worked configuration
/// produces `t = 2m = 100` samples *total*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthesisBudget {
    /// `t` samples in total, distributed round-robin over the decoders —
    /// matches §IV-D's "validation dataset of 100 synthetic MNIST digits".
    Total(usize),
    /// `t` samples from every decoder — the Table I reading; more diversity,
    /// proportionally more server compute (the paper's "tuneable system").
    PerDecoder(usize),
}

impl SynthesisBudget {
    /// The paper's configuration: `t = 2m` total samples.
    pub fn paper(m: usize) -> Self {
        SynthesisBudget::Total(2 * m)
    }

    /// Number of samples each of `n_decoders` will generate (the first
    /// `remainder` decoders generate one extra under `Total`).
    pub fn per_decoder_counts(&self, n_decoders: usize) -> Vec<usize> {
        assert!(n_decoders > 0, "no decoders to synthesize from");
        match *self {
            SynthesisBudget::Total(t) => {
                let base = t / n_decoders;
                let rem = t % n_decoders;
                (0..n_decoders).map(|i| base + usize::from(i < rem)).collect()
            }
            SynthesisBudget::PerDecoder(t) => vec![t; n_decoders],
        }
    }
}

/// One client's decoder as received by the server: the flat `θ` vector and,
/// optionally, the per-class sample counts of the data it was trained on
/// (the §VI-B extension for heterogeneous clients).
#[derive(Clone, Copy, Debug)]
pub struct DecoderSubmission<'a> {
    pub client_id: usize,
    pub theta: &'a [f32],
    pub coverage: Option<&'a [u32]>,
}

impl<'a> DecoderSubmission<'a> {
    /// A submission without coverage metadata (the paper's base protocol).
    pub fn plain(client_id: usize, theta: &'a [f32]) -> Self {
        DecoderSubmission { client_id, theta, coverage: None }
    }
}

/// Synthesize a labeled validation dataset from client decoders.
///
/// `class_probs` is the categorical parameter `α` (`None` = uniform, the
/// paper's `α_i = 1/L`). Labels are sampled from the categorical and latents
/// from the standard normal, both from `rng` — so the set is identical for
/// every audited client within a round but fresh across rounds.
///
/// With `coverage_aware` set, each decoder is conditioned only on classes it
/// was actually trained on (its `coverage` histogram, intersected with
/// `class_probs`) — the server-side mitigation §VI-B proposes for highly
/// heterogeneous clients whose decoders would otherwise be asked to
/// hallucinate classes they never saw. A decoder with no usable class is
/// skipped, and its share of the budget is redistributed round-robin over the
/// decoders that do have usable classes, so the validation set never shrinks
/// below the configured budget (the paper's `2m`) as long as at least one
/// decoder is usable.
pub fn synthesize_validation_set(
    decoders: &[DecoderSubmission<'_>],
    spec: &CvaeSpec,
    budget: &SynthesisBudget,
    class_probs: Option<&[f32]>,
    coverage_aware: bool,
    rng: &mut SeededRng,
) -> Dataset {
    assert!(!decoders.is_empty(), "cannot synthesize without decoders");
    let uniform = vec![1.0f32; spec.n_classes];
    let probs = class_probs.unwrap_or(&uniform);
    assert_eq!(probs.len(), spec.n_classes, "class_probs length mismatch");

    let mut counts = budget.per_decoder_counts(decoders.len());

    // Resolve each decoder's conditioning distribution up front so that the
    // budget of unusable decoders (coverage masking zeroed every class) can
    // be redistributed instead of silently dropped.
    let dec_probs: Vec<Vec<f32>> = decoders
        .iter()
        .map(|submission| {
            let mut p = probs.to_vec();
            if coverage_aware {
                if let Some(cov) = submission.coverage {
                    assert_eq!(cov.len(), spec.n_classes, "coverage length mismatch");
                    for (pi, &c) in p.iter_mut().zip(cov) {
                        if c == 0 {
                            *pi = 0.0;
                        }
                    }
                }
            }
            p
        })
        .collect();
    let usable: Vec<usize> =
        (0..decoders.len()).filter(|&i| dec_probs[i].iter().sum::<f32>() > 0.0).collect();

    if usable.is_empty() {
        // No decoder saw any requested class; there is nothing to condition
        // on, so the round yields an empty validation set.
        return Dataset::new(Vec::new(), Vec::new());
    }

    // Hand each unusable decoder's allocation to the usable ones round-robin
    // (deterministic in decoder order), preserving the total budget.
    let mut next = 0usize;
    for i in 0..decoders.len() {
        if dec_probs[i].iter().sum::<f32>() <= 0.0 {
            let moved = std::mem::take(&mut counts[i]);
            for _ in 0..moved {
                counts[usable[next % usable.len()]] += 1;
                next += 1;
            }
        }
    }
    let expected: usize = counts.iter().sum();

    let mut images: Vec<f32> = Vec::new();
    let mut labels: Vec<u8> = Vec::new();

    for (i, submission) in decoders.iter().enumerate() {
        let count = counts[i];
        if count == 0 {
            continue;
        }
        let mut decoder = CvaeDecoder::from_params(spec, submission.theta);
        let z = Tensor::randn(&[count, spec.latent], rng);
        let y: Vec<usize> = (0..count).map(|_| rng.sample_categorical(&dec_probs[i])).collect();
        let generated = decoder.generate(&z, &y);
        images.extend_from_slice(generated.data());
        labels.extend(y.iter().map(|&l| l as u8));
    }

    assert_eq!(labels.len(), expected, "synthesis lost samples during redistribution");
    Dataset::new(images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_nn::models::Cvae;

    fn toy_decoder(seed: u64) -> Vec<f32> {
        let spec = CvaeSpec::reduced(16, 4);
        Cvae::new(&spec, &mut SeededRng::new(seed)).decoder_params()
    }

    #[test]
    fn budget_total_distributes_round_robin() {
        let b = SynthesisBudget::Total(10);
        assert_eq!(b.per_decoder_counts(3), vec![4, 3, 3]);
        assert_eq!(b.per_decoder_counts(10), vec![1; 10]);
        assert_eq!(b.per_decoder_counts(20).iter().sum::<usize>(), 10);
    }

    #[test]
    fn budget_per_decoder_is_flat() {
        assert_eq!(SynthesisBudget::PerDecoder(5).per_decoder_counts(3), vec![5, 5, 5]);
    }

    #[test]
    fn paper_budget_is_two_m_total() {
        assert_eq!(SynthesisBudget::paper(50), SynthesisBudget::Total(100));
    }

    #[test]
    fn synthesis_produces_requested_count_and_valid_pixels() {
        let spec = CvaeSpec::reduced(16, 4);
        let thetas = [toy_decoder(1), toy_decoder(2), toy_decoder(3)];
        let decoders: Vec<DecoderSubmission<'_>> = thetas
            .iter()
            .enumerate()
            .map(|(i, t)| DecoderSubmission::plain(i, t.as_slice()))
            .collect();
        let mut rng = SeededRng::new(0);
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(20),
            None,
            false,
            &mut rng,
        );
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.dim(), 784);
        assert!(ds.images().iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(ds.labels().iter().all(|&l| l < 10));
    }

    #[test]
    fn uniform_sampling_is_roughly_class_balanced() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(5);
        let decoders = vec![DecoderSubmission::plain(0, theta.as_slice())];
        let mut rng = SeededRng::new(1);
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(1000),
            None,
            false,
            &mut rng,
        );
        let hist = ds.class_histogram(10);
        for &c in &hist {
            assert!((60..=140).contains(&c), "class imbalance: {hist:?}");
        }
    }

    #[test]
    fn class_probs_bias_the_labels() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(6);
        let decoders = vec![DecoderSubmission::plain(0, theta.as_slice())];
        let mut probs = vec![0.0f32; 10];
        probs[3] = 1.0;
        let mut rng = SeededRng::new(2);
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(50),
            Some(&probs),
            false,
            &mut rng,
        );
        assert!(ds.labels().iter().all(|&l| l == 3));
    }

    #[test]
    fn synthesis_is_deterministic_under_rng() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(7);
        let decoders = vec![DecoderSubmission::plain(0, theta.as_slice())];
        let a = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(10),
            None,
            false,
            &mut SeededRng::new(3),
        );
        let b = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(10),
            None,
            false,
            &mut SeededRng::new(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_aware_conditions_only_on_seen_classes() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(8);
        // Decoder trained only on classes 1 and 3.
        let coverage: Vec<u32> = (0..10).map(|c| u32::from(c == 1 || c == 3)).collect();
        let decoders =
            vec![DecoderSubmission { client_id: 0, theta: &theta, coverage: Some(&coverage) }];
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(40),
            None,
            true,
            &mut SeededRng::new(4),
        );
        assert_eq!(ds.len(), 40);
        assert!(ds.labels().iter().all(|&l| l == 1 || l == 3), "{:?}", ds.class_histogram(10));
    }

    #[test]
    fn coverage_ignored_when_not_aware() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(9);
        let coverage: Vec<u32> = (0..10).map(|c| u32::from(c == 1)).collect();
        let decoders =
            vec![DecoderSubmission { client_id: 0, theta: &theta, coverage: Some(&coverage) }];
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(200),
            None,
            false,
            &mut SeededRng::new(5),
        );
        // Without coverage awareness, labels span many classes.
        let nonzero = ds.class_histogram(10).iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 3, "labels unexpectedly restricted");
    }

    #[test]
    fn zero_coverage_decoder_budget_is_redistributed() {
        let spec = CvaeSpec::reduced(16, 4);
        let t1 = toy_decoder(10);
        let t2 = toy_decoder(11);
        let empty = vec![0u32; 10];
        let full: Vec<u32> = vec![1; 10];
        let decoders = vec![
            DecoderSubmission { client_id: 0, theta: &t1, coverage: Some(&empty) },
            DecoderSubmission { client_id: 1, theta: &t2, coverage: Some(&full) },
        ];
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(10),
            None,
            true,
            &mut SeededRng::new(6),
        );
        // The unusable decoder's half of the budget moves to the usable one;
        // the validation set keeps the full `t` samples.
        assert_eq!(ds.len(), 10);
    }

    #[test]
    fn redistribution_preserves_budget_across_many_decoders() {
        let spec = CvaeSpec::reduced(16, 4);
        let thetas: Vec<Vec<f32>> = (20..25).map(toy_decoder).collect();
        let empty = vec![0u32; 10];
        let full: Vec<u32> = vec![1; 10];
        // Decoders 0, 2, 4 are unusable; 1 and 3 absorb their budget.
        let decoders: Vec<DecoderSubmission<'_>> = thetas
            .iter()
            .enumerate()
            .map(|(i, t)| DecoderSubmission {
                client_id: i,
                theta: t,
                coverage: Some(if i % 2 == 0 { &empty } else { &full }),
            })
            .collect();
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(23),
            None,
            true,
            &mut SeededRng::new(7),
        );
        assert_eq!(ds.len(), 23);
    }

    #[test]
    fn all_decoders_unusable_yields_empty_set() {
        let spec = CvaeSpec::reduced(16, 4);
        let theta = toy_decoder(12);
        let empty = vec![0u32; 10];
        let decoders =
            vec![DecoderSubmission { client_id: 0, theta: &theta, coverage: Some(&empty) }];
        let ds = synthesize_validation_set(
            &decoders,
            &spec,
            &SynthesisBudget::Total(10),
            None,
            true,
            &mut SeededRng::new(8),
        );
        assert_eq!(ds.len(), 0);
    }

    #[test]
    #[should_panic]
    fn empty_decoder_set_panics() {
        let spec = CvaeSpec::reduced(16, 4);
        synthesize_validation_set(
            &[],
            &spec,
            &SynthesisBudget::Total(10),
            None,
            false,
            &mut SeededRng::new(0),
        );
    }
}
