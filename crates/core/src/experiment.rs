//! The experiment harness: scenario definitions, presets, and the runner
//! behind every figure and table of the paper's evaluation (§IV-V).

use crate::strategy::{FedGuardConfig, FedGuardStrategy};
use crate::summary::{detection_summary, mean_round_secs, tail_accuracy, DetectionSummary};
use crate::synthesis::SynthesisBudget;
use fg_agg::{FedAvgStrategy, GeoMedStrategy, KrumStrategy, MedianStrategy, TrimmedMeanStrategy};
use fg_attacks::{choose_malicious, poison_datasets, ModelAttack, PoisoningInterceptor};
use fg_data::partition::{dirichlet_partition, partition_datasets};
use fg_data::synth::generate_dataset;
use fg_data::Dataset;
use fg_data::LabelFlip;
use fg_defenses::{SpectralConfig, SpectralDefense};
use fg_fl::client::NoAttack;
use fg_fl::{
    AggregationMemory, AggregationStrategy, Client, CommStats, Compression, CvaeTrainConfig,
    FaultConfig, FaultPlan, Federation, FederationConfig, ForensicsCollector, JsonlSink,
    LocalTrainConfig, MemoryCollector, ResiliencePolicy, RoundForensics, RoundObserver,
    RoundRecord, RoundTelemetry, Transport, UpdateInterceptor,
};
use fg_nn::models::{ClassifierSpec, CvaeSpec};
use fg_tensor::rng::{derive_seed, SeededRng};
use fg_tensor::stats::MeanStd;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which defense/aggregation strategy to run (the rows of Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    FedAvg,
    GeoMed,
    Krum,
    /// Coordinate-wise median (ablation; not in the paper's baseline set).
    Median,
    /// Coordinate-wise trimmed mean (ablation).
    TrimmedMean,
    Spectral,
    FedGuard,
}

impl StrategyKind {
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::FedAvg => "FedAvg",
            StrategyKind::GeoMed => "GeoMed",
            StrategyKind::Krum => "Krum",
            StrategyKind::Median => "Median",
            StrategyKind::TrimmedMean => "TrimmedMean",
            StrategyKind::Spectral => "Spectral",
            StrategyKind::FedGuard => "FedGuard",
        }
    }

    /// Whether clients must train a CVAE alongside the classifier (i.e. the
    /// strategy consumes their decoders). Mirrors
    /// [`AggregationStrategy::uses_decoders`] without having to build the
    /// (possibly pretraining) strategy — `fed_client` worker processes
    /// decide from this flag alone.
    pub fn uses_decoders(&self) -> bool {
        matches!(self, StrategyKind::FedGuard)
    }

    /// The paper's baseline set (Table IV rows, in order).
    pub fn paper_set() -> [StrategyKind; 5] {
        [
            StrategyKind::FedAvg,
            StrategyKind::GeoMed,
            StrategyKind::Krum,
            StrategyKind::Spectral,
            StrategyKind::FedGuard,
        ]
    }
}

/// The attack scenarios of §IV-B (columns of Table IV / panels of Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackScenario {
    /// No attack — the reference row of Table IV.
    None,
    /// Coordinated additive Gaussian noise, `w ← w + ε` with shared `ε`.
    AdditiveNoise { fraction: f64, sigma: f32 },
    /// `w ← −w`.
    SignFlip { fraction: f64 },
    /// `w ← c·1⃗`.
    SameValue { fraction: f64, value: f32 },
    /// Data poisoning: labels 5 ↔ 7 and 4 ↔ 2 flipped on malicious clients.
    LabelFlip { fraction: f64 },
}

impl AttackScenario {
    pub fn name(&self) -> &'static str {
        match self {
            AttackScenario::None => "no-attack",
            AttackScenario::AdditiveNoise { .. } => "additive-noise",
            AttackScenario::SignFlip { .. } => "sign-flipping",
            AttackScenario::SameValue { .. } => "same-value",
            AttackScenario::LabelFlip { .. } => "label-flipping",
        }
    }

    /// Fraction of clients the adversary controls.
    pub fn fraction(&self) -> f64 {
        match *self {
            AttackScenario::None => 0.0,
            AttackScenario::AdditiveNoise { fraction, .. }
            | AttackScenario::SignFlip { fraction }
            | AttackScenario::SameValue { fraction, .. }
            | AttackScenario::LabelFlip { fraction } => fraction,
        }
    }

    /// The paper's four evaluated scenarios with their malicious fractions
    /// (§IV-B): additive noise 50%, label flip 30%, sign flip 50%,
    /// same value 50%. The paper does not state the noise σ; σ = 8 (≈160×
    /// the typical weight magnitude) reproduces the reported total collapse
    /// of the undefended baselines on our easier synthetic task.
    pub fn paper_set() -> [AttackScenario; 4] {
        [
            AttackScenario::AdditiveNoise { fraction: 0.5, sigma: 8.0 },
            AttackScenario::LabelFlip { fraction: 0.3 },
            AttackScenario::SignFlip { fraction: 0.5 },
            AttackScenario::SameValue { fraction: 0.5, value: 1.0 },
        ]
    }
}

/// Scale presets (see DESIGN.md §3): `Paper` is the exact §IV configuration;
/// `Fast` keeps the federated structure (100 clients, Dirichlet α = 10,
/// malicious fractions, defenses) but shrinks models and data to CPU budget;
/// `Smoke` is for tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preset {
    Paper,
    Fast,
    Smoke,
}

/// Everything needed to run one (strategy × attack) cell of the evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Federation shape and local training.
    pub fed: FederationConfig,
    /// Training samples generated per class (total = 10×).
    pub per_class_train: usize,
    /// Server-side test samples per class.
    pub per_class_test: usize,
    /// Spectral's auxiliary dataset, samples per class.
    pub per_class_aux: usize,
    /// Dirichlet concentration (paper: 10).
    pub dirichlet_alpha: f32,
    pub strategy: StrategyKind,
    pub attack: AttackScenario,
    /// Client-side CVAE training (used when the strategy consumes decoders).
    pub cvae: CvaeTrainConfig,
    /// FedGuard's synthesis budget `t`.
    pub budget: SynthesisBudget,
    /// Spectral's detector configuration.
    pub spectral: SpectralConfig,
    /// Fraction of rounds summarized by Table IV statistics (paper: 0.8).
    pub tail_fraction: f64,
    /// FedGuard's internal aggregation operator (§VI-C extension).
    pub fedguard_inner: crate::strategy::InnerAggregator,
    /// Coverage-aware synthesis (§VI-B extension).
    pub fedguard_coverage_aware: bool,
    /// Audit scorer implementation: the batched fast path (default) or the
    /// sequential per-model oracle — bitwise identical either way;
    /// `FG_BATCHED_AUDIT` overrides at run time. `#[serde(default)]` keeps
    /// config blobs from older deployments parseable.
    #[serde(default)]
    pub fedguard_audit: crate::strategy::AuditMode,
    /// When set, the run writes one JSONL telemetry trail (one
    /// `RoundTelemetry` per line) into this directory, named after the
    /// strategy, attack and seed. `None` = no telemetry file.
    pub telemetry_dir: Option<String>,
    /// Fault injection (dropouts, stragglers, corruption...; see
    /// `fg_fl::fault`). `None` = the paper's ideal network. The plan's seed
    /// is derived from the federation seed, so runs stay reproducible.
    pub faults: Option<FaultConfig>,
    /// Round degradation policy when submissions go missing.
    pub resilience: ResiliencePolicy,
    /// Wire-level update compression (bf16 / int8 / top-k; see
    /// [`Compression`]). The default `None` keeps every model payload as
    /// dense f32 — bit-identical to pre-compression deployments — and
    /// `FG_COMPRESS` overrides at run time (applied via
    /// [`Compression::resolved`] by the runners). `#[serde(default)]` keeps
    /// config blobs from older deployments parseable.
    #[serde(default)]
    pub compression: Compression,
}

impl ExperimentConfig {
    /// Build a config from a preset, strategy, attack and seed.
    pub fn preset(
        preset: Preset,
        strategy: StrategyKind,
        attack: AttackScenario,
        seed: u64,
    ) -> Self {
        match preset {
            Preset::Paper => {
                let fed = FederationConfig { seed, ..FederationConfig::paper() };
                ExperimentConfig {
                    fed,
                    per_class_train: 6000,
                    per_class_test: 1000,
                    per_class_aux: 100,
                    dirichlet_alpha: 10.0,
                    strategy,
                    attack,
                    cvae: CvaeTrainConfig::paper(),
                    budget: SynthesisBudget::paper(fed.clients_per_round),
                    spectral: SpectralConfig {
                        surrogate_dim: 512 * 10 + 10,
                        vae_hidden: 256,
                        vae_latent: 16,
                        beta: 0.05,
                        pretrain_rounds: 10,
                        pretrain_clients: 10,
                        vae_epochs: 100,
                        local_epochs: 5,
                        local_batch: 32,
                        local_lr: 0.01,
                    },
                    tail_fraction: 0.8,
                    fedguard_inner: crate::strategy::InnerAggregator::FedAvg,
                    fedguard_coverage_aware: false,
                    fedguard_audit: crate::strategy::AuditMode::Batched,
                    telemetry_dir: None,
                    faults: None,
                    resilience: ResiliencePolicy::default(),
                    compression: Compression::None,
                }
            }
            Preset::Fast => {
                let fed = FederationConfig {
                    n_clients: 100,
                    clients_per_round: 20,
                    rounds: 25,
                    classifier: ClassifierSpec::Mlp { hidden: 64 },
                    // 5 local epochs as in the paper; ~120 samples/client
                    // makes each individual update informative, the regime
                    // FedGuard's audit assumes (local models reach ~85%).
                    local: LocalTrainConfig {
                        epochs: 5,
                        batch_size: 20,
                        lr: 0.1,
                        momentum: 0.9,
                        prox_mu: 0.0,
                    },
                    server_lr: 1.0,
                    eval_batch: 128,
                    seed,
                    agg_memory: AggregationMemory::Batch,
                };
                ExperimentConfig {
                    fed,
                    per_class_train: 1200,
                    per_class_test: 100,
                    per_class_aux: 30,
                    dirichlet_alpha: 10.0,
                    strategy,
                    attack,
                    // ~120 samples per client; 100 epochs of Adam gets the
                    // reduced CVAE to recognizable class-conditional digits
                    // (see EXPERIMENTS.md on synthesis quality).
                    cvae: CvaeTrainConfig::reduced(100, 8, 100),
                    // Larger than the paper's t = 2m: at m = 20 the audit
                    // needs more synthetic samples to reach the same
                    // signal-to-noise as the paper's m = 50 setup (the
                    // "tuneable" knob of §VI-A; see the ablation bench).
                    budget: SynthesisBudget::Total(300),
                    spectral: SpectralConfig {
                        surrogate_dim: 64 * 10 + 10,
                        ..SpectralConfig::fast()
                    },
                    tail_fraction: 0.8,
                    fedguard_inner: crate::strategy::InnerAggregator::FedAvg,
                    fedguard_coverage_aware: false,
                    fedguard_audit: crate::strategy::AuditMode::Batched,
                    telemetry_dir: None,
                    faults: None,
                    resilience: ResiliencePolicy::default(),
                    compression: Compression::None,
                }
            }
            Preset::Smoke => {
                let fed = FederationConfig {
                    n_clients: 10,
                    clients_per_round: 5,
                    rounds: 3,
                    classifier: ClassifierSpec::Mlp { hidden: 24 },
                    // 3 local epochs on ~80 samples: individual updates are
                    // informative enough for audit-based selection to have
                    // signal even at this tiny scale.
                    local: LocalTrainConfig {
                        epochs: 3,
                        batch_size: 16,
                        lr: 0.1,
                        momentum: 0.9,
                        prox_mu: 0.0,
                    },
                    server_lr: 1.0,
                    eval_batch: 64,
                    seed,
                    agg_memory: AggregationMemory::Batch,
                };
                ExperimentConfig {
                    fed,
                    per_class_train: 80,
                    per_class_test: 20,
                    per_class_aux: 10,
                    dirichlet_alpha: 10.0,
                    strategy,
                    attack,
                    cvae: CvaeTrainConfig {
                        spec: CvaeSpec::reduced(64, 8),
                        epochs: 60,
                        batch_size: 32,
                        lr: 2e-3,
                    },
                    budget: SynthesisBudget::Total(60),
                    spectral: SpectralConfig {
                        surrogate_dim: 24 * 10 + 10,
                        vae_hidden: 32,
                        vae_latent: 4,
                        beta: 0.05,
                        pretrain_rounds: 2,
                        pretrain_clients: 4,
                        vae_epochs: 30,
                        local_epochs: 1,
                        local_batch: 16,
                        local_lr: 0.05,
                    },
                    tail_fraction: 0.8,
                    fedguard_inner: crate::strategy::InnerAggregator::FedAvg,
                    fedguard_coverage_aware: false,
                    fedguard_audit: crate::strategy::AuditMode::Batched,
                    telemetry_dir: None,
                    faults: None,
                    resilience: ResiliencePolicy::default(),
                    compression: Compression::None,
                }
            }
        }
    }

    /// Short run label, e.g. `FedGuard/sign-flipping`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.strategy.name(), self.attack.name())
    }

    /// File-name stem identifying this (strategy × attack × seed) cell,
    /// e.g. `fedguard-sign-flipping-s7`. Both the telemetry trail
    /// (`<stem>.jsonl`) and the forensics ledger (`<stem>.forensics.jsonl`)
    /// derive their names from it.
    pub fn cell_stem(&self) -> String {
        format!("{}-{}-s{}", self.strategy.name().to_lowercase(), self.attack.name(), self.fed.seed)
    }
}

/// The outcome of one experiment run — enough to regenerate the paper's
/// figures and tables for this (strategy × attack) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    pub strategy: String,
    pub attack: String,
    pub malicious_clients: Vec<usize>,
    pub history: Vec<RoundRecord>,
    pub tail_fraction: f64,
}

impl ExperimentResult {
    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f32 {
        self.history.last().map_or(0.0, |r| r.accuracy)
    }

    /// Per-round accuracy series (Fig. 4/5 y-values).
    pub fn accuracy_series(&self) -> Vec<f32> {
        self.history.iter().map(|r| r.accuracy).collect()
    }

    /// Table IV statistic: mean ± std accuracy over the tail of the run.
    pub fn tail_accuracy(&self) -> MeanStd {
        tail_accuracy(&self.history, self.tail_fraction)
    }

    /// Detection quality (malicious/benign exclusion rates).
    pub fn detection(&self) -> DetectionSummary {
        detection_summary(&self.history)
    }

    /// Mean wall-clock seconds per round (Table V timing column).
    pub fn mean_round_secs(&self) -> f64 {
        mean_round_secs(&self.history)
    }

    /// Mean per-round communication (Table V bytes columns).
    pub fn mean_round_comm(&self) -> CommStats {
        if self.history.is_empty() {
            return CommStats::default();
        }
        let mut acc = CommStats::default();
        for r in &self.history {
            acc.add(&r.comm);
        }
        CommStats {
            upload_bytes: acc.upload_bytes / self.history.len() as u64,
            download_bytes: acc.download_bytes / self.history.len() as u64,
        }
    }

    /// Serialize to pretty JSON (for EXPERIMENTS.md regeneration).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("result serialization")
    }
}

/// Instantiate the aggregation strategy named by the config. Spectral
/// pre-trains on a freshly generated auxiliary dataset (the public dataset
/// it assumes); FedGuard needs no preparation (§VI-A).
fn build_strategy(cfg: &ExperimentConfig) -> Box<dyn AggregationStrategy> {
    let m = cfg.fed.clients_per_round;
    match cfg.strategy {
        StrategyKind::FedAvg => Box::new(FedAvgStrategy),
        StrategyKind::GeoMed => Box::new(GeoMedStrategy::default()),
        StrategyKind::Krum => {
            // Krum is told the expected number of Byzantine clients among
            // the sampled m, as in the paper's baseline configuration.
            let f = ((m as f64) * cfg.attack.fraction()).round() as usize;
            Box::new(KrumStrategy::new(f.min(m.saturating_sub(1))))
        }
        StrategyKind::Median => Box::new(MedianStrategy),
        StrategyKind::TrimmedMean => {
            let f = ((m as f64) * cfg.attack.fraction()).round() as usize;
            Box::new(TrimmedMeanStrategy::new(f.min((m.saturating_sub(1)) / 2)))
        }
        StrategyKind::Spectral => {
            let aux = generate_dataset(cfg.per_class_aux, derive_seed(cfg.fed.seed, 0x5AEC));
            Box::new(SpectralDefense::pretrain(
                &cfg.fed.classifier,
                &aux,
                cfg.spectral,
                derive_seed(cfg.fed.seed, 0x5AED),
            ))
        }
        StrategyKind::FedGuard => Box::new(FedGuardStrategy::new(FedGuardConfig {
            classifier: cfg.fed.classifier,
            cvae: cfg.cvae.spec,
            budget: cfg.budget,
            class_probs: None,
            eval_batch: cfg.fed.eval_batch,
            inner: cfg.fedguard_inner,
            coverage_aware: cfg.fedguard_coverage_aware,
            audit: cfg.fedguard_audit,
        })),
    }
}

/// Data, roster and attack state shared by every deployment mode: the
/// Dirichlet partitions (poisoned where the scenario says so), the server
/// test set, the ground-truth malicious roster and the installed
/// interceptor. [`prepare_setup`] is a pure function of the config, so the
/// in-process oracle and out-of-process `fed_client` workers reconstruct
/// byte-identical state from the same `ExperimentConfig`.
pub struct FederationSetup {
    pub datasets: Vec<Dataset>,
    pub test: Dataset,
    pub malicious: Vec<usize>,
    pub interceptor: Arc<dyn UpdateInterceptor>,
}

/// Generate data, partition it, pick the malicious roster and install the
/// attack. Every derived seed stream (train 1, test 2, partition 3,
/// roster 4, attack 5) is fixed: changing this ordering breaks the
/// bit-identity contract between deployment modes.
pub fn prepare_setup(cfg: &ExperimentConfig) -> FederationSetup {
    let seed = cfg.fed.seed;

    // Data: train / test / (Spectral aux handled in build_strategy).
    let train = generate_dataset(cfg.per_class_train, derive_seed(seed, 1));
    let test = generate_dataset(cfg.per_class_test, derive_seed(seed, 2));

    // Dirichlet partitioning over N clients (paper: α = 10).
    let mut part_rng = SeededRng::new(derive_seed(seed, 3));
    let parts =
        dirichlet_partition(&train, cfg.fed.n_clients, cfg.dirichlet_alpha, 10, &mut part_rng);
    let mut datasets = partition_datasets(&train, &parts);

    // Malicious roster and attack installation.
    let malicious =
        choose_malicious(cfg.fed.n_clients, cfg.attack.fraction(), derive_seed(seed, 4));
    let interceptor: Arc<dyn UpdateInterceptor> = match cfg.attack {
        AttackScenario::None => Arc::new(NoAttack),
        AttackScenario::LabelFlip { .. } => {
            // Pure data poisoning: flip the malicious partitions up front;
            // their classifier updates and CVAE decoders are then corrupted
            // by construction, with no interception needed.
            poison_datasets(&mut datasets, &malicious, &LabelFlip::paper());
            Arc::new(LabelFlipMarker { malicious: malicious.clone() })
        }
        AttackScenario::AdditiveNoise { sigma, .. } => Arc::new(PoisoningInterceptor::new(
            malicious.clone(),
            ModelAttack::AdditiveNoise { sigma },
            derive_seed(seed, 5),
        )),
        AttackScenario::SignFlip { .. } => Arc::new(PoisoningInterceptor::new(
            malicious.clone(),
            ModelAttack::SignFlip,
            derive_seed(seed, 5),
        )),
        AttackScenario::SameValue { value, .. } => Arc::new(PoisoningInterceptor::new(
            malicious.clone(),
            ModelAttack::SameValue { value },
            derive_seed(seed, 5),
        )),
    };

    FederationSetup { datasets, test, malicious, interceptor }
}

/// Build the local state of client `id` exactly as the in-process oracle
/// does: same partition, same poisoning, same derived training seed, same
/// attack interceptor. `fed_client` worker processes call this, which is
/// what makes a TCP deployment bit-identical to its in-process twin.
pub fn build_client(cfg: &ExperimentConfig, id: usize) -> (Client, Arc<dyn UpdateInterceptor>) {
    assert!(
        id < cfg.fed.n_clients,
        "client id {id} out of range (n_clients = {})",
        cfg.fed.n_clients
    );
    let setup = prepare_setup(cfg);
    let data = setup.datasets.into_iter().nth(id).expect("partition for every client id");
    let cvae = cfg.strategy.uses_decoders().then_some(cfg.cvae);
    (Client::for_federation(&cfg.fed, id, data, cvae), setup.interceptor)
}

/// The full output of a run: the summary result, the final global model,
/// the per-round telemetry trail and the defense forensics ledger —
/// everything the networked equivalence checks compare bit-for-bit.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    pub result: ExperimentResult,
    /// Global parameter vector after the final round.
    pub final_global: Vec<f32>,
    /// One event per round, as captured by an in-memory collector.
    pub telemetry: Vec<RoundTelemetry>,
    /// The forensics ledger: one record per round attributing every
    /// exclusion to a cause and tracking running defense precision/recall.
    pub forensics: Vec<RoundForensics>,
}

/// Shared runner behind every entry point. `transport = None` assembles
/// in-process clients (the deterministic oracle); `Some(transport)` serves
/// rounds over the given transport and the builder must not also own local
/// clients or CVAE configs — those live in the worker processes.
/// `extra_observers` lets a deployment bin attach additional sinks (the
/// `fed_server` admin plane, flight-recorder triggers) without this module
/// knowing about them.
fn run_with(
    cfg: &ExperimentConfig,
    transport: Option<Box<dyn Transport>>,
    extra_observers: Vec<Box<dyn RoundObserver>>,
) -> RunArtifacts {
    cfg.fed.validate();
    let seed = cfg.fed.seed;
    let setup = prepare_setup(cfg);

    let strategy = build_strategy(cfg);
    let cvae = strategy.uses_decoders().then_some(cfg.cvae);
    let collector = MemoryCollector::new();
    // The forensics ledger rides every run; when a telemetry dir is set it
    // also writes `<cell>.forensics.jsonl` next to the telemetry trail.
    let forensics = match &cfg.telemetry_dir {
        Some(dir) => ForensicsCollector::with_jsonl(
            std::path::Path::new(dir).join(format!("{}.forensics.jsonl", cfg.cell_stem())),
        )
        .expect("create forensics sink"),
        None => ForensicsCollector::new(),
    };
    let mut builder = Federation::builder(cfg.fed)
        .test_set(setup.test)
        .strategy(strategy)
        .interceptor(Arc::clone(&setup.interceptor))
        .faults(cfg.faults.map(|fc| FaultPlan::new(fc, derive_seed(seed, 0xFA))))
        .resilience(cfg.resilience)
        .observer(collector.clone())
        .observer(forensics.clone());
    builder = match transport {
        // A custom transport (TcpTransport) negotiates its own compression
        // mode in the Join/Welcome handshake.
        Some(t) => builder.transport(t),
        None => builder.datasets(setup.datasets).cvae(cvae).compression(cfg.compression.resolved()),
    };
    if let Some(dir) = &cfg.telemetry_dir {
        let path = std::path::Path::new(dir).join(format!("{}.jsonl", cfg.cell_stem()));
        builder = builder.observer(JsonlSink::create(&path).expect("create telemetry sink"));
    }
    for obs in extra_observers {
        builder = builder.observer_boxed(obs);
    }
    let mut federation = builder.build();
    let history = federation.run();
    let final_global = federation.global_params().to_vec();

    RunArtifacts {
        result: ExperimentResult {
            strategy: cfg.strategy.name().to_string(),
            attack: cfg.attack.name().to_string(),
            malicious_clients: setup.malicious,
            history,
            tail_fraction: cfg.tail_fraction,
        },
        final_global,
        telemetry: collector.events(),
        forensics: forensics.rounds(),
    }
}

/// Run one experiment cell end to end in-process: generate data, partition,
/// install the attack, build the strategy, run the federation, summarize.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    run_with(cfg, None, Vec::new()).result
}

/// [`run_experiment`], keeping the final global model and telemetry trail —
/// the oracle side of the networked equivalence checks.
pub fn run_experiment_full(cfg: &ExperimentConfig) -> RunArtifacts {
    run_with(cfg, None, Vec::new())
}

/// Run the server half of a networked deployment: same data generation,
/// strategy, fault plan, telemetry and evaluation as
/// [`run_experiment_full`], but rounds are exchanged through the supplied
/// [`Transport`] (e.g. a bound [`fg_fl::TcpTransport`]) instead of
/// in-process clients. The matching worker processes are built with
/// [`build_client`] from the same config.
pub fn run_served_experiment(
    cfg: &ExperimentConfig,
    transport: Box<dyn Transport>,
) -> RunArtifacts {
    run_with(cfg, Some(transport), Vec::new())
}

/// [`run_served_experiment`] with extra observers attached to the round
/// loop — how `fed_server` plugs its admin plane ([`fg_fl::OpsObserver`])
/// and flight-recorder triggers ([`fg_fl::FlightRecTrigger`]) into a run
/// without the harness knowing about deployment concerns.
pub fn run_served_experiment_observed(
    cfg: &ExperimentConfig,
    transport: Box<dyn Transport>,
    observers: Vec<Box<dyn RoundObserver>>,
) -> RunArtifacts {
    run_with(cfg, Some(transport), observers)
}

/// Interceptor for label-flip scenarios: mutates nothing (the poisoning
/// lives in the data), but reports the ground-truth roster so detection
/// metrics stay meaningful.
struct LabelFlipMarker {
    malicious: Vec<usize>,
}

impl UpdateInterceptor for LabelFlipMarker {
    fn intercept(&self, _update: &mut fg_fl::ModelUpdate, _round: usize) {}

    fn malicious_clients(&self) -> Vec<usize> {
        self.malicious.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_preset_runs_end_to_end_per_strategy() {
        for strategy in [
            StrategyKind::FedAvg,
            StrategyKind::GeoMed,
            StrategyKind::Krum,
            StrategyKind::Median,
            StrategyKind::TrimmedMean,
        ] {
            let cfg = ExperimentConfig::preset(Preset::Smoke, strategy, AttackScenario::None, 1);
            let result = run_experiment(&cfg);
            assert_eq!(result.history.len(), 3, "{}", cfg.label());
            assert!(result.final_accuracy() > 0.15, "{} collapsed", cfg.label());
        }
    }

    #[test]
    fn fedguard_smoke_runs_and_selects_subset() {
        let cfg = ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedGuard,
            AttackScenario::SameValue { fraction: 0.4, value: 1.0 },
            2,
        );
        let result = run_experiment(&cfg);
        assert_eq!(result.history.len(), 3);
        // With a same-value attack the audit should exclude someone at least
        // once across the run.
        let excluded: usize = result.history.iter().map(|r| r.malicious_excluded()).sum();
        assert!(excluded > 0, "FedGuard never excluded a malicious client");
    }

    #[test]
    fn results_serialize_to_json() {
        let cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 3);
        let result = run_experiment(&cfg);
        let json = result.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strategy, "FedAvg");
        assert_eq!(back.history.len(), result.history.len());
    }

    #[test]
    fn label_flip_scenario_flips_malicious_data_only() {
        let cfg = ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedAvg,
            AttackScenario::LabelFlip { fraction: 0.3 },
            4,
        );
        let result = run_experiment(&cfg);
        assert_eq!(result.malicious_clients.len(), 3);
        assert!(result.final_accuracy() > 0.1);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 5);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.accuracy_series(), b.accuracy_series());
    }

    #[test]
    fn telemetry_dir_leaves_a_replayable_trail() {
        let dir = std::env::temp_dir().join("fg_experiment_telemetry_test");
        let mut cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 6);
        cfg.telemetry_dir = Some(dir.to_string_lossy().into_owned());
        let result = run_experiment(&cfg);
        let path = dir.join("fedavg-no-attack-s6.jsonl");
        let events = fg_fl::read_jsonl(&path).expect("telemetry trail written");
        assert_eq!(events.len(), result.history.len());
        for (e, r) in events.iter().zip(&result.history) {
            assert_eq!(e.round, r.round);
            assert_eq!(e.accuracy, r.accuracy);
            assert_eq!(e.comm, r.comm);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulty_smoke_run_completes_and_stays_deterministic() {
        let mut cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 7);
        cfg.faults =
            Some(FaultConfig { dropout_prob: 0.3, corrupt_prob: 0.1, ..FaultConfig::default() });
        let result = run_experiment(&cfg);
        assert_eq!(result.history.len(), 3);
        assert!(result.history.iter().all(|r| r.accuracy.is_finite()));
        // Fault schedules derive from the federation seed: replays agree.
        let again = run_experiment(&cfg);
        assert_eq!(result.accuracy_series(), again.accuracy_series());
    }

    #[test]
    fn strategy_kind_decoder_flag_matches_built_strategies() {
        // `build_client` trusts StrategyKind::uses_decoders (it cannot
        // afford to build a pretraining strategy); the two must agree.
        for strategy in [
            StrategyKind::FedAvg,
            StrategyKind::GeoMed,
            StrategyKind::Krum,
            StrategyKind::Median,
            StrategyKind::TrimmedMean,
            StrategyKind::Spectral,
            StrategyKind::FedGuard,
        ] {
            let cfg = ExperimentConfig::preset(Preset::Smoke, strategy, AttackScenario::None, 11);
            assert_eq!(
                strategy.uses_decoders(),
                build_strategy(&cfg).uses_decoders(),
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn full_run_artifacts_expose_global_and_telemetry() {
        let cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 8);
        let artifacts = run_experiment_full(&cfg);
        assert_eq!(artifacts.telemetry.len(), artifacts.result.history.len());
        assert!(!artifacts.final_global.is_empty());
        for (event, record) in artifacts.telemetry.iter().zip(&artifacts.result.history) {
            assert_eq!(event.round, record.round);
            assert_eq!(event.accuracy, record.accuracy);
            assert_eq!(event.transport, fg_fl::TransportKind::Local);
        }
        // The refactored runner must reproduce the pre-refactor pipeline
        // bit-for-bit: the plain entry point is the same code path.
        let plain = run_experiment(&cfg);
        assert_eq!(plain.accuracy_series(), artifacts.result.accuracy_series());
    }

    #[test]
    fn build_client_reconstructs_the_oracle_partition() {
        let cfg = ExperimentConfig::preset(
            Preset::Smoke,
            StrategyKind::FedAvg,
            AttackScenario::LabelFlip { fraction: 0.3 },
            4,
        );
        let setup = prepare_setup(&cfg);
        let (client, interceptor) = build_client(&cfg, 3);
        assert_eq!(client.id(), 3);
        assert_eq!(interceptor.malicious_clients(), setup.malicious);
        // Same config → same roster on every reconstruction (workers and
        // server must agree on who is malicious).
        let (_, again) = build_client(&cfg, 0);
        assert_eq!(again.malicious_clients(), interceptor.malicious_clients());
    }

    #[test]
    fn pre_compression_config_blobs_still_parse() {
        let cfg =
            ExperimentConfig::preset(Preset::Smoke, StrategyKind::FedAvg, AttackScenario::None, 9);
        // A pre-knob config blob (no compression key) must keep parsing and
        // resolve to the uncompressed wire format.
        let serde::Value::Obj(fields) = serde_json::to_value(&cfg) else {
            panic!("config serializes to an object");
        };
        let pruned: Vec<_> = fields.into_iter().filter(|(k, _)| k != "compression").collect();
        let parsed: ExperimentConfig = serde_json::from_value(&serde::Value::Obj(pruned)).unwrap();
        assert_eq!(parsed.compression, Compression::None);
        // The lossy modes' payloads round-trip through a config blob.
        for mode in
            [Compression::Bf16, Compression::Int8 { block: 4096 }, Compression::TopK { frac: 0.1 }]
        {
            let mut cfg = cfg.clone();
            cfg.compression = mode;
            let json = serde_json::to_string(&cfg).unwrap();
            let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back.compression, mode);
        }
    }

    #[test]
    fn paper_sets_enumerate_correctly() {
        assert_eq!(StrategyKind::paper_set().len(), 5);
        assert_eq!(AttackScenario::paper_set().len(), 4);
        let fractions: Vec<f64> =
            AttackScenario::paper_set().iter().map(|a| a.fraction()).collect();
        assert_eq!(fractions, vec![0.5, 0.3, 0.5, 0.5]);
    }
}
