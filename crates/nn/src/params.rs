//! Flattening model parameters to and from plain `Vec<f32>` vectors — the
//! wire format of the federated-learning layer. Clients ship flat vectors
//! (`ψ` for the classifier, `θ` for the CVAE decoder) and the aggregation
//! operators work on them directly.

use crate::layer::Module;

/// Concatenate all parameters of a module into one flat vector, in visit
/// order.
pub fn flatten(module: &dyn Module) -> Vec<f32> {
    let mut out = Vec::with_capacity(module.num_params());
    module.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    out
}

/// Load a flat vector produced by [`flatten`] back into the module.
///
/// Panics if the vector length does not match the module's parameter count.
pub fn load(module: &mut dyn Module, flat: &[f32]) {
    let expected = module.num_params();
    assert_eq!(
        flat.len(),
        expected,
        "parameter vector length {} != model size {}",
        flat.len(),
        expected
    );
    let mut off = 0usize;
    module.visit_params_mut(&mut |p| {
        let n = p.numel();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
}

/// Concatenate all *gradients* of a module (useful for tests and for
/// gradient-based defenses).
pub fn flatten_grads(module: &dyn Module) -> Vec<f32> {
    let mut out = Vec::with_capacity(module.num_params());
    module.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    out
}

/// Size in bytes of a flat parameter vector on the simulated wire
/// (f32 = 4 bytes, matching the paper's MB figures: 1,662,752 × 4 ≈ 6.65 MB).
pub fn wire_bytes(num_params: usize) -> u64 {
    num_params as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::sequential::Sequential;
    use fg_tensor::rng::SeededRng;

    #[test]
    fn flatten_load_round_trip() {
        let mut rng = SeededRng::new(0);
        let net =
            Sequential::new().push(Linear::new(3, 4, &mut rng)).push(Linear::new(4, 2, &mut rng));
        let flat = flatten(&net);
        assert_eq!(flat.len(), net.num_params());

        let mut net2 =
            Sequential::new().push(Linear::new(3, 4, &mut rng)).push(Linear::new(4, 2, &mut rng));
        load(&mut net2, &flat);
        assert_eq!(flatten(&net2), flat);
    }

    #[test]
    #[should_panic]
    fn load_rejects_wrong_length() {
        let mut rng = SeededRng::new(1);
        let mut net = Sequential::new().push(Linear::new(2, 2, &mut rng));
        load(&mut net, &[0.0; 3]);
    }

    #[test]
    fn wire_bytes_matches_paper_classifier_size() {
        // Paper: 1,662,752 parameters == 6.65 MB.
        let bytes = wire_bytes(1_662_752);
        assert_eq!(bytes, 6_651_008);
        assert!((bytes as f64 / 1e6 - 6.65).abs() < 0.01);
    }
}
