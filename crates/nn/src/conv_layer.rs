//! Convolution layer wrapping the im2col kernels of `fg-tensor`.

use crate::layer::{cache_tensor, Layer, Module, Parameter};
use fg_tensor::conv::{conv2d_backward_acc, conv2d_forward, Conv2dSpec};
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;

/// 2-D convolution, stride 1, configurable zero padding, as used by the
/// Table II classifier.
pub struct Conv2d {
    pub weight: Parameter,
    pub bias: Parameter,
    spec: Conv2dSpec,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-uniform initialized convolution.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, pad: usize, rng: &mut SeededRng) -> Self {
        let spec = Conv2dSpec { in_ch, out_ch, kh: k, kw: k, pad };
        let fan_in = in_ch * k * k;
        let weight = Tensor::kaiming_uniform(&[out_ch, spec.patch_len()], fan_in, rng);
        let bound = 1.0 / (fan_in as f32).sqrt();
        let bias = Tensor::rand_uniform(&[out_ch], -bound, bound, rng);
        Conv2d {
            weight: Parameter::new(weight),
            bias: Parameter::new(bias),
            spec,
            cached_input: None,
        }
    }

    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Module for Conv2d {
    fn visit_params(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = conv2d_forward(input, &self.weight.value, &self.bias.value, &self.spec);
        if train {
            cache_tensor(&mut self.cached_input, input);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv2d::backward before forward");
        // Weight/bias gradients accumulate straight into the parameter
        // gradients — no temporary gradient tensors.
        conv2d_backward_acc(
            input,
            &self.weight.value,
            grad_output,
            &self.spec,
            &mut self.weight.grad,
            &mut self.bias.grad,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_conv_param_counts() {
        let mut rng = SeededRng::new(0);
        // Paper counts weights only: conv1 = 32*1*5*5 = 800, conv2 = 64*32*5*5 = 51,200.
        let c1 = Conv2d::new(1, 32, 5, 2, &mut rng);
        assert_eq!(c1.weight.numel(), 800);
        let c2 = Conv2d::new(32, 64, 5, 2, &mut rng);
        assert_eq!(c2.weight.numel(), 51_200);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(1, 4, 3, 1, &mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
        let dx = conv.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert!(conv.weight.grad.l2_norm() > 0.0);
    }
}
