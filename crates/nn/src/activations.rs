//! Parameter-free activation layers.

use crate::layer::{Layer, Module, Parameter};
use fg_tensor::Tensor;

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Module for ReLU {
    fn visit_params(&self, _f: &mut dyn FnMut(&Parameter)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("ReLU::backward before forward");
        assert_eq!(mask.len(), grad_output.numel());
        let data =
            grad_output.data().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(data, grad_output.dims())
    }
}

/// Logistic sigmoid.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    pub fn new() -> Self {
        Sigmoid { cached_output: None }
    }

    /// The scalar sigmoid function, exposed for fused losses and generation.
    #[inline]
    pub fn apply(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }
}

impl Module for Sigmoid {
    fn visit_params(&self, _f: &mut dyn FnMut(&Parameter)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(Sigmoid::apply);
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("Sigmoid::backward before forward");
        let data =
            grad_output.data().iter().zip(out.data()).map(|(&g, &s)| g * s * (1.0 - s)).collect();
        Tensor::from_vec(data, grad_output.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::rng::SeededRng;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2]);
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::from_vec(vec![5.0, 5.0], &[2]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]);
        let y = s.forward(&x, false);
        assert!(y.data()[0] < 1e-4);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(0);
        let x = Tensor::randn(&[5], &mut rng);
        let mut s = Sigmoid::new();
        s.forward(&x, true);
        let ana = s.backward(&Tensor::ones(&[5]));
        let eps = 1e-3f32;
        for i in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (Sigmoid::new().forward(&xp, false).sum()
                - Sigmoid::new().forward(&xm, false).sum())
                / (2.0 * eps);
            assert!((num - ana.data()[i]).abs() < 1e-3);
        }
    }
}
