//! Max-pool and flatten layers.

use crate::layer::{Layer, Module, Parameter};
use fg_tensor::pool::{maxpool2d_backward, maxpool2d_forward, MaxPool2dSpec};
use fg_tensor::Tensor;

/// 2-D max pooling with square window `k` and stride `k` (Table II uses 2×2).
pub struct MaxPool2d {
    spec: MaxPool2dSpec,
    cached_argmax: Option<Vec<u32>>,
    cached_input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    pub fn new(k: usize) -> Self {
        MaxPool2d { spec: MaxPool2dSpec { k }, cached_argmax: None, cached_input_dims: None }
    }
}

impl Module for MaxPool2d {
    fn visit_params(&self, _f: &mut dyn FnMut(&Parameter)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = maxpool2d_forward(input, &self.spec);
        if train {
            self.cached_argmax = Some(out.argmax);
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        out.output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self.cached_argmax.as_ref().expect("MaxPool2d::backward before forward");
        let dims = self.cached_input_dims.as_ref().expect("MaxPool2d::backward before forward");
        maxpool2d_backward(grad_output, argmax, dims)
    }
}

/// Collapse `(batch, ...)` into `(batch, features)`.
#[derive(Default)]
pub struct Flatten {
    cached_input_dims: Option<Vec<usize>>,
}

impl Flatten {
    pub fn new() -> Self {
        Flatten { cached_input_dims: None }
    }
}

impl Module for Flatten {
    fn visit_params(&self, _f: &mut dyn FnMut(&Parameter)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Parameter)) {}
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.dim(0);
        let features = input.numel() / batch;
        if train {
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        input.view(&[batch, features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self.cached_input_dims.as_ref().expect("Flatten::backward before forward");
        grad_output.view(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::rng::SeededRng;

    #[test]
    fn pool_halves_spatial_dims() {
        let mut rng = SeededRng::new(0);
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::randn(&[1, 3, 8, 8], &mut rng);
        let y = pool.forward(&x, true);
        assert_eq!(y.dims(), &[1, 3, 4, 4]);
        let dx = pool.backward(&Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), x.dims());
        assert_eq!(dx.sum(), 48.0); // one unit of gradient per output element
    }

    #[test]
    fn flatten_round_trips() {
        let mut rng = SeededRng::new(1);
        let mut fl = Flatten::new();
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let y = fl.forward(&x, true);
        assert_eq!(y.dims(), &[2, 48]);
        let back = fl.backward(&y);
        assert_eq!(back, x);
    }
}
