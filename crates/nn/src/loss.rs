//! Loss functions, each returning `(scalar_loss, gradient_wrt_input)` so the
//! caller can start backprop immediately.

use fg_tensor::Tensor;

/// Fused softmax + cross-entropy over logits `(batch, classes)` with integer
/// class targets. Returns the mean loss and `d loss / d logits`
/// (already scaled by `1/batch`).
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be (batch, classes)");
    let (b, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(targets.len(), b, "target count mismatch");

    let mut grad = Tensor::zeros(&[b, c]);
    let mut total = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        assert!(t < c, "target class {t} out of range");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &x in row {
            denom += (x - max).exp();
        }
        let log_denom = denom.ln() + max;
        total += (log_denom - row[t]) as f64;
        let g = grad.row_mut(r);
        let inv_b = 1.0 / b as f32;
        for (j, (&x, gj)) in row.iter().zip(g.iter_mut()).enumerate() {
            let p = (x - log_denom).exp();
            *gj = (p - if j == t { 1.0 } else { 0.0 }) * inv_b;
        }
    }
    ((total / b as f64) as f32, grad)
}

/// Softmax probabilities per row (used for reporting, not training).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2);
    let (b, c) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros(&[b, c]);
    for r in 0..b {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &x in row {
            denom += (x - max).exp();
        }
        let o = out.row_mut(r);
        for (j, &x) in row.iter().enumerate() {
            o[j] = (x - max).exp() / denom;
        }
    }
    out
}

/// Numerically stable binary cross-entropy on logits:
/// `L = max(x,0) − x·t + ln(1 + e^{−|x|})`, summed over features and averaged
/// over the batch (the CVAE reconstruction term). The gradient is
/// `(σ(x) − t) / batch`.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.dims(), targets.dims(), "bce: shape mismatch");
    let b = logits.dim(0) as f32;
    let mut grad = Tensor::zeros(logits.dims());
    let mut total = 0.0f64;
    for ((&x, &t), g) in logits.data().iter().zip(targets.data()).zip(grad.data_mut()) {
        let loss = x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        total += loss as f64;
        let s = 1.0 / (1.0 + (-x).exp());
        *g = (s - t) / b;
    }
    ((total / b as f64) as f32, grad)
}

/// KL divergence `KL(N(mu, diag(exp(logvar))) ‖ N(0, I))`, summed over the
/// latent dimension and averaged over the batch — the CVAE regularization
/// term of Eqn. 6. Returns `(loss, d/d mu, d/d logvar)`.
pub fn kl_gaussian(mu: &Tensor, logvar: &Tensor) -> (f32, Tensor, Tensor) {
    assert_eq!(mu.dims(), logvar.dims(), "kl: shape mismatch");
    let b = mu.dim(0) as f32;
    let mut d_mu = Tensor::zeros(mu.dims());
    let mut d_logvar = Tensor::zeros(logvar.dims());
    let mut total = 0.0f64;
    for (((&m, &lv), dm), dl) in
        mu.data().iter().zip(logvar.data()).zip(d_mu.data_mut()).zip(d_logvar.data_mut())
    {
        let var = lv.exp();
        total += (-0.5 * (1.0 + lv - m * m - var)) as f64;
        *dm = m / b;
        *dl = -0.5 * (1.0 - var) / b;
    }
    ((total / b as f64) as f32, d_mu, d_logvar)
}

/// Classification accuracy of logits against integer targets.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::rng::SeededRng;

    #[test]
    fn ce_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn ce_of_uniform_logits_is_ln_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(0);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let targets = vec![1usize, 4, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).0
                - softmax_cross_entropy(&lm, &targets).0)
                / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "g[{i}]");
        }
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero() {
        let mut rng = SeededRng::new(1);
        let logits = Tensor::randn(&[4, 6], &mut rng);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut rng = SeededRng::new(2);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let p = softmax(&logits);
        for r in 0..3 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(3);
        let logits = Tensor::randn(&[2, 4], &mut rng);
        let targets = Tensor::rand_uniform(&[2, 4], 0.0, 1.0, &mut rng);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "g[{i}]");
        }
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let logits = Tensor::from_vec(vec![100.0, -100.0], &[1, 2]);
        let targets = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite() && loss < 1e-4);
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn kl_of_standard_normal_is_zero() {
        let mu = Tensor::zeros(&[2, 3]);
        let logvar = Tensor::zeros(&[2, 3]);
        let (loss, dm, dl) = kl_gaussian(&mu, &logvar);
        assert!(loss.abs() < 1e-7);
        assert_eq!(dm.sum(), 0.0);
        assert_eq!(dl.sum(), 0.0);
    }

    #[test]
    fn kl_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(4);
        let mu = Tensor::randn(&[2, 3], &mut rng);
        let logvar = Tensor::randn(&[2, 3], &mut rng);
        let (_, dm, dl) = kl_gaussian(&mu, &logvar);
        let eps = 1e-3f32;
        for i in 0..mu.numel() {
            let mut mp = mu.clone();
            mp.data_mut()[i] += eps;
            let mut mm = mu.clone();
            mm.data_mut()[i] -= eps;
            let num = (kl_gaussian(&mp, &logvar).0 - kl_gaussian(&mm, &logvar).0) / (2.0 * eps);
            assert!((num - dm.data()[i]).abs() < 1e-3);

            let mut lp = logvar.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logvar.clone();
            lm.data_mut()[i] -= eps;
            let num = (kl_gaussian(&mu, &lp).0 - kl_gaussian(&mu, &lm).0) / (2.0 * eps);
            assert!((num - dl.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }
}
