//! First-order optimizers.
//!
//! Optimizer state is addressed by parameter visit order, which the
//! [`crate::layer::Module`] contract guarantees to be deterministic. The
//! paper trains the classifier with SGD and the CVAE with Adam (the standard
//! choices for these models); both are provided.

use crate::layer::Module;

/// A stateful first-order update rule.
pub trait Optimizer {
    /// Apply one update step using the gradients currently stored in the
    /// module's parameters, then leave gradients untouched (callers usually
    /// `zero_grad` before the next backward pass).
    fn step(&mut self, module: &mut dyn Module);
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, weight_decay: 0.0, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, module: &mut dyn Module) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        module.visit_params_mut(&mut |p| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.numel()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.numel(), "optimizer state / parameter mismatch");
            let value = p.value.data_mut();
            let grad = p.grad.data();
            if momentum > 0.0 {
                for ((w, &g), vel) in value.iter_mut().zip(grad).zip(v.iter_mut()) {
                    let g = g + wd * *w;
                    *vel = momentum * *vel + g;
                    *w -= lr * *vel;
                }
            } else {
                for (w, &g) in value.iter_mut().zip(grad) {
                    *w -= lr * (g + wd * *w);
                }
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0usize;
        let (m_state, v_state) = (&mut self.m, &mut self.v);
        module.visit_params_mut(&mut |p| {
            if m_state.len() <= idx {
                m_state.push(vec![0.0; p.numel()]);
                v_state.push(vec![0.0; p.numel()]);
            }
            let m = &mut m_state[idx];
            let v = &mut v_state[idx];
            assert_eq!(m.len(), p.numel(), "optimizer state / parameter mismatch");
            let value = p.value.data_mut();
            let grad = p.grad.data();
            for (((w, &g), mi), vi) in
                value.iter_mut().zip(grad).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::linear::Linear;
    use crate::loss::softmax_cross_entropy;
    use crate::sequential::Sequential;
    use fg_tensor::rng::SeededRng;
    use fg_tensor::Tensor;

    fn train_toy(optim: &mut dyn Optimizer, steps: usize) -> f32 {
        // Learn to classify two well-separated gaussian blobs.
        let mut rng = SeededRng::new(0);
        let mut net = Sequential::new().push(Linear::new(2, 2, &mut rng));
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            let center = if c == 0 { -2.0 } else { 2.0 };
            xs.push(center + 0.3 * rng.next_normal());
            xs.push(center + 0.3 * rng.next_normal());
            ys.push(c);
        }
        let x = Tensor::from_vec(xs, &[40, 2]);
        let mut last = f32::MAX;
        for _ in 0..steps {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &ys);
            net.backward(&grad);
            optim.step(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut sgd = Sgd::new(0.1);
        assert!(train_toy(&mut sgd, 50) < 0.1);
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        assert!(train_toy(&mut sgd, 50) < 0.1);
    }

    #[test]
    fn adam_reduces_loss() {
        let mut adam = Adam::new(0.05);
        assert!(train_toy(&mut adam, 50) < 0.1);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut rng = SeededRng::new(1);
        let mut net = Sequential::new().push(Linear::new(1, 1, &mut rng));
        let before: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        net.visit_params_mut(&mut |p| p.grad.fill(1.0));
        Sgd::new(0.5).step(&mut net);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.extend_from_slice(p.value.data()));
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a - 0.5).abs() < 1e-6, "{b} -> {a}");
        }
    }
}
