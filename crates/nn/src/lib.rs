//! # fg-nn
//!
//! The neural-network layer library of the FedGuard reproduction: layers with
//! explicit forward/backward passes, classification and variational losses,
//! SGD/Adam optimizers, and the exact models from the paper —
//!
//! * the Table II MNIST classifier (two padded 5×5 convolutions with 2×2 max
//!   pooling, a 512-unit fully connected layer and a 10-way output;
//!   1,662,752 weight parameters as counted by the paper),
//! * the Table III Conditional Variational AutoEncoder (794-400 encoder with
//!   twin 20-unit heads, 30-400-794 decoder; 664,834 parameters),
//! * an MLP classifier and a reduced CVAE used by the CPU-budget presets.
//!
//! Model parameters can be flattened to / restored from plain `Vec<f32>`
//! vectors ([`params`]), which is the currency of the federated-learning
//! layer: clients ship flat vectors, aggregation operators combine them.
//!
//! ```
//! use fg_nn::models::{Classifier, ClassifierSpec};
//! use fg_tensor::rng::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let clf = Classifier::new(&ClassifierSpec::Mlp { hidden: 32 }, &mut rng);
//! assert_eq!(clf.spec().input_dim(), 784);
//! ```

pub mod activations;
pub mod conv_layer;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod models;
pub mod optim;
pub mod params;
pub mod pool_layer;
pub mod sequential;

pub use layer::{Layer, Module, Parameter};
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::Sequential;
