//! The federated MNIST classifier `f_ψ`.

use crate::activations::ReLU;
use crate::conv_layer::Conv2d;
use crate::layer::{Layer, Module, Parameter};
use crate::linear::Linear;
use crate::loss;
use crate::optim::Optimizer;
use crate::params;
use crate::pool_layer::{Flatten, MaxPool2d};
use crate::sequential::Sequential;
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which classifier architecture to instantiate.
///
/// `TableIICnn` is the paper's exact architecture: two ReLU-activated 5×5
/// convolutions (32 and 64 channels, padding 2) each followed by 2×2 max
/// pooling, a 512-unit ReLU fully connected layer, and a 10-way output
/// (softmax applied inside the loss). Weight-only parameter count is
/// 1,662,752, matching Table II.
///
/// `Mlp` is a single-hidden-layer perceptron over the flattened 784-pixel
/// image, used by the CPU-budget presets where the full CNN would be too
/// slow; it changes the capacity, not any federated or defensive mechanics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierSpec {
    TableIICnn,
    Mlp { hidden: usize },
}

impl ClassifierSpec {
    /// Flattened input dimensionality (28 × 28 images).
    pub fn input_dim(&self) -> usize {
        784
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        10
    }

    /// Total trainable scalar count (including biases).
    pub fn num_params(&self) -> usize {
        match self {
            ClassifierSpec::TableIICnn => {
                (800 + 32) + (51_200 + 64) + (3136 * 512 + 512) + (512 * 10 + 10)
            }
            ClassifierSpec::Mlp { hidden } => (784 * hidden + hidden) + (hidden * 10 + 10),
        }
    }
}

/// A classifier instance: architecture plus parameter state.
pub struct Classifier {
    spec: ClassifierSpec,
    net: Sequential,
    /// Mini-batch staging tensor recycled across [`Classifier::evaluate`]
    /// calls (taken around the forward pass, put back after), so scoring
    /// does not allocate a fresh input copy per mini-batch.
    eval_stage: Option<Tensor>,
}

impl Classifier {
    /// Freshly initialized classifier.
    pub fn new(spec: &ClassifierSpec, rng: &mut SeededRng) -> Self {
        let net = match spec {
            ClassifierSpec::TableIICnn => Sequential::new()
                .push(Conv2d::new(1, 32, 5, 2, rng))
                .push(ReLU::new())
                .push(MaxPool2d::new(2))
                .push(Conv2d::new(32, 64, 5, 2, rng))
                .push(ReLU::new())
                .push(MaxPool2d::new(2))
                .push(Flatten::new())
                .push(Linear::new(3136, 512, rng))
                .push(ReLU::new())
                .push(Linear::new(512, 10, rng)),
            ClassifierSpec::Mlp { hidden } => Sequential::new()
                .push(Linear::new(784, *hidden, rng))
                .push(ReLU::new())
                .push(Linear::new(*hidden, 10, rng)),
        };
        Classifier { spec: *spec, net, eval_stage: None }
    }

    /// Classifier constructed from a flat parameter vector `ψ`.
    pub fn from_params(spec: &ClassifierSpec, flat: &[f32]) -> Self {
        // Seed is irrelevant: every weight is overwritten by `flat`.
        let mut clf = Classifier::new(spec, &mut SeededRng::new(0));
        params::load(&mut clf.net, flat);
        clf
    }

    pub fn spec(&self) -> &ClassifierSpec {
        &self.spec
    }

    /// Flat parameter vector `ψ`.
    pub fn get_params(&self) -> Vec<f32> {
        params::flatten(&self.net)
    }

    /// Overwrite parameters from a flat vector.
    pub fn set_params(&mut self, flat: &[f32]) {
        params::load(&mut self.net, flat);
    }

    fn shape_input(&self, x: &Tensor) -> Tensor {
        match self.spec {
            ClassifierSpec::TableIICnn => {
                let b = x.dim(0);
                x.view(&[b, 1, 28, 28])
            }
            ClassifierSpec::Mlp { .. } => x.clone(),
        }
    }

    /// Raw class logits for a batch of flattened images `(batch, 784)`.
    pub fn logits(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dim(1), 784, "classifier expects flattened 28x28 images");
        let shaped = self.shape_input(x);
        self.net.forward(&shaped, train)
    }

    /// One optimizer step on a mini-batch; returns the batch loss.
    pub fn train_batch(&mut self, x: &Tensor, y: &[usize], optim: &mut dyn Optimizer) -> f32 {
        self.net.zero_grad();
        let logits = self.logits(x, true);
        let (loss, dlogits) = loss::softmax_cross_entropy(&logits, y);
        self.net.backward(&dlogits);
        optim.step(&mut self.net);
        loss
    }

    /// One FedProx step (Sahu et al., cited by the paper's §VI-C): the
    /// cross-entropy gradient plus the proximal pull `μ (w − w_global)`
    /// toward the round's global parameters. `μ = 0` reduces to
    /// [`Classifier::train_batch`]. Returns the cross-entropy part of the
    /// loss.
    pub fn train_batch_prox(
        &mut self,
        x: &Tensor,
        y: &[usize],
        optim: &mut dyn Optimizer,
        global: &[f32],
        mu: f32,
    ) -> f32 {
        assert_eq!(global.len(), self.spec.num_params(), "global parameter size mismatch");
        self.net.zero_grad();
        let logits = self.logits(x, true);
        let (loss, dlogits) = loss::softmax_cross_entropy(&logits, y);
        self.net.backward(&dlogits);
        if mu != 0.0 {
            let mut off = 0usize;
            self.net.visit_params_mut(&mut |p| {
                let n = p.numel();
                let w = p.value.data();
                let g = p.grad.data_mut();
                for i in 0..n {
                    g[i] += mu * (w[i] - global[off + i]);
                }
                off += n;
            });
        }
        optim.step(&mut self.net);
        loss
    }

    /// Accuracy over a dataset, evaluated in mini-batches of `batch`.
    ///
    /// The scoring hot path of FedGuard's audit: the mini-batch slice is
    /// staged into one recycled tensor instead of a fresh `slice_rows` copy
    /// per batch, and the row argmax + label comparison is inlined (same
    /// scan and tie-breaking as [`Tensor::argmax_rows`]) instead of
    /// materializing a predictions vector — so a warm evaluation performs
    /// zero workspace allocations (`crates/nn/tests/alloc_free.rs`).
    pub fn evaluate(&mut self, x: &Tensor, y: &[usize], batch: usize) -> f32 {
        let n = x.dim(0);
        assert_eq!(y.len(), n);
        if n == 0 {
            return 0.0;
        }
        let cols = x.dim(1);
        let data = x.data();
        let mut correct = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + batch).min(n);
            let bsz = hi - lo;
            let mut stage = match self.eval_stage.take() {
                Some(t) if t.dims() == [bsz, cols] => t,
                _ => Tensor::zeros(&[bsz, cols]),
            };
            stage.data_mut().copy_from_slice(&data[lo * cols..hi * cols]);
            let logits = self.logits(&stage, false);
            self.eval_stage = Some(stage);
            let classes = logits.dim(1);
            let lg = logits.data();
            for (row, &t) in lg.chunks_exact(classes).zip(&y[lo..hi]) {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (c, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                if best == t {
                    correct += 1;
                }
            }
            lo = hi;
        }
        correct as f32 / n as f32
    }

    /// Predicted class per row.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.logits(x, false).argmax_rows()
    }
}

impl Module for Classifier {
    fn visit_params(&self, f: &mut dyn FnMut(&Parameter)) {
        self.net.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.net.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn table_ii_weight_count_matches_paper() {
        // The paper counts weights only (no biases): 1,662,752.
        let mut rng = SeededRng::new(0);
        let clf = Classifier::new(&ClassifierSpec::TableIICnn, &mut rng);
        let mut weights_only = 0usize;
        let mut total = 0usize;
        clf.visit_params(&mut |p| {
            total += p.numel();
            if p.value.shape().rank() > 1 {
                weights_only += p.numel();
            }
        });
        assert_eq!(weights_only, 1_662_752);
        assert_eq!(total, ClassifierSpec::TableIICnn.num_params());
    }

    #[test]
    fn mlp_param_count() {
        let mut rng = SeededRng::new(0);
        let spec = ClassifierSpec::Mlp { hidden: 32 };
        let clf = Classifier::new(&spec, &mut rng);
        assert_eq!(clf.get_params().len(), spec.num_params());
    }

    #[test]
    fn params_round_trip() {
        let mut rng = SeededRng::new(1);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let clf = Classifier::new(&spec, &mut rng);
        let p = clf.get_params();
        let clf2 = Classifier::from_params(&spec, &p);
        assert_eq!(clf2.get_params(), p);
    }

    #[test]
    fn cnn_forward_shape() {
        let mut rng = SeededRng::new(2);
        let mut clf = Classifier::new(&ClassifierSpec::TableIICnn, &mut rng);
        let x = Tensor::randn(&[2, 784], &mut rng);
        let logits = clf.logits(&x, false);
        assert_eq!(logits.dims(), &[2, 10]);
    }

    #[test]
    fn mlp_learns_a_separable_task() {
        let mut rng = SeededRng::new(3);
        let spec = ClassifierSpec::Mlp { hidden: 16 };
        let mut clf = Classifier::new(&spec, &mut rng);
        // Class = brightest quadrant indicator in a crude synthetic pattern.
        let n = 64;
        let mut xs = vec![0.0f32; n * 784];
        let mut ys = vec![0usize; n];
        for i in 0..n {
            let c = i % 2;
            ys[i] = c;
            for j in 0..784 {
                let bright = if c == 0 { j < 392 } else { j >= 392 };
                xs[i * 784 + j] = if bright { 0.8 } else { 0.1 } + 0.05 * rng.next_normal();
            }
        }
        let x = Tensor::from_vec(xs, &[n, 784]);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..30 {
            clf.train_batch(&x, &ys, &mut sgd);
        }
        assert!(clf.evaluate(&x, &ys, 32) > 0.95);
    }

    #[test]
    fn prox_zero_matches_plain_training() {
        let mut rng = SeededRng::new(6);
        let spec = ClassifierSpec::Mlp { hidden: 8 };
        let global = Classifier::new(&spec, &mut SeededRng::new(7)).get_params();
        let x = Tensor::randn(&[4, 784], &mut rng);
        let y = vec![0usize, 1, 2, 3];

        let mut a = Classifier::from_params(&spec, &global);
        let mut b = Classifier::from_params(&spec, &global);
        let mut sa = Sgd::new(0.1);
        let mut sb = Sgd::new(0.1);
        a.train_batch(&x, &y, &mut sa);
        b.train_batch_prox(&x, &y, &mut sb, &global, 0.0);
        assert_eq!(a.get_params(), b.get_params());
    }

    #[test]
    fn large_prox_mu_pins_params_to_global() {
        let mut rng = SeededRng::new(8);
        let spec = ClassifierSpec::Mlp { hidden: 8 };
        let global = Classifier::new(&spec, &mut SeededRng::new(9)).get_params();
        let x = Tensor::randn(&[4, 784], &mut rng);
        let y = vec![0usize, 1, 2, 3];

        let dist = |mu: f32| {
            let mut clf = Classifier::from_params(&spec, &global);
            let mut sgd = Sgd::new(0.05);
            for _ in 0..10 {
                clf.train_batch_prox(&x, &y, &mut sgd, &global, mu);
            }
            fg_tensor::vecops::l2_distance(&clf.get_params(), &global)
        };
        // Stability requires lr * mu < 2; mu = 10 with lr = 0.05 contracts.
        let free = dist(0.0);
        let pinned = dist(10.0);
        assert!(pinned < free * 0.5, "prox did not constrain: {pinned} vs {free}");
    }

    #[test]
    fn evaluate_handles_partial_batches() {
        let mut rng = SeededRng::new(4);
        let mut clf = Classifier::new(&ClassifierSpec::Mlp { hidden: 8 }, &mut rng);
        let x = Tensor::randn(&[7, 784], &mut rng);
        let y = vec![0usize; 7];
        let acc = clf.evaluate(&x, &y, 3);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let mut rng = SeededRng::new(5);
        let mut clf = Classifier::new(&ClassifierSpec::Mlp { hidden: 8 }, &mut rng);
        let x = Tensor::zeros(&[0, 784]);
        assert_eq!(clf.evaluate(&x, &[], 4), 0.0);
    }
}
