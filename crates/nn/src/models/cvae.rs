//! The Conditional Variational AutoEncoder of Table III.
//!
//! Encoder `E_φ : X × Y → Z`: `x ‖ onehot(y)` (794) → 400 (ReLU) → twin
//! 20-unit heads producing `μ` and `log σ²`. Decoder `D_θ : Z × Y → X`:
//! `z ‖ onehot(y)` (30) → 400 (ReLU) → 794 (sigmoid), reconstructing the
//! concatenated `x ‖ onehot(y)` exactly as Table III's 794-unit output
//! specifies. Trained on the ELBO (Eqn. 6): binary cross-entropy
//! reconstruction plus Gaussian KL regularization.
//!
//! One deliberate deviation: Table III lists ReLU on the μ/log σ² heads,
//! which would confine the posterior to the non-negative orthant and pin
//! every variance at ≥ 1 (the KL to the standard-normal prior could never
//! vanish). We follow the standard CVAE formulation (linear heads), which is
//! what working implementations — including the paper's own reference — use.
//!
//! Parameter counts match Table III: encoder 334,040, decoder 330,794,
//! total 664,834.

use crate::activations::{ReLU, Sigmoid};
use crate::layer::{Layer, Module, Parameter};
use crate::linear::Linear;
use crate::loss;
use crate::models::one_hot;
use crate::optim::Optimizer;
use crate::params;
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a CVAE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CvaeSpec {
    /// Flattened observation dimensionality (784 for 28×28 images).
    pub x_dim: usize,
    /// Number of conditioning classes `L`.
    pub n_classes: usize,
    /// Hidden width of encoder and decoder.
    pub hidden: usize,
    /// Latent dimensionality of `z`.
    pub latent: usize,
}

impl CvaeSpec {
    /// The paper's exact Table III configuration.
    pub fn table_iii() -> Self {
        CvaeSpec { x_dim: 784, n_classes: 10, hidden: 400, latent: 20 }
    }

    /// A reduced configuration for CPU-budget presets.
    pub fn reduced(hidden: usize, latent: usize) -> Self {
        CvaeSpec { x_dim: 784, n_classes: 10, hidden, latent }
    }

    /// Input dimensionality of the encoder (`x ‖ onehot(y)`).
    pub fn enc_in(&self) -> usize {
        self.x_dim + self.n_classes
    }

    /// Input dimensionality of the decoder (`z ‖ onehot(y)`).
    pub fn dec_in(&self) -> usize {
        self.latent + self.n_classes
    }

    /// Output dimensionality of the decoder (reconstructs `x ‖ onehot(y)`).
    pub fn dec_out(&self) -> usize {
        self.x_dim + self.n_classes
    }

    /// Scalar parameter count of the decoder (the `θ` clients ship).
    pub fn decoder_params(&self) -> usize {
        (self.dec_in() * self.hidden + self.hidden)
            + (self.hidden * self.dec_out() + self.dec_out())
    }

    /// Scalar parameter count of the encoder.
    pub fn encoder_params(&self) -> usize {
        (self.enc_in() * self.hidden + self.hidden) + 2 * (self.hidden * self.latent + self.latent)
    }
}

/// The detachable decoder `D_θ` — the object FedGuard clients ship to the
/// server for validation-data synthesis.
pub struct CvaeDecoder {
    spec: CvaeSpec,
    l1: Linear,
    relu: ReLU,
    l2: Linear,
    sigmoid: Sigmoid,
}

impl CvaeDecoder {
    /// Freshly initialized decoder.
    pub fn new(spec: &CvaeSpec, rng: &mut SeededRng) -> Self {
        CvaeDecoder {
            spec: *spec,
            l1: Linear::new(spec.dec_in(), spec.hidden, rng),
            relu: ReLU::new(),
            l2: Linear::new(spec.hidden, spec.dec_out(), rng),
            sigmoid: Sigmoid::new(),
        }
    }

    /// Decoder reconstructed from a flat `θ` vector.
    pub fn from_params(spec: &CvaeSpec, theta: &[f32]) -> Self {
        let mut dec = CvaeDecoder::new(spec, &mut SeededRng::new(0));
        params::load(&mut dec, theta);
        dec
    }

    pub fn spec(&self) -> &CvaeSpec {
        &self.spec
    }

    /// Flat `θ` vector.
    pub fn get_params(&self) -> Vec<f32> {
        params::flatten(self)
    }

    /// Raw reconstruction logits for `z ‖ onehot(y)` (training path).
    fn logits(&mut self, z: &Tensor, y_onehot: &Tensor, train: bool) -> Tensor {
        let zy = z.concat_cols(y_onehot);
        let h = self.l1.forward(&zy, train);
        let h = self.relu.forward(&h, train);
        self.l2.forward(&h, train)
    }

    /// Backprop through the decoder; returns the gradient w.r.t. `z`
    /// (dropping the conditioning columns, which receive no gradient).
    fn backward_to_z(&mut self, dlogits: &Tensor) -> Tensor {
        let dh = self.l2.backward(dlogits);
        let dh = self.relu.backward(&dh);
        let dzy = self.l1.backward(&dh);
        dzy.slice_cols(0, self.spec.latent)
    }

    /// Controllable synthesis (§III-A): decode latent samples `z` under the
    /// conditioning labels, returning sigmoid-activated images `(batch,
    /// x_dim)`. The reconstructed one-hot tail is discarded.
    pub fn generate(&mut self, z: &Tensor, labels: &[usize]) -> Tensor {
        assert_eq!(z.dim(0), labels.len(), "one label per latent sample");
        assert_eq!(z.dim(1), self.spec.latent, "latent dim mismatch");
        let y = one_hot(labels, self.spec.n_classes);
        let logits = self.logits(z, &y, false);
        let probs = self.sigmoid.forward(&logits, false);
        probs.slice_cols(0, self.spec.x_dim)
    }
}

impl Module for CvaeDecoder {
    fn visit_params(&self, f: &mut dyn FnMut(&Parameter)) {
        self.l1.visit_params(f);
        self.l2.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.l1.visit_params_mut(f);
        self.l2.visit_params_mut(f);
    }
}

/// The full CVAE: encoder + reparameterization + decoder.
pub struct Cvae {
    spec: CvaeSpec,
    enc_l1: Linear,
    enc_relu: ReLU,
    mu_head: Linear,
    logvar_head: Linear,
    decoder: CvaeDecoder,
}

impl Cvae {
    /// Freshly initialized CVAE.
    pub fn new(spec: &CvaeSpec, rng: &mut SeededRng) -> Self {
        Cvae {
            spec: *spec,
            enc_l1: Linear::new(spec.enc_in(), spec.hidden, rng),
            enc_relu: ReLU::new(),
            mu_head: Linear::new(spec.hidden, spec.latent, rng),
            logvar_head: Linear::new(spec.hidden, spec.latent, rng),
            decoder: CvaeDecoder::new(spec, rng),
        }
    }

    pub fn spec(&self) -> &CvaeSpec {
        &self.spec
    }

    /// The decoder's flat `θ` vector — what a FedGuard client shares.
    pub fn decoder_params(&self) -> Vec<f32> {
        self.decoder.get_params()
    }

    /// Borrow the decoder (e.g. for generation on the client side).
    pub fn decoder_mut(&mut self) -> &mut CvaeDecoder {
        &mut self.decoder
    }

    /// Encode a batch: returns `(mu, logvar)`.
    pub fn encode(&mut self, x: &Tensor, labels: &[usize], train: bool) -> (Tensor, Tensor) {
        let y = one_hot(labels, self.spec.n_classes);
        let xy = x.concat_cols(&y);
        let h = self.enc_l1.forward(&xy, train);
        let h = self.enc_relu.forward(&h, train);
        let mu = self.mu_head.forward(&h, train);
        let logvar = self.logvar_head.forward(&h, train);
        (mu, logvar)
    }

    /// One ELBO training step (Eqn. 6) on a mini-batch; returns the loss
    /// (reconstruction + KL).
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        optim: &mut dyn Optimizer,
        rng: &mut SeededRng,
    ) -> f32 {
        self.zero_grad();
        let y = one_hot(labels, self.spec.n_classes);
        let xy = x.concat_cols(&y);

        // Encoder.
        let h = self.enc_l1.forward(&xy, true);
        let h = self.enc_relu.forward(&h, true);
        let mu = self.mu_head.forward(&h, true);
        let logvar = self.logvar_head.forward(&h, true);

        // Reparameterization: z = mu + exp(logvar/2) * eps.
        let eps = mu.randn_like(rng);
        let std = logvar.map(|lv| (0.5 * lv).exp());
        let z = mu.add(&std.mul(&eps));

        // Decoder reconstructs x ‖ onehot(y).
        let logits = self.decoder.logits(&z, &y, true);
        let (recon_loss, dlogits) = loss::bce_with_logits(&logits, &xy);
        let (kl_loss, kl_dmu, kl_dlogvar) = loss::kl_gaussian(&mu, &logvar);

        // Backward through decoder to z.
        let dz = self.decoder.backward_to_z(&dlogits);

        // Reparameterization gradients.
        let dmu = dz.add(&kl_dmu);
        let dlv_from_z = dz.mul(&eps).mul(&std).map(|v| 0.5 * v);
        let dlogvar = dlv_from_z.add(&kl_dlogvar);

        // Backward through the twin heads into the shared hidden state.
        let dh_mu = self.mu_head.backward(&dmu);
        let dh_lv = self.logvar_head.backward(&dlogvar);
        let dh = dh_mu.add(&dh_lv);
        let dh = self.enc_relu.backward(&dh);
        self.enc_l1.backward(&dh);

        optim.step(self);
        recon_loss + kl_loss
    }

    /// Evaluate the ELBO loss on a batch without updating parameters (uses
    /// the posterior mean, no sampling noise).
    pub fn eval_loss(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let y = one_hot(labels, self.spec.n_classes);
        let xy = x.concat_cols(&y);
        let (mu, logvar) = self.encode(x, labels, false);
        let logits = self.decoder.logits(&mu, &y, false);
        let (recon, _) = loss::bce_with_logits(&logits, &xy);
        let (kl, _, _) = loss::kl_gaussian(&mu, &logvar);
        recon + kl
    }
}

impl Module for Cvae {
    fn visit_params(&self, f: &mut dyn FnMut(&Parameter)) {
        self.enc_l1.visit_params(f);
        self.mu_head.visit_params(f);
        self.logvar_head.visit_params(f);
        self.decoder.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.enc_l1.visit_params_mut(f);
        self.mu_head.visit_params_mut(f);
        self.logvar_head.visit_params_mut(f);
        self.decoder.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn table_iii_parameter_counts() {
        let spec = CvaeSpec::table_iii();
        // Encoder: 794*400+400 = 318,000; heads: 2*(400*20+20) = 16,040.
        assert_eq!(spec.encoder_params(), 318_000 + 16_040);
        // Decoder: 30*400+400 = 12,400; 400*794+794 = 318,394.
        assert_eq!(spec.decoder_params(), 12_400 + 318_394);
        // Total 664,834 as in Table III.
        assert_eq!(spec.encoder_params() + spec.decoder_params(), 664_834);

        let mut rng = SeededRng::new(0);
        let cvae = Cvae::new(&spec, &mut rng);
        assert_eq!(cvae.num_params(), 664_834);
        assert_eq!(cvae.decoder_params().len(), 330_794);
    }

    #[test]
    fn decoder_wire_size_matches_paper() {
        // Paper: decoder 1.32 MB.
        let bytes = CvaeSpec::table_iii().decoder_params() * 4;
        assert!((bytes as f64 / 1e6 - 1.32).abs() < 0.01, "{bytes}");
    }

    #[test]
    fn decoder_round_trip() {
        let spec = CvaeSpec::reduced(16, 4);
        let mut rng = SeededRng::new(1);
        let dec = CvaeDecoder::new(&spec, &mut rng);
        let theta = dec.get_params();
        let dec2 = CvaeDecoder::from_params(&spec, &theta);
        assert_eq!(dec2.get_params(), theta);
    }

    #[test]
    fn generate_shapes_and_range() {
        let spec = CvaeSpec::reduced(16, 4);
        let mut rng = SeededRng::new(2);
        let mut dec = CvaeDecoder::new(&spec, &mut rng);
        let z = Tensor::randn(&[5, 4], &mut rng);
        let imgs = dec.generate(&z, &[0, 1, 2, 3, 4]);
        assert_eq!(imgs.dims(), &[5, 784]);
        assert!(imgs.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_reduces_elbo_loss() {
        let spec = CvaeSpec::reduced(32, 4);
        let mut rng = SeededRng::new(3);
        let mut cvae = Cvae::new(&spec, &mut rng);

        // Two crude "digit" patterns: left-half bright vs right-half bright.
        let n = 32;
        let mut xs = vec![0.0f32; n * 784];
        let mut ys = vec![0usize; n];
        for i in 0..n {
            let c = i % 2;
            ys[i] = c;
            for j in 0..784 {
                let bright = if c == 0 { j % 28 < 14 } else { j % 28 >= 14 };
                xs[i * 784 + j] = if bright { 0.9 } else { 0.05 };
            }
        }
        let x = Tensor::from_vec(xs, &[n, 784]);

        let mut adam = Adam::new(1e-3);
        let first = cvae.eval_loss(&x, &ys);
        for _ in 0..60 {
            cvae.train_batch(&x, &ys, &mut adam, &mut rng);
        }
        let last = cvae.eval_loss(&x, &ys);
        assert!(last < first * 0.8, "ELBO did not improve: {first} -> {last}");
    }

    #[test]
    fn conditional_generation_respects_class() {
        // After training on two clearly distinct patterns, conditioning on a
        // class must generate an image closer to that class's prototype.
        let spec = CvaeSpec::reduced(32, 4);
        let mut rng = SeededRng::new(4);
        let mut cvae = Cvae::new(&spec, &mut rng);

        let n = 64;
        let mut xs = vec![0.0f32; n * 784];
        let mut ys = vec![0usize; n];
        for i in 0..n {
            let c = i % 2;
            ys[i] = c;
            for j in 0..784 {
                let bright = if c == 0 { j < 392 } else { j >= 392 };
                xs[i * 784 + j] = if bright { 0.95 } else { 0.05 };
            }
        }
        let x = Tensor::from_vec(xs, &[n, 784]);
        let mut adam = Adam::new(2e-3);
        for _ in 0..150 {
            cvae.train_batch(&x, &ys, &mut adam, &mut rng);
        }

        let proto0: Vec<f32> = (0..784).map(|j| if j < 392 { 0.95 } else { 0.05 }).collect();
        let proto1: Vec<f32> = (0..784).map(|j| if j >= 392 { 0.95 } else { 0.05 }).collect();

        let z = Tensor::randn(&[8, 4], &mut rng);
        let gen0 = cvae.decoder_mut().generate(&z, &[0; 8]);
        let gen1 = cvae.decoder_mut().generate(&z, &[1; 8]);
        let d = |img: &[f32], proto: &[f32]| -> f32 {
            img.iter().zip(proto).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        let mut hits = 0;
        for r in 0..8 {
            if d(gen0.row(r), &proto0) < d(gen0.row(r), &proto1) {
                hits += 1;
            }
            if d(gen1.row(r), &proto1) < d(gen1.row(r), &proto0) {
                hits += 1;
            }
        }
        assert!(hits >= 12, "conditional generation only matched {hits}/16 prototypes");
    }
}
