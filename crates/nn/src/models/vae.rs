//! A plain (unconditional) Variational AutoEncoder with Gaussian likelihood.
//!
//! Used by the Spectral baseline (Li et al. 2020): the server pre-trains this
//! VAE on low-dimensional *surrogate vectors* of benign model updates and
//! flags clients whose submissions reconstruct poorly. Surrogates are
//! real-valued, so the reconstruction term is mean-squared error rather than
//! the image CVAE's Bernoulli BCE.

use crate::activations::ReLU;
use crate::layer::{Layer, Module, Parameter};
use crate::linear::Linear;
use crate::loss;
use crate::optim::Optimizer;
use fg_tensor::rng::SeededRng;
use fg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a plain VAE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaeSpec {
    pub x_dim: usize,
    pub hidden: usize,
    pub latent: usize,
}

/// Encoder `x → (μ, log σ²)`, decoder `z → x̂`, trained on MSE + KL.
pub struct Vae {
    spec: VaeSpec,
    enc_l1: Linear,
    enc_relu: ReLU,
    mu_head: Linear,
    logvar_head: Linear,
    dec_l1: Linear,
    dec_relu: ReLU,
    dec_l2: Linear,
}

impl Vae {
    pub fn new(spec: &VaeSpec, rng: &mut SeededRng) -> Self {
        Vae {
            spec: *spec,
            enc_l1: Linear::new(spec.x_dim, spec.hidden, rng),
            enc_relu: ReLU::new(),
            mu_head: Linear::new(spec.hidden, spec.latent, rng),
            logvar_head: Linear::new(spec.hidden, spec.latent, rng),
            dec_l1: Linear::new(spec.latent, spec.hidden, rng),
            dec_relu: ReLU::new(),
            dec_l2: Linear::new(spec.hidden, spec.x_dim, rng),
        }
    }

    pub fn spec(&self) -> &VaeSpec {
        &self.spec
    }

    fn decode(&mut self, z: &Tensor, train: bool) -> Tensor {
        let h = self.dec_l1.forward(z, train);
        let h = self.dec_relu.forward(&h, train);
        self.dec_l2.forward(&h, train)
    }

    fn encode_internal(&mut self, x: &Tensor, train: bool) -> (Tensor, Tensor) {
        let h = self.enc_l1.forward(x, train);
        let h = self.enc_relu.forward(&h, train);
        (self.mu_head.forward(&h, train), self.logvar_head.forward(&h, train))
    }

    /// One training step on a batch; returns the loss (MSE + β·KL).
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        beta: f32,
        optim: &mut dyn Optimizer,
        rng: &mut SeededRng,
    ) -> f32 {
        self.zero_grad();
        let (mu, logvar) = self.encode_internal(x, true);
        let eps = mu.randn_like(rng);
        let std = logvar.map(|lv| (0.5 * lv).exp());
        let z = mu.add(&std.mul(&eps));
        let recon = self.decode(&z, true);

        // MSE summed over features, averaged over batch.
        let b = x.dim(0) as f32;
        let diff = recon.sub(x);
        let mse: f32 = diff.data().iter().map(|d| d * d).sum::<f32>() / b;
        let drecon = diff.map(|d| 2.0 * d / b);

        let (kl, kl_dmu, kl_dlv) = loss::kl_gaussian(&mu, &logvar);

        // Backward through decoder.
        let dh = self.dec_l2.backward(&drecon);
        let dh = self.dec_relu.backward(&dh);
        let dz = self.dec_l1.backward(&dh);

        let mut dmu = dz.clone();
        dmu.axpy(beta, &kl_dmu);
        let mut dlv = dz.mul(&eps).mul(&std).map(|v| 0.5 * v);
        dlv.axpy(beta, &kl_dlv);

        let dh_mu = self.mu_head.backward(&dmu);
        let dh_lv = self.logvar_head.backward(&dlv);
        let dh = dh_mu.add(&dh_lv);
        let dh = self.enc_relu.backward(&dh);
        self.enc_l1.backward(&dh);

        optim.step(self);
        mse + beta * kl
    }

    /// Per-row reconstruction error (MSE over features, via the posterior
    /// mean — the anomaly score Spectral thresholds on).
    pub fn reconstruction_errors(&mut self, x: &Tensor) -> Vec<f32> {
        let (mu, _) = self.encode_internal(x, false);
        let recon = self.decode(&mu, false);
        let n = x.dim(1) as f32;
        (0..x.dim(0))
            .map(|r| {
                recon.row(r).iter().zip(x.row(r)).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / n
            })
            .collect()
    }
}

impl Module for Vae {
    fn visit_params(&self, f: &mut dyn FnMut(&Parameter)) {
        self.enc_l1.visit_params(f);
        self.mu_head.visit_params(f);
        self.logvar_head.visit_params(f);
        self.dec_l1.visit_params(f);
        self.dec_l2.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.enc_l1.visit_params_mut(f);
        self.mu_head.visit_params_mut(f);
        self.logvar_head.visit_params_mut(f);
        self.dec_l1.visit_params_mut(f);
        self.dec_l2.visit_params_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn blob_data(rng: &mut SeededRng, n: usize, dim: usize) -> Tensor {
        // Correlated low-rank data the VAE can compress: x = u * direction.
        let mut data = vec![0.0f32; n * dim];
        for r in 0..n {
            let u = rng.next_normal();
            for c in 0..dim {
                data[r * dim + c] = u * (c as f32 / dim as f32) + 0.01 * rng.next_normal();
            }
        }
        Tensor::from_vec(data, &[n, dim])
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let spec = VaeSpec { x_dim: 16, hidden: 32, latent: 4 };
        let mut rng = SeededRng::new(0);
        let mut vae = Vae::new(&spec, &mut rng);
        let x = blob_data(&mut rng, 64, 16);
        let before: f32 = vae.reconstruction_errors(&x).iter().sum::<f32>() / 64.0;
        let mut adam = Adam::new(1e-2);
        for _ in 0..200 {
            vae.train_batch(&x, 0.1, &mut adam, &mut rng);
        }
        let after: f32 = vae.reconstruction_errors(&x).iter().sum::<f32>() / 64.0;
        assert!(after < before * 0.5, "VAE did not learn: {before} -> {after}");
    }

    #[test]
    fn anomalies_score_higher_than_inliers() {
        let spec = VaeSpec { x_dim: 16, hidden: 32, latent: 4 };
        let mut rng = SeededRng::new(1);
        let mut vae = Vae::new(&spec, &mut rng);
        let x = blob_data(&mut rng, 128, 16);
        let mut adam = Adam::new(1e-2);
        for _ in 0..300 {
            vae.train_batch(&x, 0.1, &mut adam, &mut rng);
        }
        // Inliers: fresh draws from the same process. Outliers: sign-flipped
        // and offset versions.
        let inliers = blob_data(&mut rng, 16, 16);
        let outliers = inliers.map(|v| -v + 3.0);
        let e_in: f32 = vae.reconstruction_errors(&inliers).iter().sum::<f32>() / 16.0;
        let e_out: f32 = vae.reconstruction_errors(&outliers).iter().sum::<f32>() / 16.0;
        assert!(e_out > 2.0 * e_in, "outliers not separated: in={e_in}, out={e_out}");
    }

    #[test]
    fn reconstruction_error_shape() {
        let spec = VaeSpec { x_dim: 8, hidden: 8, latent: 2 };
        let mut rng = SeededRng::new(2);
        let mut vae = Vae::new(&spec, &mut rng);
        let x = Tensor::randn(&[5, 8], &mut rng);
        assert_eq!(vae.reconstruction_errors(&x).len(), 5);
    }
}
